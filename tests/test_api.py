"""Tests for the top-level facade (`repro.api`)."""

import pytest

from repro import Precision, ThreeWayReport, prepare, THREE_WAY_ANALYZERS, run_comparison
from repro.anf import is_anf
from repro.corpus import THEOREM_51_WITNESS
from repro.domains import ParityDomain, UnitDomain
from repro.lang.parser import parse


class TestPrepare:
    def test_accepts_source_text(self):
        assert is_anf(prepare("(f (g 1))"))

    def test_accepts_terms(self):
        assert is_anf(prepare(parse("(f (g 1))")))

    def test_accepts_anf_terms_unchanged(self):
        term = prepare("(let (a 1) a)")
        assert prepare(term) == term

    def test_accepts_corpus_programs(self):
        assert prepare(THEOREM_51_WITNESS) is THEOREM_51_WITNESS.term

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            prepare(42)  # type: ignore[arg-type]


class TestRunThreeWay:
    def test_returns_report(self):
        report = run_comparison("(add1 1)", analyzers=THREE_WAY_ANALYZERS)
        assert isinstance(report, ThreeWayReport)
        assert report.direct.value.num == 2
        assert report.semantic.value.num == 2
        assert report.syntactic.value.num == 2

    def test_corpus_initial_used_automatically(self):
        report = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct.constant_of("a1") == 1

    def test_explicit_initial_overrides(self):
        report = run_comparison(THEOREM_51_WITNESS, initial={}, analyzers=THREE_WAY_ANALYZERS)
        # without the f assumption the calls are dead
        assert report.direct.lattice.is_bottom(report.direct.value_of("a1"))

    def test_domain_parameter(self):
        report = run_comparison("(+ 2 4)", domain=ParityDomain(), analyzers=THREE_WAY_ANALYZERS)
        from repro.domains.parity import EVEN

        assert report.direct.value.num is EVEN

    def test_verdict_properties(self):
        report = run_comparison("(add1 1)", analyzers=THREE_WAY_ANALYZERS)
        assert report.direct_vs_syntactic is Precision.EQUAL
        assert report.semantic_vs_direct is Precision.EQUAL
        assert report.semantic_vs_syntactic is Precision.EQUAL

    def test_summary_text(self):
        text = run_comparison("(add1 1)", analyzers=THREE_WAY_ANALYZERS).summary()
        assert "direct" in text and "semantic" in text and "syntactic" in text

    def test_loop_mode_forwarded(self):
        report = run_comparison("(let (d (loop)) d)", loop_mode="top", analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic.num_of("d") == report.direct.num_of("d")

    def test_unit_domain_three_way_equal(self):
        report = run_comparison(THEOREM_51_WITNESS, domain=UnitDomain(), analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic_vs_direct is Precision.EQUAL
