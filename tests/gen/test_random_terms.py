"""Tests for the random program generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize, validate_anf
from repro.gen import FUN, NUM, random_closed_term, random_program
from repro.interp import run_direct
from repro.interp.errors import InterpError
from repro.interp.values import Closure, PrimVal
from repro.lang.syntax import check_closed, term_size


class TestGeneratorBasics:
    def test_deterministic_per_seed(self):
        assert random_program(7) == random_program(7)

    def test_different_seeds_differ_somewhere(self):
        terms = {random_program(seed) for seed in range(30)}
        assert len(terms) > 10

    def test_terms_are_closed(self):
        for seed in range(50):
            check_closed(random_program(seed))

    def test_depth_controls_size(self):
        rng = random.Random(0)
        small = [term_size(random_closed_term(random.Random(s), 2)) for s in range(30)]
        large = [term_size(random_closed_term(random.Random(s), 6)) for s in range(30)]
        assert sum(large) > sum(small)

    def test_function_type_yields_procedure(self):
        for seed in range(20):
            term = random_program(seed, want=FUN(NUM, NUM))
            answer = run_direct(normalize(term), fuel=500_000)
            assert isinstance(answer.value, (Closure, PrimVal))


class TestGeneratedProgramsAreWellBehaved:
    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(1, 6))
    def test_terminate_and_never_get_stuck(self, seed, depth):
        """Simple types guarantee termination and stuck-freedom."""
        term = normalize(random_closed_term(random.Random(seed), depth))
        validate_anf(term)
        answer = run_direct(term, fuel=1_000_000)
        assert isinstance(answer.value, (int, Closure, PrimVal))

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_num_typed_programs_return_numbers(self, seed):
        term = normalize(random_closed_term(random.Random(seed), 4, NUM))
        answer = run_direct(term, fuel=1_000_000)
        assert isinstance(answer.value, int)
