"""Tests for the direct (store) interpreter — paper Figure 1."""

import pytest

from repro.anf import normalize
from repro.interp import run_direct
from repro.interp.errors import Diverged, FuelExhausted, StuckError
from repro.interp.values import DEC, INC, Closure, Env, Store
from repro.lang.errors import SyntaxValidationError
from repro.lang.parser import parse


def run(source: str, **kwargs):
    return run_direct(normalize(parse(source)), **kwargs)


class TestValues:
    def test_number(self):
        assert run("42").value == 42

    def test_lambda_yields_closure(self):
        answer = run("(lambda (x) x)")
        assert isinstance(answer.value, Closure)
        assert answer.value.param == "x"

    def test_add1_yields_inc(self):
        assert run("add1").value is INC

    def test_sub1_yields_dec(self):
        assert run("sub1").value is DEC


class TestApplication:
    def test_add1(self):
        assert run("(add1 41)").value == 42

    def test_sub1(self):
        assert run("(sub1 0)").value == -1

    def test_beta(self):
        assert run("((lambda (x) (add1 x)) 1)").value == 2

    def test_higher_order(self):
        src = "((lambda (f) (f ((lambda (g) (g 1)) f))) (lambda (x) (+ x 10)))"
        assert run(src).value == 21

    def test_curried(self):
        src = "(((lambda (a) (lambda (b) (- a b))) 10) 3)"
        assert run(src).value == 7

    def test_closure_captures_environment(self):
        src = "(let (a 5) (let (f (lambda (x) (+ x a))) (let (a 100) (f 1))))"
        # unique binders: the uniquify pass renames the second a; f sees 5
        assert run(src).value == 6

    def test_each_invocation_gets_fresh_location(self):
        # The paper: the bound variable of a procedure is related to a
        # different location per invocation.
        answer = run("(let (f (lambda (x) x)) (let (u (f 1)) (f 2)))")
        assert answer.value == 2
        locations = [loc for loc, _ in answer.store.items() if loc.name == "x"]
        assert len(locations) == 2


class TestConditionals:
    def test_zero_takes_then(self):
        assert run("(if0 0 1 2)").value == 1

    def test_nonzero_takes_else(self):
        assert run("(if0 7 1 2)").value == 2

    def test_negative_is_nonzero(self):
        assert run("(if0 -1 1 2)").value == 2

    def test_closure_test_is_nonzero(self):
        assert run("(if0 (lambda (x) x) 1 2)").value == 2

    def test_untaken_branch_not_evaluated(self):
        assert run("(if0 0 5 (loop))").value == 5
        assert run("(if0 1 (loop) 5)").value == 5


class TestOperators:
    @pytest.mark.parametrize(
        "source,expected",
        [("(+ 2 3)", 5), ("(- 2 3)", -1), ("(* 2 3)", 6), ("(* -2 3)", -6)],
    )
    def test_arithmetic(self, source, expected):
        assert run(source).value == expected

    def test_nested(self):
        assert run("(* (+ 1 2) (- 7 3))").value == 12


class TestLet:
    def test_simple_binding(self):
        assert run("(let (x 3) (add1 x))").value == 4

    def test_sequencing(self):
        assert run("(let (x 1) (let (y (+ x x)) (* y y)))").value == 4


class TestErrors:
    def test_apply_number_is_stuck(self):
        with pytest.raises(StuckError):
            run("(1 2)")

    def test_add1_of_closure_is_stuck(self):
        with pytest.raises(StuckError):
            run("(add1 (lambda (x) x))")

    def test_plus_of_closure_is_stuck(self):
        with pytest.raises(StuckError):
            run("(+ 1 (lambda (x) x))")

    def test_unbound_variable_is_stuck(self):
        with pytest.raises(StuckError):
            run("(add1 unknown)")

    def test_loop_diverges(self):
        with pytest.raises(Diverged):
            run("(loop)")

    def test_omega_exhausts_fuel(self):
        with pytest.raises(FuelExhausted):
            run("((lambda (x) (x x)) (lambda (x) (x x)))", fuel=5000)

    def test_check_rejects_non_anf(self):
        with pytest.raises(SyntaxValidationError):
            run_direct(parse("(f (g 1))"))

    def test_check_can_be_disabled(self):
        # without validation, a value term still evaluates
        assert run_direct(parse("42"), check=False).value == 42


class TestInitialEnvironment:
    def test_free_variables_via_env_and_store(self):
        env = Env()
        store = Store()
        loc = store.new("n")
        store.bind(loc, 10)
        env = env.bind("n", loc)
        answer = run_direct(
            normalize(parse("(add1 n)")), env=env, store=store
        )
        assert answer.value == 11


class TestRecursionViaSelfApplication:
    def test_factorial(self):
        # Z-combinator-free recursion through self-application.
        src = """
        (let (fact (lambda (self)
                     (lambda (n)
                       (if0 n 1 (* n ((self self) (- n 1)))))))
          ((fact fact) 6))
        """
        assert run(src).value == 720

    def test_fibonacci(self):
        src = """
        (let (fib (lambda (self)
                    (lambda (n)
                      (if0 n 0
                        (if0 (- n 1) 1
                          (+ ((self self) (- n 1)) ((self self) (- n 2))))))))
          ((fib fib) 10))
        """
        assert run(src).value == 55
