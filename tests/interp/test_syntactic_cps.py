"""Tests for the syntactic-CPS interpreter — paper Figure 3."""

import pytest

from repro.anf import normalize
from repro.cps import cps_transform
from repro.cps.ast import CApp, CLam, CNum, CPrim, CVar, KApp, KLam
from repro.interp import run_syntactic_cps
from repro.interp.errors import Diverged, FuelExhausted, StuckError
from repro.interp.values import CoKont, CpsClosure, STOP
from repro.lang.parser import parse


def run(source: str, **kwargs):
    return run_syntactic_cps(cps_transform(normalize(parse(source))), **kwargs)


class TestBasics:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", 42),
            ("(add1 41)", 42),
            ("(sub1 0)", -1),
            ("((lambda (x) (add1 x)) 1)", 2),
            ("(if0 0 1 2)", 1),
            ("(if0 9 1 2)", 2),
            ("(+ (add1 1) (* 3 3))", 11),
            ("(let (x 3) (let (y (add1 x)) (* x y)))", 12),
            ("(((lambda (a) (lambda (b) (- a b))) 10) 3)", 7),
        ],
    )
    def test_evaluation(self, source, expected):
        assert run(source).value == expected

    def test_lambda_yields_cps_closure(self):
        value = run("(lambda (x) x)").value
        assert isinstance(value, CpsClosure)
        assert value.param == "x"
        assert value.kparam == "k/x"

    def test_untaken_branch_not_evaluated(self):
        assert run("(if0 0 5 (loop))").value == 5

    def test_deep_recursion_is_iterative(self):
        src = """
        (let (down (lambda (self)
                     (lambda (n)
                       (if0 n 0 (add1 ((self self) (- n 1)))))))
          ((down down) 3000))
        """
        assert run(src, fuel=2_000_000).value == 3000


class TestReifiedContinuations:
    def test_store_contains_continuation_entries(self):
        # Lemma 3.3: the CPS store holds additional continuation entries.
        answer = run("((lambda (x) (add1 x)) 1)")
        konts = [
            value
            for _, value in answer.store.items()
            if isinstance(value, CoKont) or value is STOP
        ]
        assert len(konts) >= 2  # stop plus at least one reified frame

    def test_top_kvar_bound_to_stop(self):
        answer = run("5")
        stops = [v for _, v in answer.store.items() if v is STOP]
        assert stops == [STOP]


class TestDirectRules:
    def test_manual_kapp_to_stop(self):
        term = KApp("k/halt", CNum(7))
        assert run_syntactic_cps(term).value == 7

    def test_manual_primitive_call(self):
        # (add1k 41 (lambda (r) (k/halt r)))
        term = CApp(
            CPrim("add1k"), CNum(41), KLam("r", KApp("k/halt", CVar("r")))
        )
        assert run_syntactic_cps(term).value == 42

    def test_closure_receives_continuation(self):
        # ((lambda (x k/x) (k/x x)) 9 (lambda (r) (k/halt r)))
        term = CApp(
            CLam("x", "k/x", KApp("k/x", CVar("x"))),
            CNum(9),
            KLam("r", KApp("k/halt", CVar("r"))),
        )
        assert run_syntactic_cps(term).value == 9


class TestErrors:
    def test_apply_number_is_stuck(self):
        with pytest.raises(StuckError):
            run("(1 2)")

    def test_return_through_number_is_stuck(self):
        # (let (x 5) ...) cannot happen; build a broken term directly:
        term = CApp(
            CLam("x", "k/x", KApp("k/x", CVar("x"))),
            CNum(1),
            KLam("r", KApp("k/halt", CVar("r"))),
        )
        # sanity: the well-formed term runs
        assert run_syntactic_cps(term).value == 1

    def test_loop_diverges(self):
        with pytest.raises(Diverged):
            run("(loop)")

    def test_omega_exhausts_fuel(self):
        with pytest.raises(FuelExhausted):
            run("((lambda (x) (x x)) (lambda (x) (x x)))", fuel=5000)
