"""Lemma 3.3: the syntactic-CPS interpreter run on F_k[M] produces the
delta-image of the semantic-CPS (hence direct) answer for M.

    (M, rho, nil, s) C (u1, s1)
      iff
    (F_k[M], rho[k := new(k)], delta(s)[new(k) := stop]) Mc
        (delta(u1), delta(s1)[... continuation entries ...])
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize
from repro.cps import cps_transform
from repro.gen import random_closed_term
from repro.interp import (
    answers_delta_related,
    run_direct,
    run_semantic_cps,
    run_syntactic_cps,
    values_delta_related,
)
from repro.interp.values import DEC, INC, DECK, INCK, Store
from repro.lang.parser import parse

PROGRAMS = [
    "42",
    "add1",
    "sub1",
    "(lambda (x) x)",
    "(lambda (x) (lambda (y) (+ x y)))",
    "(let (a 7) (lambda (x) (+ x a)))",  # closure captures a binding
    "(add1 (sub1 5))",
    "((lambda (x) (* x x)) 12)",
    "(if0 (sub1 1) (+ 1 2) (loop))",
    "(let (f (lambda (x) (lambda (y) (- x y)))) ((f 10) 4))",
    "(let (twice (lambda (f) (lambda (x) (f (f x))))) ((twice add1) 0))",
    """(let (fact (lambda (self)
                    (lambda (n)
                      (if0 n 1 (* n ((self self) (- n 1)))))))
         ((fact fact) 8))""",
]


class TestDeltaOnBaseValues:
    def test_numbers(self):
        s1, s2 = Store(), Store()
        assert values_delta_related(5, s1, 5, s2)
        assert not values_delta_related(5, s1, 6, s2)

    def test_primitives(self):
        s1, s2 = Store(), Store()
        assert values_delta_related(INC, s1, INCK, s2)
        assert values_delta_related(DEC, s1, DECK, s2)
        assert not values_delta_related(INC, s1, DECK, s2)
        assert not values_delta_related(INC, s1, INC, s2)

    def test_number_vs_closure(self):
        s1, s2 = Store(), Store()
        assert not values_delta_related(5, s1, INCK, s2)


class TestLemma33Examples:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_agreement(self, source):
        term = normalize(parse(source))
        semantic = run_semantic_cps(term, fuel=500_000)
        cps_answer = run_syntactic_cps(cps_transform(term), fuel=2_000_000)
        assert answers_delta_related(semantic, cps_answer)

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_transitive_with_direct(self, source):
        """Together with Lemma 3.1 the result relates Mc to M."""
        term = normalize(parse(source))
        direct = run_direct(term, fuel=500_000)
        cps_answer = run_syntactic_cps(cps_transform(term), fuel=2_000_000)
        assert answers_delta_related(direct, cps_answer)


class TestLemma33Property:
    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 6))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        semantic = run_semantic_cps(term, fuel=500_000)
        cps_answer = run_syntactic_cps(cps_transform(term), fuel=2_000_000)
        assert answers_delta_related(semantic, cps_answer)
