"""Lemma 3.1: the direct and semantic-CPS interpreters agree.

    (M, rho, s) M A  iff  (M, rho, nil, s) C A

Checked on hand-written programs and, property-based, on random
simply-typed closed programs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize
from repro.gen import random_closed_term
from repro.interp import run_direct, run_semantic_cps
from repro.interp.values import Closure
from repro.lang.parser import parse

PROGRAMS = [
    "42",
    "(add1 (sub1 5))",
    "((lambda (x) (* x x)) 12)",
    "(if0 (sub1 1) (+ 1 2) (loop))",
    "(let (f (lambda (x) (lambda (y) (- x y)))) ((f 10) 4))",
    "(let (twice (lambda (f) (lambda (x) (f (f x))))) ((twice add1) 0))",
    """(let (fact (lambda (self)
                    (lambda (n)
                      (if0 n 1 (* n ((self self) (- n 1)))))))
         ((fact fact) 8))""",
]


def values_agree(left, right) -> bool:
    """Observable agreement: numbers/prims equal; closures match on
    their code (environments differ only in location indices)."""
    if isinstance(left, Closure) and isinstance(right, Closure):
        return left.param == right.param and left.body == right.body
    return left == right


class TestLemma31Examples:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_agreement(self, source):
        term = normalize(parse(source))
        direct = run_direct(term, fuel=500_000)
        semantic = run_semantic_cps(term, fuel=500_000)
        assert values_agree(direct.value, semantic.value)


class TestLemma31Property:
    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 6))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        direct = run_direct(term, fuel=500_000)
        semantic = run_semantic_cps(term, fuel=500_000)
        assert values_agree(direct.value, semantic.value)
