"""Unit tests for run-time values, environments and stores."""

import pytest

from repro.interp.errors import StuckError
from repro.interp.values import (
    DEC,
    INC,
    Answer,
    Closure,
    Env,
    Loc,
    PrimVal,
    Store,
    expect_number,
)
from repro.lang.ast import Num, Var


class TestEnv:
    def test_bind_is_persistent(self):
        env = Env()
        extended = env.bind("x", Loc("x", 0))
        assert "x" in extended
        assert "x" not in env

    def test_lookup_returns_latest_binding(self):
        env = Env().bind("x", Loc("x", 0)).bind("x", Loc("x", 1))
        assert env.lookup("x") == Loc("x", 1)

    def test_lookup_unbound_raises(self):
        with pytest.raises(StuckError):
            Env().lookup("missing")

    def test_len_and_iter(self):
        env = Env().bind("a", Loc("a", 0)).bind("b", Loc("b", 1))
        assert len(env) == 2
        assert set(env) == {"a", "b"}


class TestStore:
    def test_new_locations_are_fresh(self):
        store = Store()
        locs = {store.new("x") for _ in range(10)}
        assert len(locs) == 10

    def test_location_records_variable(self):
        store = Store()
        assert store.new("foo").name == "foo"

    def test_bind_and_lookup(self):
        store = Store()
        loc = store.new("x")
        store.bind(loc, 42)
        assert store.lookup(loc) == 42

    def test_dangling_lookup_raises(self):
        with pytest.raises(StuckError):
            Store().lookup(Loc("x", 99))

    def test_items_and_len(self):
        store = Store()
        loc = store.new("x")
        store.bind(loc, 1)
        assert len(store) == 1
        assert list(store.items()) == [(loc, 1)]


class TestValues:
    def test_prim_singletons_distinct(self):
        assert INC != DEC
        assert INC == PrimVal("inc")

    def test_closure_equality_is_structural(self):
        env = Env()
        assert Closure("x", Var("x"), env) == Closure("x", Var("x"), env)

    def test_answer_compares_by_value(self):
        s1, s2 = Store(), Store()
        assert Answer(1, s1) == Answer(1, s2)
        assert Answer(1, s1) != Answer(2, s1)

    def test_expect_number_accepts_ints(self):
        assert expect_number(5, "ctx") == 5

    @pytest.mark.parametrize("bad", [True, INC, None, "s"])
    def test_expect_number_rejects_non_ints(self, bad):
        with pytest.raises(StuckError):
            expect_number(bad, "ctx")
