"""Tests for the semantic-CPS machine — paper Figure 2."""

import pytest

from repro.anf import normalize
from repro.interp import run_semantic_cps
from repro.interp.errors import Diverged, FuelExhausted, StuckError
from repro.interp.values import Closure, Env, Frame, Store
from repro.lang.parser import parse


def run(source: str, **kwargs):
    return run_semantic_cps(normalize(parse(source)), **kwargs)


class TestBasics:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", 42),
            ("(add1 41)", 42),
            ("(sub1 0)", -1),
            ("((lambda (x) (add1 x)) 1)", 2),
            ("(if0 0 1 2)", 1),
            ("(if0 9 1 2)", 2),
            ("(+ (add1 1) (* 3 3))", 11),
            ("(let (x 3) (let (y (add1 x)) (* x y)))", 12),
            ("(((lambda (a) (lambda (b) (- a b))) 10) 3)", 7),
        ],
    )
    def test_evaluation(self, source, expected):
        assert run(source).value == expected

    def test_lambda_yields_closure(self):
        assert isinstance(run("(lambda (x) x)").value, Closure)

    def test_untaken_branch_not_evaluated(self):
        assert run("(if0 0 5 (loop))").value == 5


class TestMachineCharacter:
    def test_deep_non_tail_recursion_has_no_host_stack_cost(self):
        # The machine's continuation is explicit, so deep non-tail
        # recursion that would overflow the direct interpreter's host
        # stack runs fine here.
        src = """
        (let (down (lambda (self)
                     (lambda (n)
                       (if0 n 0 (add1 ((self self) (- n 1)))))))
          ((down down) 3000))
        """
        assert run(src, fuel=2_000_000).value == 3000

    def test_initial_continuation_frames_apply_in_order(self):
        # Provide a non-empty initial continuation: the answer value is
        # threaded through the supplied frames.
        store = Store()
        env = Env()
        frame_term = normalize(parse("(add1 h)"), ensure_unique=False)
        kont = (Frame("h", frame_term, env),)
        answer = run_semantic_cps(
            normalize(parse("41")), env=env, store=store, kont=kont
        )
        assert answer.value == 42


class TestErrors:
    def test_apply_number_is_stuck(self):
        with pytest.raises(StuckError):
            run("(1 2)")

    def test_loop_diverges(self):
        with pytest.raises(Diverged):
            run("(loop)")

    def test_omega_exhausts_fuel(self):
        with pytest.raises(FuelExhausted):
            run("((lambda (x) (x x)) (lambda (x) (x x)))", fuel=5000)
