"""Domain-specific behaviour beyond the generic lattice laws."""

import pytest

from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.domains.constprop import BOT, TOP
from repro.domains.interval import INT_BOT, Interval
from repro.domains.parity import EVEN, ODD, PAR_TOP
from repro.domains.sign import NEG, POS, SIGN_TOP, ZERO
from repro.domains.unit import UNIT_BOT, UNIT_TOP


class TestConstProp:
    dom = ConstPropDomain()

    def test_flat_join(self):
        assert self.dom.join(1, 1) == 1
        assert self.dom.join(1, 2) is TOP

    def test_add1_on_constant(self):
        assert self.dom.add1(41) == 42
        assert self.dom.sub1(0) == -1

    def test_add1_preserves_extremes(self):
        assert self.dom.add1(TOP) is TOP
        assert self.dom.add1(BOT) is BOT

    def test_binop_constants(self):
        assert self.dom.binop("+", 2, 3) == 5
        assert self.dom.binop("*", -2, 3) == -6

    def test_binop_strict_in_bottom(self):
        assert self.dom.binop("+", BOT, 5) is BOT
        assert self.dom.binop("*", TOP, BOT) is BOT

    def test_mul_zero_beats_top(self):
        assert self.dom.binop("*", 0, TOP) == 0
        assert self.dom.binop("*", TOP, 0) == 0

    def test_branching(self):
        assert self.dom.may_be_zero(0)
        assert not self.dom.may_be_nonzero(0)
        assert self.dom.may_be_nonzero(3)
        assert not self.dom.may_be_zero(3)
        assert self.dom.may_be_zero(TOP) and self.dom.may_be_nonzero(TOP)

    def test_not_distributive_flag(self):
        assert not self.dom.distributive


class TestUnit:
    dom = UnitDomain()

    def test_single_abstraction(self):
        assert self.dom.const(0) is UNIT_TOP
        assert self.dom.const(123) is UNIT_TOP

    def test_no_numeric_distinctions(self):
        assert self.dom.may_be_zero(UNIT_TOP)
        assert self.dom.may_be_nonzero(UNIT_TOP)

    def test_distributive_flag(self):
        assert self.dom.distributive

    def test_binop_strict(self):
        assert self.dom.binop("+", UNIT_BOT, UNIT_TOP) is UNIT_BOT


class TestParity:
    dom = ParityDomain()

    def test_const(self):
        assert self.dom.const(4) is EVEN
        assert self.dom.const(-3) is ODD
        assert self.dom.const(0) is EVEN

    def test_add1_flips(self):
        assert self.dom.add1(EVEN) is ODD
        assert self.dom.sub1(ODD) is EVEN

    def test_plus_table(self):
        assert self.dom.binop("+", EVEN, EVEN) is EVEN
        assert self.dom.binop("+", EVEN, ODD) is ODD
        assert self.dom.binop("-", ODD, ODD) is EVEN

    def test_times_even_absorbs_top(self):
        assert self.dom.binop("*", EVEN, PAR_TOP) is EVEN
        assert self.dom.binop("*", ODD, ODD) is ODD

    def test_odd_cannot_be_zero(self):
        assert not self.dom.may_be_zero(ODD)
        assert self.dom.may_be_zero(EVEN)


class TestSign:
    dom = SignDomain()

    def test_const(self):
        assert self.dom.const(-2) is NEG
        assert self.dom.const(0) is ZERO
        assert self.dom.const(9) is POS

    def test_add1(self):
        assert self.dom.add1(ZERO) is POS
        assert self.dom.add1(POS) is POS
        assert self.dom.add1(NEG) is SIGN_TOP

    def test_sub1(self):
        assert self.dom.sub1(ZERO) is NEG
        assert self.dom.sub1(NEG) is NEG
        assert self.dom.sub1(POS) is SIGN_TOP

    def test_multiplication_signs(self):
        assert self.dom.binop("*", NEG, NEG) is POS
        assert self.dom.binop("*", NEG, POS) is NEG
        assert self.dom.binop("*", ZERO, SIGN_TOP) is ZERO

    def test_subtraction_via_negation(self):
        assert self.dom.binop("-", ZERO, POS) is NEG
        assert self.dom.binop("-", POS, NEG) is POS

    def test_iota_is_top(self):
        # naturals include 0 and positives; the 5-point lattice joins
        # them to TOP
        assert self.dom.iota is SIGN_TOP


class TestInterval:
    dom = IntervalDomain(bound=10)

    def test_const(self):
        assert self.dom.const(3) == Interval(3, 3)

    def test_clamping_saturates_outward(self):
        assert self.dom.const(100) == Interval(10, None)
        assert self.dom.const(-100) == Interval(None, -10)
        assert self.dom.add1(Interval(10, 10)) == Interval(10, None)

    def test_join_is_hull(self):
        assert self.dom.join(Interval(1, 2), Interval(5, 6)) == Interval(1, 6)

    def test_leq_is_containment(self):
        assert self.dom.leq(Interval(2, 3), Interval(1, 5))
        assert not self.dom.leq(Interval(0, 3), Interval(1, 5))

    def test_arithmetic(self):
        assert self.dom.binop("+", Interval(1, 2), Interval(3, 4)) == Interval(4, 6)
        assert self.dom.binop("-", Interval(1, 2), Interval(3, 4)) == Interval(-3, -1)
        assert self.dom.binop("*", Interval(-2, 3), Interval(2, 2)) == Interval(-4, 6)

    def test_iota(self):
        assert self.dom.iota == Interval(0, None)
        assert self.dom.abstracts(self.dom.iota, 0)
        assert not self.dom.abstracts(self.dom.iota, -1)

    def test_zero_test(self):
        assert self.dom.may_be_zero(Interval(-1, 1))
        assert not self.dom.may_be_zero(Interval(1, 5))
        assert not self.dom.may_be_nonzero(Interval(0, 0))

    def test_bottom_strictness(self):
        assert self.dom.binop("+", INT_BOT, Interval(0, 1)) is INT_BOT

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            IntervalDomain(bound=0)

    def test_finite_height_by_construction(self):
        # repeatedly widening via add1 must stabilize (saturation)
        value = self.dom.const(0)
        seen = set()
        for _ in range(100):
            value = self.dom.join(value, self.dom.add1(value))
            if value in seen:
                break
            seen.add(value)
        assert value == Interval(0, None)
