"""Property-based lattice-law tests for every number domain.

For each domain we check, on elements generated from integer seeds:

- join is commutative, associative, idempotent;
- bottom is the identity and top the absorbing element of join;
- leq is reflexive, antisymmetric, transitive;
- join is the least upper bound (a <= a∨b, b <= a∨b, and a∨b is below
  any common upper bound);
- transfer functions are monotone;
- transfer functions are *sound* with respect to concrete arithmetic;
- the branch predicates cover concrete reality (if n is abstracted by
  a and n == 0 then may_be_zero(a), etc.).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    ParityDomain,
    SignDomain,
    UnitDomain,
)

DOMAINS = [
    ConstPropDomain(),
    UnitDomain(),
    ParityDomain(),
    SignDomain(),
    IntervalDomain(bound=16),
]

IDS = [d.name for d in DOMAINS]


def element(domain, picks: list[int]):
    """Deterministically build a domain element from seed integers:
    a join of constants, possibly with bottom/top mixed in."""
    value = domain.bottom
    for pick in picks:
        if pick % 7 == 0:
            value = domain.join(value, domain.top)
        else:
            value = domain.join(value, domain.const(pick % 21 - 10))
    return value


elements_strategy = st.lists(st.integers(0, 1_000), min_size=0, max_size=4)


@pytest.mark.parametrize("domain", DOMAINS, ids=IDS)
class TestLatticeLaws:
    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy)
    def test_join_commutative(self, domain, a, b):
        x, y = element(domain, a), element(domain, b)
        assert domain.join(x, y) == domain.join(y, x)

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy, c=elements_strategy)
    def test_join_associative(self, domain, a, b, c):
        x, y, z = element(domain, a), element(domain, b), element(domain, c)
        assert domain.join(domain.join(x, y), z) == domain.join(
            x, domain.join(y, z)
        )

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy)
    def test_join_idempotent(self, domain, a):
        x = element(domain, a)
        assert domain.join(x, x) == x

    @settings(max_examples=40, deadline=None)
    @given(a=elements_strategy)
    def test_bottom_identity_top_absorbing(self, domain, a):
        x = element(domain, a)
        assert domain.join(x, domain.bottom) == x
        assert domain.join(x, domain.top) == domain.top

    @settings(max_examples=40, deadline=None)
    @given(a=elements_strategy)
    def test_leq_reflexive_and_bounds(self, domain, a):
        x = element(domain, a)
        assert domain.leq(x, x)
        assert domain.leq(domain.bottom, x)
        assert domain.leq(x, domain.top)

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy)
    def test_leq_antisymmetric(self, domain, a, b):
        x, y = element(domain, a), element(domain, b)
        if domain.leq(x, y) and domain.leq(y, x):
            assert x == y

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy, c=elements_strategy)
    def test_leq_transitive(self, domain, a, b, c):
        x, y, z = element(domain, a), element(domain, b), element(domain, c)
        if domain.leq(x, y) and domain.leq(y, z):
            assert domain.leq(x, z)

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy, c=elements_strategy)
    def test_join_is_least_upper_bound(self, domain, a, b, c):
        x, y = element(domain, a), element(domain, b)
        joined = domain.join(x, y)
        assert domain.leq(x, joined)
        assert domain.leq(y, joined)
        upper = domain.join(joined, element(domain, c))
        if domain.leq(x, upper) and domain.leq(y, upper):
            assert domain.leq(joined, upper)

    @settings(max_examples=60, deadline=None)
    @given(a=elements_strategy, b=elements_strategy)
    def test_transfer_monotone(self, domain, a, b):
        x, y = element(domain, a), element(domain, b)
        if domain.leq(x, y):
            assert domain.leq(domain.add1(x), domain.add1(y))
            assert domain.leq(domain.sub1(x), domain.sub1(y))
            for op in ("+", "-", "*"):
                assert domain.leq(
                    domain.binop(op, x, x), domain.binop(op, y, y)
                )

    @settings(max_examples=80, deadline=None)
    @given(n=st.integers(-15, 15), m=st.integers(-15, 15))
    def test_transfer_sound_on_constants(self, domain, n, m):
        a, b = domain.const(n), domain.const(m)
        assert domain.abstracts(domain.add1(a), n + 1)
        assert domain.abstracts(domain.sub1(a), n - 1)
        assert domain.abstracts(domain.binop("+", a, b), n + m)
        assert domain.abstracts(domain.binop("-", a, b), n - m)
        assert domain.abstracts(domain.binop("*", a, b), n * m)

    @settings(max_examples=80, deadline=None)
    @given(n=st.integers(-15, 15), picks=elements_strategy)
    def test_branch_predicates_cover_reality(self, domain, n, picks):
        a = domain.join(domain.const(n), element(domain, picks))
        assert domain.abstracts(a, n)
        if n == 0:
            assert domain.may_be_zero(a)
        else:
            assert domain.may_be_nonzero(a)

    def test_bottom_branches_nowhere(self, domain):
        assert not domain.may_be_zero(domain.bottom)
        assert not domain.may_be_nonzero(domain.bottom)

    def test_iota_covers_naturals(self, domain):
        for i in range(0, 20):
            assert domain.abstracts(domain.iota, i)

    @settings(max_examples=40, deadline=None)
    @given(a=elements_strategy)
    def test_elements_hashable(self, domain, a):
        x = element(domain, a)
        assert hash(x) == hash(element(domain, a))
