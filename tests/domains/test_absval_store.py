"""Tests for abstract values (product lattice) and abstract stores."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.common import A_DEC, A_INC, A_STOP, AbsClo
from repro.domains import AbsStore, AbsVal, ConstPropDomain, Lattice
from repro.domains.constprop import BOT, TOP
from repro.lang.ast import Var

LAT = Lattice(ConstPropDomain())
CLO = AbsClo("x", Var("x"))


def val(seed: int) -> AbsVal:
    """Deterministic small abstract values."""
    num = [BOT, 0, 1, TOP][seed % 4]
    clos = [frozenset(), frozenset({A_INC}), frozenset({CLO, A_DEC})][
        (seed // 4) % 3
    ]
    konts = [frozenset(), frozenset({A_STOP})][(seed // 12) % 2]
    return AbsVal(num, clos, konts)


class TestAbsVal:
    def test_join_componentwise(self):
        a = AbsVal(0, frozenset({A_INC}))
        b = AbsVal(1, frozenset({CLO}))
        joined = LAT.join(a, b)
        assert joined.num is TOP
        assert joined.clos == frozenset({A_INC, CLO})

    def test_leq_componentwise(self):
        small = AbsVal(0, frozenset())
        big = AbsVal(TOP, frozenset({A_INC}))
        assert LAT.leq(small, big)
        assert not LAT.leq(big, small)

    def test_bottom_is_least(self):
        assert LAT.leq(LAT.bottom, AbsVal(TOP, frozenset({CLO})))
        assert LAT.is_bottom(LAT.bottom)
        assert not LAT.is_bottom(LAT.of_const(0))

    def test_injections(self):
        assert LAT.of_const(5).num == 5
        assert LAT.of_clos(A_INC).clos == frozenset({A_INC})
        assert LAT.of_konts(A_STOP).konts == frozenset({A_STOP})

    def test_join_all_empty_is_bottom(self):
        assert LAT.join_all([]) == LAT.bottom

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 23), b=st.integers(0, 23))
    def test_join_upper_bound(self, a, b):
        x, y = val(a), val(b)
        joined = LAT.join(x, y)
        assert LAT.leq(x, joined) and LAT.leq(y, joined)

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 23), b=st.integers(0, 23))
    def test_leq_antisymmetry(self, a, b):
        x, y = val(a), val(b)
        if LAT.leq(x, y) and LAT.leq(y, x):
            assert x == y


class TestAbsStore:
    def test_get_defaults_to_bottom(self):
        store = AbsStore(LAT)
        assert store.get("ghost") == LAT.bottom

    def test_bottom_entries_normalized_away(self):
        a = AbsStore(LAT, {"x": LAT.bottom})
        b = AbsStore(LAT)
        assert a == b
        assert hash(a) == hash(b)
        assert "x" not in a

    def test_joined_bind_accumulates(self):
        store = AbsStore(LAT).joined_bind("x", LAT.of_const(1))
        store = store.joined_bind("x", LAT.of_const(1))
        assert store.get("x").num == 1
        store = store.joined_bind("x", LAT.of_const(2))
        assert store.get("x").num is TOP

    def test_joined_bind_is_persistent(self):
        base = AbsStore(LAT)
        extended = base.joined_bind("x", LAT.of_const(1))
        assert "x" not in base
        assert "x" in extended

    def test_join_pointwise(self):
        a = AbsStore(LAT, {"x": LAT.of_const(1)})
        b = AbsStore(LAT, {"x": LAT.of_const(1), "y": LAT.of_clos(CLO)})
        joined = a.join(b)
        assert joined.get("x").num == 1
        assert joined.get("y").clos == frozenset({CLO})

    def test_join_conflicting_entries(self):
        a = AbsStore(LAT, {"x": LAT.of_const(1)})
        b = AbsStore(LAT, {"x": LAT.of_const(2)})
        assert a.join(b).get("x").num is TOP

    def test_leq(self):
        small = AbsStore(LAT, {"x": LAT.of_const(1)})
        big = AbsStore(LAT, {"x": LAT.of_num(TOP), "y": LAT.of_const(0)})
        assert small.leq(big)
        assert not big.leq(small)
        assert AbsStore(LAT).leq(small)

    def test_restrict(self):
        store = AbsStore(
            LAT, {"x": LAT.of_const(1), "k/halt": LAT.of_konts(A_STOP)}
        )
        restricted = store.restrict(["x"])
        assert "x" in restricted
        assert "k/halt" not in restricted

    def test_equality_and_hash_by_content(self):
        a = AbsStore(LAT, {"x": LAT.of_const(1)})
        b = AbsStore(LAT).joined_bind("x", LAT.of_const(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        a = AbsStore(LAT, {"x": LAT.of_const(1)})
        table = {a: "hit"}
        b = AbsStore(LAT, {"x": LAT.of_const(1)})
        assert table[b] == "hit"

    def test_joined_bind_no_op_returns_self(self):
        # Re-binding a value the entry already absorbs must not build
        # a fresh store: loop detection and the perf caches key on
        # store identity/equality, and this is the hot path.
        store = AbsStore(LAT, {"x": LAT.of_num(TOP)})
        assert store.joined_bind("x", LAT.of_const(1)) is store
        assert store.joined_bind("x", LAT.of_num(TOP)) is store

    def test_joined_bind_intern_hook(self):
        seen = []

        def intern(value):
            seen.append(value)
            return value

        store = AbsStore(LAT).joined_bind(
            "x", LAT.of_const(1), intern=intern
        )
        assert store.get("x").num == 1
        assert seen == [LAT.of_const(1)]
        # The no-op path never consults the interner.
        store.joined_bind("x", LAT.of_const(1), intern=intern)
        assert len(seen) == 1

    def test_join_short_circuits_on_identity(self):
        store = AbsStore(LAT, {"x": LAT.of_const(1)})
        assert store.join(store) is store

    def test_join_short_circuits_on_empty(self):
        empty = AbsStore(LAT)
        store = AbsStore(LAT, {"x": LAT.of_const(1)})
        assert store.join(empty) is store
        assert empty.join(store) is store
        assert empty.join(AbsStore(LAT)) is empty

    def test_restrict_accepts_sets_without_rebuilding(self):
        store = AbsStore(
            LAT, {"x": LAT.of_const(1), "y": LAT.of_const(2)}
        )
        for names in ({"x"}, frozenset({"x"}), ["x"], iter(["x"])):
            restricted = store.restrict(names)
            assert "x" in restricted and "y" not in restricted

    @settings(max_examples=40, deadline=None)
    @given(
        seeds=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 23)),
            max_size=6,
        )
    )
    def test_join_commutes(self, seeds):
        a = AbsStore(LAT)
        b = AbsStore(LAT)
        for i, (which, seed) in enumerate(seeds):
            name = f"v{i % 3}"
            if which % 2:
                a = a.joined_bind(name, val(seed))
            else:
                b = b.joined_bind(name, val(seed))
        assert a.join(b) == b.join(a)
        assert a.leq(a.join(b)) and b.leq(a.join(b))
