"""Tests for the program corpus and parametric workload families."""

import pytest

from repro.anf import validate_anf
from repro.corpus import (
    PROGRAMS,
    conditional_chain,
    call_site_chain,
    corpus_program,
    loop_feeding_conditional,
)
from repro.domains import ConstPropDomain, Lattice
from repro.interp import run_direct
from repro.lang.syntax import free_variables

LAT = Lattice(ConstPropDomain())


class TestCorpusIntegrity:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_terms_are_valid_anf(self, name):
        validate_anf(PROGRAMS[name].term)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_initial_covers_free_variables(self, name):
        program = PROGRAMS[name]
        assumed = set(program.initial_for(LAT))
        assert free_variables(program.term) <= assumed | set()

    def test_lookup(self):
        assert corpus_program("factorial").name == "factorial"
        with pytest.raises(KeyError):
            corpus_program("no-such-program")

    def test_closed_programs_run(self):
        for name, program in PROGRAMS.items():
            if free_variables(program.term):
                continue
            if name == "shivers-p33":
                pass
            answer = run_direct(program.term, fuel=500_000)
            assert answer.value is not None

    def test_factorial_value(self):
        assert run_direct(corpus_program("factorial").term).value == 720

    def test_even_odd_value(self):
        assert run_direct(corpus_program("even-odd").term).value == 1

    def test_church_value(self):
        assert run_direct(corpus_program("church").term).value == 3

    def test_church_pairs_value(self):
        assert run_direct(corpus_program("church-pairs").term).value == 7

    def test_ackermann_value(self):
        assert run_direct(corpus_program("ackermann").term).value == 9

    def test_mini_evaluator_value(self):
        program = corpus_program("mini-evaluator")
        assert run_direct(program.term, fuel=1_000_000).value == 10


class TestWorkloadFamilies:
    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_conditional_chain_shape(self, k):
        program = conditional_chain(k)
        validate_anf(program.term)
        assert free_variables(program.term) == {
            f"x{i}" for i in range(1, k + 1)
        }

    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_call_site_chain_shape(self, k):
        program = call_site_chain(k)
        validate_anf(program.term)
        assert free_variables(program.term) == {"f"}

    def test_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            conditional_chain(0)
        with pytest.raises(ValueError):
            call_site_chain(0)

    def test_conditional_chain_concrete_run(self):
        from repro.interp.values import Env, Store

        program = conditional_chain(4)
        env, store = Env(), Store()
        for i in range(1, 5):
            loc = store.new(f"x{i}")
            store.bind(loc, i % 2)
            env = env.bind(f"x{i}", loc)
        answer = run_direct(program.term, env=env, store=store)
        assert isinstance(answer.value, int)

    def test_loop_program_has_loop(self):
        from repro.lang.ast import Loop
        from repro.lang.syntax import subterms

        program = loop_feeding_conditional(5)
        assert any(isinstance(s, Loop) for s in subterms(program.term))
