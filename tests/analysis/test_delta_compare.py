"""Unit tests for the abstract δe map and the precision comparisons."""

import pytest

from repro.analysis import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    A_STOP,
    AAnswer,
    AbsClo,
    AbsCpsClo,
)
from repro.analysis.compare import (
    Precision,
    answer_leq,
    compare_answers,
    source_variables,
)
from repro.analysis.delta import (
    delta_answer,
    delta_closure,
    delta_store,
    delta_value,
)
from repro.cps.ast import CVar, KApp
from repro.domains import AbsStore, AbsVal, ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.lang.ast import Var

DOM = ConstPropDomain()
LAT = Lattice(DOM)


class TestDeltaClosure:
    def test_inc_maps_to_inck(self):
        assert delta_closure(A_INC) is A_INCK
        assert delta_closure(A_DEC) is A_DECK

    def test_user_closure_gets_cps_body(self):
        image = delta_closure(AbsClo("x", Var("x")))
        assert image == AbsCpsClo("x", "k/x", KApp("k/x", CVar("x")))

    def test_rejects_cps_closures(self):
        with pytest.raises(TypeError):
            delta_closure(A_INCK)


class TestDeltaValue:
    def test_number_component_unchanged(self):
        assert delta_value(LAT.of_const(5)).num == 5

    def test_closures_mapped(self):
        value = LAT.of_clos(A_INC, AbsClo("x", Var("x")))
        image = delta_value(value)
        assert A_INCK in image.clos
        assert len(image.clos) == 2

    def test_no_continuations_in_image(self):
        assert delta_value(LAT.of_const(1)).konts == frozenset()

    def test_rejects_values_with_continuations(self):
        with pytest.raises(ValueError):
            delta_value(LAT.of_konts(A_STOP))


class TestDeltaStoreAnswer:
    def test_pointwise(self):
        store = AbsStore(
            LAT, {"a": LAT.of_const(1), "f": LAT.of_clos(A_INC)}
        )
        image = delta_store(store)
        assert image.get("a").num == 1
        assert image.get("f").clos == frozenset({A_INCK})

    def test_componentwise_on_answers(self):
        answer = AAnswer(
            LAT.of_const(2), AbsStore(LAT, {"x": LAT.of_clos(A_DEC)})
        )
        image = delta_answer(answer)
        assert image.value.num == 2
        assert image.store.get("x").clos == frozenset({A_DECK})


def ans(value, **entries):
    return AAnswer(value, AbsStore(LAT, entries))


class TestCompareAnswers:
    def test_equal(self):
        a = ans(LAT.of_const(1), x=LAT.of_const(2))
        b = ans(LAT.of_const(1), x=LAT.of_const(2))
        assert compare_answers(a, b, LAT) is Precision.EQUAL

    def test_left_more_precise_via_value(self):
        a = ans(LAT.of_const(1))
        b = ans(LAT.of_num(TOP))
        assert compare_answers(a, b, LAT) is Precision.LEFT_MORE_PRECISE

    def test_right_more_precise_via_store(self):
        a = ans(LAT.of_const(1), x=LAT.of_num(TOP))
        b = ans(LAT.of_const(1), x=LAT.of_const(5))
        assert compare_answers(a, b, LAT) is Precision.RIGHT_MORE_PRECISE

    def test_incomparable(self):
        a = ans(LAT.of_const(1), x=LAT.of_num(TOP))
        b = ans(LAT.of_num(TOP), x=LAT.of_const(5))
        assert compare_answers(a, b, LAT) is Precision.INCOMPARABLE

    def test_names_filter(self):
        a = ans(LAT.of_const(1), x=LAT.of_num(TOP), y=LAT.of_const(2))
        b = ans(LAT.of_const(1), x=LAT.of_const(5), y=LAT.of_const(2))
        # restricted to y, the answers agree
        assert compare_answers(a, b, LAT, names=["y"]) is Precision.EQUAL

    def test_missing_entry_is_bottom(self):
        a = ans(LAT.of_const(1))
        b = ans(LAT.of_const(1), x=LAT.of_const(5))
        assert answer_leq(a, b, LAT)
        assert not answer_leq(b, a, LAT)


class TestSourceVariables:
    def test_excludes_kvar_namespace(self):
        answer = ans(
            LAT.of_const(1),
            x=LAT.of_const(2),
            **{"k/halt": LAT.of_konts(A_STOP)},
        )
        assert source_variables(answer) == {"x"}
