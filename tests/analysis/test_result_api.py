"""Tests for the AnalysisResult query API and analyzer statistics."""

import pytest

from repro.analysis import (
    A_STOP,
    analyze_direct,
    analyze_syntactic_cps,
)
from repro.anf import normalize
from repro.cps import TOP_KVAR, cps_transform
from repro.domains import ConstPropDomain
from repro.lang.parser import parse

DOM = ConstPropDomain()


def direct(source: str):
    return analyze_direct(normalize(parse(source)), DOM)


class TestQueries:
    def test_value_of_unknown_variable_is_bottom(self):
        result = direct("42")
        assert result.lattice.is_bottom(result.value_of("ghost"))

    def test_constant_of_known(self):
        assert direct("(let (a (+ 1 2)) a)").constant_of("a") == 3

    def test_constant_of_top_is_none(self):
        result = direct("(let (f (lambda (x) x)) (let (u (f 1)) (f 2)))")
        assert result.constant_of("x") is None

    def test_constant_of_unbound_is_none(self):
        assert direct("42").constant_of("ghost") is None

    def test_closures_of(self):
        result = direct("(let (f (lambda (x) x)) f)")
        assert len(result.closures_of("f")) == 1
        assert result.closures_of("nope") == frozenset()

    def test_konts_of_on_cps_analysis(self):
        result = analyze_syntactic_cps(
            cps_transform(normalize(parse("(let (a 1) a)"))), DOM
        )
        assert result.konts_of(TOP_KVAR) == frozenset({A_STOP})

    def test_is_reachable(self):
        result = direct("(let (a 1) a)")
        assert result.is_reachable("a")
        assert not result.is_reachable("ghost")

    def test_variables_lists_bound_entries(self):
        result = direct("(let (a 1) (let (b 2) b))")
        assert set(result.variables()) == {"a", "b"}

    def test_repr_mentions_analyzer(self):
        assert "direct" in repr(direct("42"))


class TestToDict:
    def test_json_serializable(self):
        import json

        result = direct("(let (f (lambda (x) x)) (let (a (f 1)) a))")
        payload = json.dumps(result.to_dict())
        assert "cle" in payload

    def test_continuations_included_for_cps(self):
        result = analyze_syntactic_cps(
            cps_transform(normalize(parse("(let (a 1) a)"))), DOM
        )
        view = result.to_dict()
        assert "continuations" in view["store"][TOP_KVAR]

    def test_stats_included(self):
        view = direct("42").to_dict()
        assert view["stats"]["visits"] >= 1
        assert view["analyzer"] == "direct"


class TestStats:
    def test_as_dict_keys(self):
        stats = direct("(let (a 1) a)").stats
        data = stats.as_dict()
        # the original schema stays stable for report.py ...
        assert {
            "visits",
            "loop_cuts",
            "max_depth",
            "returns_analyzed",
        } <= set(data)
        # ... plus the obs counters
        assert {
            "joins",
            "widenings",
            "loop_detections",
            "max_store_size",
        } <= set(data)
        assert data["visits"] >= 2
        assert data["loop_detections"] == data["loop_cuts"]
        assert data["max_store_size"] >= 1

    def test_returns_counted_by_cps_analyzers(self):
        term = normalize(parse("(let (f (lambda (x) x)) (f 1))"))
        result = analyze_syntactic_cps(cps_transform(term), DOM)
        assert result.stats.returns_analyzed >= 1


class TestAnalyzerErrors:
    def test_direct_analyzer_rejects_cps_closures(self):
        from repro.analysis import A_INCK
        from repro.domains import Lattice

        lat = Lattice(DOM)
        term = normalize(parse("(let (r (f 1)) r)"))
        with pytest.raises(TypeError):
            analyze_direct(term, DOM, initial={"f": lat.of_clos(A_INCK)})
