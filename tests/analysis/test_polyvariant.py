"""Tests for the k-CFA polyvariant direct analyzer.

Beyond unit behaviour, these tests pin the scientific point of the
extension: call-string polyvariance repairs the classic monovariant
imprecision (parameter merging across call sites) but does *not*
recover the Theorem 5.2 duplication gain — supporting the paper's
claim that the CPS analyses' extra precision is specifically the
duplication of returns, not context sensitivity.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    analyze_direct,
    analyze_polyvariant,
)
from repro.analysis.polyvariant import CtxVar, PolyClo, TOP_CONTEXT
from repro.anf import normalize
from repro.corpus import (
    PROGRAMS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
)
from repro.domains import ConstPropDomain, Lattice, ParityDomain
from repro.domains.constprop import TOP
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.interp.values import Closure, PrimVal
from repro.lang.parser import parse

DOM = ConstPropDomain()
LAT = Lattice(DOM)

REPEATED_CALLS = """(let (f (lambda (x) (add1 x)))
                     (let (u (f 1)) (let (v (f 2)) (+ u v))))"""


def analyze(source: str, k: int = 1, initial=None, domain=DOM):
    return analyze_polyvariant(
        normalize(parse(source)), domain, k=k, initial=initial
    )


class TestBasics:
    def test_constant_result(self):
        assert analyze("(add1 41)").value.num == 42

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            analyze("42", k=-1)

    def test_contexts_of_exposes_per_site_values(self):
        result = analyze(REPEATED_CALLS, k=1)
        contexts = result.contexts_of("x")
        assert contexts[("u",)].num == 1
        assert contexts[("v",)].num == 2

    def test_value_of_specific_context(self):
        result = analyze(REPEATED_CALLS, k=1)
        assert result.constant_of("x", ("u",)) == 1
        assert result.constant_of("x", ("v",)) == 2
        assert result.value_of("x").num is TOP  # join over contexts

    def test_closures_carry_binding_environments(self):
        result = analyze(
            "(let (a 7) (let (f (lambda (x) (+ x a))) (f 1)))", k=1
        )
        (clo,) = result.value_of("f").clos
        # the collapsed view drops contexts; the raw store keeps them
        raw = result.contexts_of("f")[TOP_CONTEXT]
        assert raw.clos


class TestPolyvariancePrecision:
    def test_repairs_repeated_call_merging(self):
        mono = analyze_direct(normalize(parse(REPEATED_CALLS)), DOM)
        poly = analyze(REPEATED_CALLS, k=1)
        assert mono.value.num is TOP
        assert poly.value.num == 5
        assert poly.constant_of("v") == 3

    def test_k2_separates_two_level_call_chains(self):
        source = """(let (apply (lambda (g) (g 10)))
                     (let (inc (lambda (y) (add1 y)))
                       (let (dec (lambda (z) (sub1 z)))
                         (let (a (apply inc))
                           (let (b (apply dec))
                             (+ a b))))))"""
        mono = analyze_direct(normalize(parse(source)), DOM)
        poly1 = analyze(source, k=1)
        assert mono.value.num is TOP
        # k=1 distinguishes the apply calls: a=11, b=9
        assert poly1.constant_of("a") == 11
        assert poly1.constant_of("b") == 9
        assert poly1.value.num == 20


class TestDuplicationIsNotPolyvariance:
    """The paper's point, sharpened: no call-string length recovers
    the Theorem 5.2 precision, because the loss happens at *returns*
    (store merges), which contexts do not split."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_conditional_witness_stays_top(self, k):
        program = THEOREM_52_CONDITIONAL
        result = analyze_polyvariant(
            program.term, DOM, k=k, initial=program.initial_for(LAT)
        )
        assert result.value_of("a2").num is TOP

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_two_closure_witness_stays_top(self, k):
        program = THEOREM_52_TWO_CLOSURES
        result = analyze_polyvariant(
            program.term, DOM, k=k, initial=program.initial_for(LAT)
        )
        assert result.value_of("a2").num is TOP


class TestMonovariantDegeneration:
    @pytest.mark.parametrize(
        "name",
        [
            n
            for n in sorted(PROGRAMS)
            if n not in ("factorial", "even-odd")
            and not PROGRAMS[n].heavy
        ],
    )
    def test_k0_matches_figure4_on_cut_free_corpus(self, name):
        program = PROGRAMS[name]
        initial = program.initial_for(LAT)
        mono = analyze_direct(program.term, DOM, initial=initial)
        poly = analyze_polyvariant(
            program.term, DOM, k=0, initial=initial
        ).collapse()
        assert poly.value == mono.value
        for var in mono.variables():
            assert poly.value_of(var) == mono.value_of(var), var

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_k0_matches_figure4_on_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        mono = analyze_direct(term, DOM)
        poly = analyze_polyvariant(term, DOM, k=0).collapse()
        assert poly.value == mono.value


class TestTermination:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_factorial_terminates(self, k):
        result = analyze_polyvariant(PROGRAMS["factorial"].term, DOM, k=k)
        assert result.stats.loop_cuts >= 1

    def test_omega_terminates(self):
        result = analyze(
            "((lambda (x) (x x)) (lambda (y) (y y)))", k=2
        )
        assert result.stats.loop_cuts >= 1


class TestSoundness:
    def _describes(self, domain, abstract, concrete) -> bool:
        if isinstance(concrete, int):
            return domain.abstracts(abstract.num, concrete)
        if isinstance(concrete, PrimVal):
            return bool(abstract.clos)
        if isinstance(concrete, Closure):
            return any(
                isinstance(c, PolyClo) or c.param == concrete.param
                for c in abstract.clos
            ) or bool(abstract.clos)
        return False

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        depth=st.integers(2, 4),
        k=st.integers(0, 2),
    )
    def test_sound_against_concrete_runs(self, seed, depth, k):
        term = normalize(random_closed_term(random.Random(seed), depth))
        concrete = run_direct(term, fuel=500_000)
        result = analyze_polyvariant(term, DOM, k=k)
        if isinstance(concrete.value, int):
            assert DOM.abstracts(result.value.num, concrete.value)
        for loc, value in concrete.store.items():
            if isinstance(value, int):
                abstract = result.value_of(loc.name)
                assert DOM.abstracts(abstract.num, value), loc.name

    def test_sound_with_parity(self):
        dom = ParityDomain()
        result = analyze(REPEATED_CALLS, k=1, domain=dom)
        from repro.domains.parity import ODD

        assert result.value.num is ODD  # 5 is odd, provably
