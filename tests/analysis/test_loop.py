"""The Section 6.2 `loop` experiments: computability of the analyses.

`loop`'s exact collecting semantics is {0, 1, 2, ...}.  The direct
analyzer handles it exactly (the join of all naturals is a single
domain element, `iota`).  The CPS analyzers would have to compute the
join of the continuation applied to *every* natural — undecidable in
general (Kam & Ullman) — so they either refuse, approximate with one
`iota` application, or unroll a prefix whose answer keeps changing as
the prefix grows.
"""

import pytest

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import (
    NonComputableError,
    analyze_direct,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.corpus import loop_feeding_conditional
from repro.cps import cps_transform
from repro.domains import ConstPropDomain, IntervalDomain
from repro.domains.constprop import TOP

DOM = ConstPropDomain()


class TestDirectAlwaysComputable:
    @pytest.mark.parametrize("threshold", [1, 5, 50])
    def test_direct_terminates_with_iota(self, threshold):
        program = loop_feeding_conditional(threshold)
        result = analyze_direct(program.term, DOM)
        assert result.num_of("i") is TOP
        assert result.num_of("r") is TOP  # both branches merged

    def test_direct_with_interval_keeps_naturals(self):
        program = loop_feeding_conditional(3)
        result = analyze_direct(program.term, IntervalDomain(bound=8))
        from repro.domains.interval import Interval

        assert result.num_of("i") == Interval(0, None)


class TestCpsAnalyzersRefuse:
    def test_semantic_rejects_by_default(self):
        program = loop_feeding_conditional(3)
        with pytest.raises(NonComputableError):
            analyze_semantic_cps(program.term, DOM)

    def test_syntactic_rejects_by_default(self):
        program = loop_feeding_conditional(3)
        with pytest.raises(NonComputableError):
            analyze_syntactic_cps(cps_transform(program.term), DOM)

    def test_run_comparison_propagates(self):
        with pytest.raises(NonComputableError):
            run_comparison(loop_feeding_conditional(3), analyzers=THREE_WAY_ANALYZERS)


class TestTopModeMatchesDirect:
    def test_semantic_top_equals_direct(self):
        program = loop_feeding_conditional(3)
        direct = analyze_direct(program.term, DOM)
        semantic = analyze_semantic_cps(program.term, DOM, loop_mode="top")
        assert semantic.num_of("r") == direct.num_of("r")


class TestUnrollNeverSettles:
    """The experimental face of undecidability: for any unroll bound N
    there is a program (threshold > N) whose exact answer differs from
    the N-bounded one — the unrolled result keeps changing as the
    bound crosses the threshold."""

    def test_unroll_below_threshold_gives_wrong_constant(self):
        threshold = 10
        program = loop_feeding_conditional(threshold)
        shallow = analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=5
        )
        # every i in 0..5 makes (- i 10) nonzero: only the 222 branch
        assert shallow.constant_of("r") == 222

    def test_unroll_past_threshold_changes_the_answer(self):
        threshold = 10
        program = loop_feeding_conditional(threshold)
        deep = analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=20
        )
        # i = 10 reaches the 111 branch: the 5-bounded answer was wrong
        assert deep.num_of("r") is TOP

    @pytest.mark.parametrize("bound", [0, 3, 7])
    def test_no_finite_bound_is_stable_across_thresholds(self, bound):
        # for every bound there is a threshold that flips the answer
        program = loop_feeding_conditional(bound + 2)
        below = analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=bound
        )
        above = analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=bound + 4
        )
        assert below.value_of("r") != above.value_of("r")

    def test_syntactic_unroll_behaves_identically(self):
        threshold = 10
        program = loop_feeding_conditional(threshold)
        cps = cps_transform(program.term)
        shallow = analyze_syntactic_cps(
            cps, DOM, loop_mode="unroll", unroll_bound=5
        )
        deep = analyze_syntactic_cps(
            cps, DOM, loop_mode="unroll", unroll_bound=20
        )
        assert shallow.constant_of("r") == 222
        assert deep.num_of("r") is TOP


class TestDuplicationValueOfLoop:
    def test_unrolling_can_beat_iota(self):
        """The flip side (why the paper cares): per-value duplication
        is *more precise* than the single iota application when the
        continuation's result is insensitive to the concrete value."""
        from repro.anf import normalize
        from repro.lang.parser import parse

        term = normalize(parse("(let (d (loop)) (let (r (* d 0)) r))"))
        top_mode = analyze_semantic_cps(term, DOM, loop_mode="top")
        unrolled = analyze_semantic_cps(
            term, DOM, loop_mode="unroll", unroll_bound=8
        )
        assert top_mode.constant_of("r") == 0  # 0 * TOP = 0 (constprop)
        assert unrolled.constant_of("r") == 0
        # with a domain that cannot fold 0 * TOP the gap appears:
        from repro.domains import SignDomain
        from repro.domains.sign import ZERO

        sign_top = analyze_semantic_cps(
            term, SignDomain(), loop_mode="top"
        )
        sign_unrolled = analyze_semantic_cps(
            term, SignDomain(), loop_mode="unroll", unroll_bound=8
        )
        assert sign_top.num_of("r") is ZERO  # 0 absorbs in sign too
        assert sign_unrolled.num_of("r") is ZERO
