"""The pushdown (CFA2-style) analyzer — the ISSUE 9 tentpole.

Three claims, checked differentially:

1. **Soundness** (the Section 4.3 criterion): the pushdown answer and
   store describe every concrete run, on samples and on hundreds of
   seeded random programs.
2. **Never less precise than direct**: on the whole corpus across
   four domains and on the random populations, the pushdown verdict
   against the direct analyzer is never ``right-more-precise``.
3. **Strictly more precise where false returns bite**: the
   Theorem 5.1 witnesses and the recursive corpus rows where the
   direct analyzer's merged return points (or Section 4.4 cuts)
   poison the result.

Plus the operational contracts: summary reuse, loop cuts, argument
widening (termination on count-up recursion), budgets, and the
tree-only engine policy.
"""

import random

import pytest

from repro.analysis import (
    EngineUnsupported,
    Precision,
    PushdownAnalyzer,
    analyze_direct,
    analyze_pushdown,
    compare_pushdown_to_direct,
)
from repro.analysis.common import BudgetExceeded
from repro.anf import normalize
from repro.corpus.programs import PROGRAMS
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
)
from repro.gen import random_closed_term, random_open_term
from repro.interp import run_direct
from repro.interp.errors import InterpError
from repro.lang.parser import parse
from repro.lang.syntax import free_variables

from tests.analysis.test_soundness import describes_direct

#: The acceptance matrix: the whole corpus crossed with four domains.
DOMAINS = [
    ConstPropDomain(),
    ParityDomain(),
    SignDomain(),
    IntervalDomain(bound=8),
]

OK = (Precision.EQUAL, Precision.LEFT_MORE_PRECISE)


def _verdict(term, domain, initial=None, max_visits=None):
    """pushdown-vs-direct on identical inputs."""
    direct = analyze_direct(
        term, domain, initial=initial, max_visits=max_visits
    )
    pushdown = analyze_pushdown(
        term, domain, initial=initial, max_visits=max_visits
    )
    return compare_pushdown_to_direct(pushdown, direct), pushdown, direct


# ----------------------------------------------------------------------
# Soundness
# ----------------------------------------------------------------------

SAMPLES = [
    "(add1 (sub1 5))",
    "((lambda (x) (* x x)) 12)",
    "(if0 (sub1 1) (+ 1 2) 99)",
    "(let (f (lambda (x) (lambda (y) (- x y)))) ((f 10) 4))",
    "(let (twice (lambda (f) (lambda (x) (f (f x))))) ((twice add1) 0))",
    "(let (p add1) (let (q sub1) (p (q 5))))",
    """(let (fact (lambda (self)
                    (lambda (n)
                      (if0 n 1 (* n ((self self) (- n 1)))))))
         ((fact fact) 5))""",
    # arm-local shadowing must not leak into the continuation
    "(let (x 10) (let (r (if0 y (let (x 1) x) x)) (+ r x)))",
]


def check_sound(term, domain):
    """The Section 4.3 criterion against a concrete run."""
    concrete = run_direct(term, fuel=500_000)
    result = analyze_pushdown(term, domain)
    assert describes_direct(domain, result.value, concrete.value)
    for loc, value in concrete.store.items():
        assert describes_direct(
            domain, result.value_of(loc.name), value
        ), f"pushdown store unsound at {loc.name}"


class TestSoundness:
    @pytest.mark.parametrize("source", SAMPLES[:-1])
    @pytest.mark.parametrize(
        "domain", DOMAINS, ids=[d.name for d in DOMAINS]
    )
    def test_samples(self, source, domain):
        check_sound(normalize(parse(source)), domain)

    def test_shadowing_arm_does_not_leak(self):
        # With y unknown, the arm-local (let (x 1) x) must not corrupt
        # the continuation's read of the outer x = 10.
        domain = ConstPropDomain()
        lattice = Lattice(domain)
        term = normalize(parse(SAMPLES[-1]))
        result = analyze_pushdown(
            term, domain, initial={"y": lattice.of_num(domain.top)}
        )
        # r is 1 ⊔ 10 = ⊤, but the final (+ r x) still sees x = 10, so
        # soundness holds for both concrete branches.
        assert result.value_of("x").num == 10


# ----------------------------------------------------------------------
# Never less precise than direct: corpus × domains
# ----------------------------------------------------------------------


class TestCorpusNeverLessPrecise:
    @pytest.mark.parametrize("name", sorted(PROGRAMS), ids=sorted(PROGRAMS))
    @pytest.mark.parametrize(
        "domain", DOMAINS, ids=[d.name for d in DOMAINS]
    )
    def test_corpus(self, name, domain):
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        budget = 200_000 if program.heavy else None
        try:
            verdict, _, _ = _verdict(
                program.term, domain, initial=initial, max_visits=budget
            )
        except BudgetExceeded:
            pytest.skip(f"{name} exceeded the work budget under {domain.name}")
        assert verdict in OK, f"{name} under {domain.name}: {verdict}"


#: The rows where call/return matching must *win* outright under
#: constant propagation (direct's false returns / loop cuts poison
#: them).  Measured, not aspirational: rows like ``higher-order`` and
#: ``church`` where the direct analyzer is already optimal can only
#: come out ``equal`` and are asserted in the corpus sweep above.
STRICT_ROWS = (
    "theorem-5.1",
    "shivers-p33",
    "factorial",
    "even-odd",
    "church-pairs",
    "mini-evaluator",
)


class TestStrictlyMorePrecise:
    @pytest.mark.parametrize("name", STRICT_ROWS)
    def test_strict_win(self, name):
        program = PROGRAMS[name]
        domain = ConstPropDomain()
        initial = program.initial_for(Lattice(domain))
        verdict, _, _ = _verdict(program.term, domain, initial=initial)
        assert verdict is Precision.LEFT_MORE_PRECISE, f"{name}: {verdict}"

    def test_theorem_51_false_returns_eliminated(self):
        """The paper's own witness: f is called with 1 then 2; the
        direct analyzer's single return point joins them to ⊤ at a2,
        the pushdown summaries keep the calls apart."""
        program = PROGRAMS["theorem-5.1"]
        domain = ConstPropDomain()
        initial = program.initial_for(Lattice(domain))
        direct = analyze_direct(program.term, domain, initial=initial)
        pushdown = analyze_pushdown(program.term, domain, initial=initial)
        assert direct.value_of("a1").num == 1
        assert direct.value_of("a2").num == domain.top
        assert pushdown.value_of("a1").num == 1
        assert pushdown.value_of("a2").num == 2

    def test_factorial_computed_without_loop_cut(self):
        """Summaries keyed by (closure, argument, entry store) resolve
        the concrete recursion exactly: 5! = 120-free — 720 for the
        corpus program's fact(6) — where direct's Section 4.4 cut
        answers ⊤."""
        program = PROGRAMS["factorial"]
        domain = ConstPropDomain()
        initial = program.initial_for(Lattice(domain))
        direct = analyze_direct(program.term, domain, initial=initial)
        pushdown = analyze_pushdown(program.term, domain, initial=initial)
        assert direct.value.num == domain.top
        assert direct.stats.loop_cuts >= 1
        assert pushdown.value.num == 720
        assert pushdown.stats.loop_cuts == 0


# ----------------------------------------------------------------------
# Random populations: ≥300 closed (sound + precise) and open (precise)
# ----------------------------------------------------------------------


class TestRandomDifferential:
    def test_closed_population(self):
        """320 seeded closed random terms, domains rotating: sound
        against the concrete run and never less precise than direct."""
        checked = 0
        for seed in range(320):
            term = normalize(random_closed_term(random.Random(seed), 4))
            domain = DOMAINS[seed % len(DOMAINS)]
            try:
                concrete = run_direct(term, fuel=200_000)
            except InterpError:
                continue
            verdict, pushdown, _ = _verdict(term, domain)
            assert verdict in OK, f"seed {seed}: {verdict}"
            assert describes_direct(domain, pushdown.value, concrete.value)
            for loc, value in concrete.store.items():
                assert describes_direct(
                    domain, pushdown.value_of(loc.name), value
                ), f"seed {seed}: unsound at {loc.name}"
            checked += 1
        assert checked >= 300, f"only {checked} terms survived generation"

    def test_open_population(self):
        """120 seeded open random terms (inputs assumed ⊤) — the
        population where branch joins and false returns actually
        bite."""
        domain = ConstPropDomain()
        lattice = Lattice(domain)
        for seed in range(120):
            term = normalize(
                random_open_term(random.Random(seed), 4, ("in0", "in1"))
            )
            initial = {
                name: lattice.of_num(domain.top)
                for name in free_variables(term)
            }
            verdict, _, _ = _verdict(term, domain, initial=initial)
            assert verdict in OK, f"seed {seed}: {verdict}"


# ----------------------------------------------------------------------
# Operational contracts
# ----------------------------------------------------------------------


class TestSummaryMachinery:
    def test_summary_reuse_across_matching_call_sites(self):
        """Two call sites with the same (closure, argument, entry
        store) share one summary — the second is a table hit."""
        domain = ConstPropDomain()
        lattice = Lattice(domain)
        term = normalize(
            parse(
                "(let (f (lambda (x) x))"
                " (let (r (if0 y (let (a (f 1)) a) (let (b (f 1)) b)))"
                "  r))"
            )
        )
        instance = PushdownAnalyzer(
            term, domain, initial={"y": lattice.of_num(domain.top)}
        )
        result = instance.run()
        assert result.value.num == 1
        assert instance.perf.eval_cache_hits == 1
        assert result.stats.returns_analyzed == 1  # one summary, reused

    def test_self_loop_counts_a_cut_and_returns_bottom(self):
        """A recursion that re-enters its own in-flight configuration
        consumes the ⊥-seeded approximation: one pushdown cut, and the
        (provably divergent) call contributes ⊥ — sound vacuously and
        more precise than direct's (⊤, CL⊤) cut answer."""
        term = normalize(
            parse(
                "(let (g (lambda (self) (lambda (x) ((self self) x))))"
                " ((g g) 0))"
            )
        )
        result = analyze_pushdown(term)
        assert result.stats.loop_cuts >= 1
        assert result.value == Lattice(ConstPropDomain()).bottom

    def test_count_up_recursion_terminates_via_widening(self):
        """f(x) = f(x+1) builds ever-new precise arguments; the
        per-closure activation budget widens them so entry
        configurations repeat and the analysis terminates."""
        term = normalize(
            parse(
                "(let (loopf (lambda (self)"
                "              (lambda (x) ((self self) (add1 x)))))"
                " ((loopf loopf) 0))"
            )
        )
        result = analyze_pushdown(term)
        assert result.stats.widenings >= 1
        assert result.value == Lattice(ConstPropDomain()).bottom

    def test_widen_depth_validated(self):
        with pytest.raises(ValueError):
            PushdownAnalyzer(normalize(parse("(add1 1)")), widen_depth=0)

    def test_budget_exceeded(self):
        program = PROGRAMS["even-odd"]
        with pytest.raises(BudgetExceeded):
            analyze_pushdown(
                program.term,
                ConstPropDomain(),
                initial=program.initial_for(Lattice(ConstPropDomain())),
                max_visits=5,
            )


class TestEnginePolicy:
    def test_plan_engine_raises_engine_unsupported(self):
        with pytest.raises(EngineUnsupported) as info:
            analyze_pushdown(normalize(parse("(add1 1)")), engine="plan")
        assert info.value.analyzer == "pushdown"
        assert info.value.engine == "plan"

    def test_unknown_engine_still_rejected_first(self):
        with pytest.raises(ValueError):
            analyze_pushdown(normalize(parse("(add1 1)")), engine="bogus")

    def test_engine_unsupported_maps_to_serve_code(self):
        from repro.serve.codes import classify_exception

        error = classify_exception(EngineUnsupported("pushdown", "plan"))
        assert error.code == "engine_unsupported"
        assert error.error_code.http_status == 400
        assert error.error_code.exit_code == 16
        assert not error.error_code.retryable
