"""Theorem 5.4: the semantic-CPS analysis is always at least as
precise as the direct analysis, and coincides with it exactly when the
analysis is distributive (Definition 5.3).

We check the ⊑ direction universally — on the corpus, on every number
domain, and property-based on random programs — and the equality on
the distributive (unit / pure-0CFA) instantiation, plus strictness on
the paper's non-distributive witnesses.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Precision
from repro.analysis import analyze_direct, analyze_semantic_cps
from repro.analysis.compare import compare_semantic_to_direct
from repro.anf import normalize
from repro.corpus import (
    PROGRAMS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
)
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.gen import random_closed_term

DOMAINS = [
    ConstPropDomain(),
    UnitDomain(),
    ParityDomain(),
    SignDomain(),
    IntervalDomain(bound=8),
]

AT_LEAST_AS_PRECISE = (Precision.EQUAL, Precision.LEFT_MORE_PRECISE)


def verdict(program, domain):
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    direct = analyze_direct(program.term, domain, initial=initial)
    semantic = analyze_semantic_cps(program.term, domain, initial=initial)
    return compare_semantic_to_direct(semantic, direct)


LIGHT_PROGRAMS = [n for n in sorted(PROGRAMS) if not PROGRAMS[n].heavy]


class TestInequalityDirection:
    @pytest.mark.parametrize("name", LIGHT_PROGRAMS)
    @pytest.mark.parametrize("domain", DOMAINS, ids=[d.name for d in DOMAINS])
    def test_semantic_never_less_precise_on_corpus(self, name, domain):
        if domain.name == "interval" and name == "factorial":
            pytest.skip("known Section 4.4 cut artifact; see test below")
        assert verdict(PROGRAMS[name], domain) in AT_LEAST_AS_PRECISE

    def test_loop_cut_artifact_on_interval_factorial(self):
        """Reproduction finding: the Section 4.4 termination device can
        perturb Theorem 5.4 for domains richer than the paper's.

        Both analyzers cut recursive derivations with (⊤, CL⊤), but at
        *different* (M, σ) pairs — their derivation structures differ —
        so the imprecision lands in different places.  With constant
        propagation (the paper's domain) the inequality held in every
        run we performed; with the bounded-interval domain the longer
        ascending chains push the cut points apart and the semantic
        analyzer can end up with spurious closures the direct analyzer
        filtered through arithmetic.  The theorem is stated for the
        analyzers' specifications; the loop-detection device is where
        the literal claim frays.  Documented in DESIGN.md.
        """
        program = PROGRAMS["factorial"]
        domain = IntervalDomain(bound=8)
        lattice = Lattice(domain)
        direct = analyze_direct(program.term, domain)
        semantic = analyze_semantic_cps(program.term, domain)
        # the artifact requires cuts in both derivations ...
        assert direct.stats.loop_cuts >= 1
        assert semantic.stats.loop_cuts >= 1
        # ... and manifests as spurious closures on the semantic side
        assert (
            compare_semantic_to_direct(semantic, direct)
            is Precision.RIGHT_MORE_PRECISE
        )
        assert semantic.value.clos - direct.value.clos

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_semantic_never_less_precise_on_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        domain = ConstPropDomain()
        direct = analyze_direct(term, domain)
        semantic = analyze_semantic_cps(term, domain)
        assert (
            compare_semantic_to_direct(semantic, direct)
            in AT_LEAST_AS_PRECISE
        )


class TestNonDistributiveGap:
    def test_conditional_witness_is_strict(self):
        assert (
            verdict(THEOREM_52_CONDITIONAL, ConstPropDomain())
            is Precision.LEFT_MORE_PRECISE
        )

    def test_two_closure_witness_is_strict(self):
        assert (
            verdict(THEOREM_52_TWO_CLOSURES, ConstPropDomain())
            is Precision.LEFT_MORE_PRECISE
        )

    def test_gap_also_appears_for_parity(self):
        # parity merges even/odd to TOP at the join, same mechanism
        from repro.corpus.programs import CorpusProgram, _anf

        program = CorpusProgram(
            name="parity-gap",
            description="",
            term=_anf(
                """(let (a (if0 x 1 3))
                     (let (b (if0 a 10 (* a a)))
                       b))"""
            ),
            initial=lambda lat: {"x": lat.of_num(lat.domain.top)},
        )
        # a is 1 or 3: odd either way here — use values with distinct
        # parity to create the merge loss: 1 and 2
        program2 = CorpusProgram(
            name="parity-gap-2",
            description="",
            term=_anf(
                """(let (a (if0 x 1 2))
                     (let (b (if0 a 10 (* a 2)))
                       b))"""
            ),
            initial=lambda lat: {"x": lat.of_num(lat.domain.top)},
        )
        assert verdict(program2, ParityDomain()) in (
            Precision.LEFT_MORE_PRECISE,
            Precision.EQUAL,
        )


class TestDistributiveEquality:
    @pytest.mark.parametrize("name", LIGHT_PROGRAMS)
    def test_unit_domain_gives_equality_on_corpus(self, name):
        assert verdict(PROGRAMS[name], UnitDomain()) is Precision.EQUAL

    def test_unit_domain_on_the_nondistributive_witnesses(self):
        # even the Theorem 5.2 witnesses show no gap once the numeric
        # content is erased: the gain is entirely numeric
        assert (
            verdict(THEOREM_52_CONDITIONAL, UnitDomain()) is Precision.EQUAL
        )
        assert (
            verdict(THEOREM_52_TWO_CLOSURES, UnitDomain()) is Precision.EQUAL
        )

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_unit_domain_equality_on_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        domain = UnitDomain()
        direct = analyze_direct(term, domain)
        semantic = analyze_semantic_cps(term, domain)
        assert (
            compare_semantic_to_direct(semantic, direct) is Precision.EQUAL
        )
