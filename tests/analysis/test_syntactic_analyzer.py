"""Unit tests for the syntactic-CPS abstract interpreter (Figure 6)."""

import pytest

from repro.analysis import (
    A_STOP,
    AbsCo,
    AbsCpsClo,
    NonComputableError,
    analyze_syntactic_cps,
)
from repro.analysis.delta import delta_store
from repro.anf import normalize
from repro.cps import TOP_KVAR, cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.lang.parser import parse

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def analyze(source: str, initial=None, **kwargs):
    term = cps_transform(normalize(parse(source)))
    if initial is not None:
        initial = dict(delta_store(AbsStore(LAT, initial)).items())
    return analyze_syntactic_cps(term, DOM, initial=initial, **kwargs)


class TestBasics:
    def test_constant_result(self):
        assert analyze("42").value.num == 42

    def test_arithmetic(self):
        result = analyze("(let (a (+ 1 2)) (let (b (* a a)) b))")
        assert result.constant_of("b") == 9

    def test_closure_call(self):
        result = analyze("(let (f (lambda (x) (add1 x))) (f 1))")
        assert result.value.num == 2

    def test_known_conditional(self):
        assert analyze("(let (r (if0 0 1 2)) r)").constant_of("r") == 1

    def test_top_kvar_bound_to_stop(self):
        result = analyze("5")
        assert result.konts_of(TOP_KVAR) == frozenset({A_STOP})

    def test_lambda_value_is_cps_closure(self):
        result = analyze("(let (f (lambda (x) x)) f)")
        (clo,) = result.closures_of("f")
        assert isinstance(clo, AbsCpsClo)
        assert clo.kparam == "k/x"


class TestContinuationCollection:
    def test_kvars_collect_continuations(self):
        # two call sites of f => two continuations flow to f's k-param
        result = analyze(
            "(let (f (lambda (x) x)) (let (u (f 1)) (let (v (f 2)) v)))"
        )
        konts = result.konts_of("k/x")
        assert len(konts) == 2
        assert all(isinstance(k, AbsCo) for k in konts)

    def test_false_returns_confuse_values(self):
        # ... and therefore u receives the join of both returns
        result = analyze(
            "(let (f (lambda (x) x)) (let (u (f 1)) (let (v (f 2)) v)))"
        )
        assert result.num_of("u") is TOP

    def test_join_continuation_bound_at_conditional(self):
        result = analyze(
            "(let (r (if0 x 1 2)) r)", initial={"x": LAT.of_num(TOP)}
        )
        assert result.konts_of("k/r")  # the join continuation was bound


class TestDuplication:
    def test_continuation_analyzed_per_branch(self):
        result = analyze(
            """(let (a (if0 x 0 1))
                 (let (b (if0 a (+ a 3) (+ a 2)))
                   b))""",
            initial={"x": LAT.of_num(TOP)},
        )
        assert result.constant_of("b") == 3


class TestTermination:
    def test_factorial_terminates(self):
        result = analyze(
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 6))"""
        )
        assert result.stats.loop_cuts >= 1

    def test_omega_terminates(self):
        result = analyze("((lambda (x) (x x)) (lambda (y) (y y)))")
        assert result.stats.loop_cuts >= 1

    def test_cut_value_includes_all_continuations(self):
        result = analyze("((lambda (x) (x x)) (lambda (y) (y y)))")
        assert result.value.num is TOP
        assert A_STOP in result.value.konts


class TestLoopConstruct:
    def test_reject_mode_raises(self):
        with pytest.raises(NonComputableError):
            analyze("(let (d (loop)) d)")

    def test_top_mode(self):
        result = analyze("(let (d (loop)) d)", loop_mode="top")
        assert result.num_of("d") is TOP

    def test_unroll_mode(self):
        result = analyze(
            "(let (d (loop)) (let (r (* d 0)) r))",
            loop_mode="unroll",
            unroll_bound=3,
        )
        assert result.constant_of("r") == 0


class TestValidation:
    def test_rejects_bad_terms(self):
        from repro.cps.ast import CNum, KApp
        from repro.lang.errors import SyntaxValidationError

        with pytest.raises(SyntaxValidationError):
            analyze_syntactic_cps(KApp("k/ghost", CNum(1)))

    def test_check_can_be_disabled(self):
        from repro.cps.ast import CNum, KApp

        # the analyzer treats an unbound kvar as bottom: dead return
        result = analyze_syntactic_cps(
            KApp("k/ghost", CNum(1)), DOM, check=False
        )
        assert result.lattice.is_bottom(result.value)
