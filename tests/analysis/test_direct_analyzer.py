"""Unit tests for the direct abstract collecting interpreter (Figure 4)."""

import pytest

from repro.analysis import A_DEC, A_INC, AbsClo, analyze_direct
from repro.anf import normalize
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
)
from repro.domains.constprop import BOT, TOP
from repro.lang.ast import Num, Var
from repro.lang.errors import SyntaxValidationError
from repro.lang.parser import parse

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def analyze(source: str, initial=None, domain=DOM):
    return analyze_direct(normalize(parse(source)), domain, initial=initial)


class TestStraightLine:
    def test_constant_result(self):
        assert analyze("42").value.num == 42

    def test_arithmetic_folds(self):
        result = analyze("(let (a (+ 1 2)) (let (b (* a a)) b))")
        assert result.constant_of("a") == 3
        assert result.constant_of("b") == 9

    def test_add1_chain(self):
        assert analyze("(add1 (add1 (add1 0)))").value.num == 3

    def test_prim_values_become_tags(self):
        result = analyze("(let (p add1) (p 1))")
        assert result.closures_of("p") == frozenset({A_INC})
        assert result.value.num == 2

    def test_lambda_becomes_abstract_closure(self):
        result = analyze("(let (f (lambda (x) x)) f)")
        (clo,) = result.closures_of("f")
        assert isinstance(clo, AbsClo)
        assert clo.param == "x"


class TestConditionals:
    def test_known_zero_takes_then_only(self):
        result = analyze("(let (r (if0 0 1 2)) r)")
        assert result.constant_of("r") == 1

    def test_known_nonzero_takes_else_only(self):
        result = analyze("(let (r (if0 7 1 2)) r)")
        assert result.constant_of("r") == 2

    def test_closure_test_takes_else(self):
        result = analyze("(let (r (if0 (lambda (x) x) 1 2)) r)")
        assert result.constant_of("r") == 2

    def test_unknown_test_merges_branches(self):
        result = analyze(
            "(let (r (if0 x 1 2)) r)", initial={"x": LAT.of_num(TOP)}
        )
        assert result.num_of("r") is TOP

    def test_unknown_test_same_branches_stays_constant(self):
        result = analyze(
            "(let (r (if0 x 5 5)) r)", initial={"x": LAT.of_num(TOP)}
        )
        assert result.constant_of("r") == 5

    def test_dead_conditional_on_bottom_test(self):
        # x is never bound: the conditional is unreachable
        result = analyze("(let (r (if0 x 1 2)) r)")
        assert result.lattice.is_bottom(result.value_of("r"))

    def test_branch_stores_merge_before_continuation(self):
        # the defining non-distributive behaviour (Theorem 5.2 shape)
        result = analyze(
            """(let (a (if0 x 0 1))
                 (let (b (if0 a (+ a 3) (+ a 2)))
                   b))""",
            initial={"x": LAT.of_num(TOP)},
        )
        assert result.num_of("a") is TOP
        assert result.num_of("b") is TOP


class TestApplications:
    def test_single_closure_call(self):
        result = analyze("(let (f (lambda (x) (add1 x))) (f 1))")
        assert result.value.num == 2
        assert result.constant_of("x") == 1

    def test_two_call_sites_join_at_parameter(self):
        # 0CFA: one abstract location per variable.  The collecting
        # interpretation is a single pass, so the first call still sees
        # x = 1; by the second call the location holds the join.
        result = analyze(
            "(let (f (lambda (x) x)) (let (u (f 1)) (let (v (f 2)) v)))"
        )
        assert result.num_of("x") is TOP
        assert result.constant_of("u") == 1
        assert result.num_of("v") is TOP

    def test_multi_closure_call_joins_results(self):
        result = analyze_direct(
            parse("(let (r (f 3)) r)"),
            DOM,
            initial={
                "f": LAT.of_clos(AbsClo("p", Num(10)), AbsClo("q", Num(20)))
            },
        )
        assert result.num_of("r") is TOP

    def test_calling_bottom_is_dead(self):
        result = analyze("(let (r (g 1)) r)")  # g unbound
        assert result.lattice.is_bottom(result.value_of("r"))

    def test_number_in_function_position_contributes_nothing(self):
        result = analyze("(let (r (1 2)) r)")
        assert result.lattice.is_bottom(result.value_of("r"))

    def test_higher_order_flow(self):
        result = analyze(
            """(let (apply (lambda (g) (g 7)))
                 (let (inc add1)
                   (apply inc)))"""
        )
        assert result.value.num == 8
        assert A_INC in result.closures_of("g")


class TestRecursionTermination:
    def test_factorial_terminates_with_top(self):
        result = analyze(
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 6))"""
        )
        assert result.value.num is TOP
        assert result.stats.loop_cuts >= 1

    def test_omega_terminates(self):
        result = analyze("((lambda (x) (x x)) (lambda (y) (y y)))")
        assert result.stats.loop_cuts >= 1

    def test_loop_cut_returns_all_closures(self):
        # on a cut the analyzer returns (TOP, CL_top)
        result = analyze("((lambda (x) (x x)) (lambda (y) (y y)))")
        assert result.value.num is TOP or result.value.clos

    def test_mutual_recursion_terminates(self):
        result = analyze(
            """(let (mk (lambda (self)
                          (lambda (n)
                            (if0 n 0 ((self self) (- n 1))))))
                 ((mk mk) 5))"""
        )
        assert result.value.num in (0, TOP)


class TestLoopConstruct:
    def test_loop_value_is_iota(self):
        result = analyze("(let (d (loop)) d)")
        assert result.num_of("d") is TOP  # constprop iota

    def test_loop_with_interval_domain(self):
        from repro.domains.interval import Interval

        result = analyze(
            "(let (d (loop)) d)", domain=IntervalDomain(bound=8)
        )
        assert result.num_of("d") == Interval(0, None)

    def test_direct_analysis_of_loop_terminates(self):
        result = analyze("(let (d (loop)) (let (r (if0 d 1 2)) r))")
        assert result.num_of("r") is TOP


class TestOtherDomains:
    def test_parity(self):
        result = analyze(
            "(let (a (+ 2 4)) (let (b (add1 a)) b))", domain=ParityDomain()
        )
        from repro.domains.parity import EVEN, ODD

        assert result.num_of("a") is EVEN
        assert result.num_of("b") is ODD

    def test_sign(self):
        result = analyze(
            "(let (a (* 3 4)) (let (b (- 0 a)) b))", domain=SignDomain()
        )
        from repro.domains.sign import NEG, POS

        assert result.num_of("a") is POS
        assert result.num_of("b") is NEG

    def test_parity_refines_branches(self):
        # odd tests cannot be zero
        result = analyze(
            "(let (a (add1 (* 2 x))) (let (r (if0 a 111 222)) r))",
            initial={"x": Lattice(ParityDomain()).of_num(ParityDomain().top)},
            domain=ParityDomain(),
        )
        from repro.domains.parity import ODD

        assert result.num_of("a") is ODD
        # only the else branch is feasible: r = 222 exactly
        assert result.num_of("r") == ParityDomain().const(222)


class TestValidation:
    def test_rejects_non_anf(self):
        with pytest.raises(SyntaxValidationError):
            analyze_direct(parse("(f (g 1))"))

    def test_stats_are_populated(self):
        result = analyze("(let (a 1) (let (b 2) (+ a b)))")
        assert result.stats.visits >= 3
        assert result.stats.max_depth >= 1
