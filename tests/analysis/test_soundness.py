"""Soundness of the three analyzers against concrete execution
(the Section 4.3 correctness criterion).

If a concrete run binds variable x to value v along any execution
path, the abstract store entry for x must describe v; and the final
abstract answer value must describe the final concrete value.
Checked on the corpus and property-based on random programs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    A_DEC,
    A_INC,
    A_DECK,
    A_INCK,
    AbsClo,
    AbsCpsClo,
    analyze_direct,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.anf import normalize
from repro.cps import cps_transform
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.gen import random_closed_term
from repro.interp import run_direct, run_syntactic_cps
from repro.interp.values import Closure, CoKont, CpsClosure, PrimVal, StopKont
from repro.lang.parser import parse

DOMAINS = [
    ConstPropDomain(),
    UnitDomain(),
    ParityDomain(),
    SignDomain(),
    IntervalDomain(bound=8),
]


def describes_direct(domain, abstract, concrete) -> bool:
    """Does the direct abstract value describe the concrete one?"""
    if isinstance(concrete, bool):
        raise TypeError("booleans are not values")
    if isinstance(concrete, int):
        return domain.abstracts(abstract.num, concrete)
    if isinstance(concrete, PrimVal):
        tag = A_INC if concrete.tag == "inc" else A_DEC
        return tag in abstract.clos
    if isinstance(concrete, Closure):
        return AbsClo(concrete.param, concrete.body) in abstract.clos
    raise TypeError(f"unexpected concrete value {concrete!r}")


def describes_cps(domain, abstract, concrete) -> bool:
    """Does the syntactic-CPS abstract value describe the concrete one?"""
    if isinstance(concrete, int):
        return domain.abstracts(abstract.num, concrete)
    if isinstance(concrete, PrimVal):
        tag = A_INCK if concrete.tag == "inck" else A_DECK
        return tag in abstract.clos
    if isinstance(concrete, CpsClosure):
        return (
            AbsCpsClo(concrete.param, concrete.kparam, concrete.body)
            in abstract.clos
        )
    if isinstance(concrete, (CoKont, StopKont)):
        return True  # continuations are checked via konts; skip here
    raise TypeError(f"unexpected concrete value {concrete!r}")


def check_program(term, domain):
    """Run concretely and under all three analyzers; assert soundness
    of the final value and of every variable binding."""
    concrete = run_direct(term, fuel=500_000)
    direct = analyze_direct(term, domain)
    semantic = analyze_semantic_cps(term, domain)
    cps_term = cps_transform(term)
    concrete_cps = run_syntactic_cps(cps_term, fuel=2_000_000)
    syntactic = analyze_syntactic_cps(cps_term, domain)

    # final values
    assert describes_direct(domain, direct.value, concrete.value)
    assert describes_direct(domain, semantic.value, concrete.value)
    assert describes_cps(domain, syntactic.value, concrete_cps.value)

    # every concrete binding is described by the abstract store: the
    # concrete store's locations record the variable they were created
    # for (Section 4.1's new⁻¹)
    for loc, value in concrete.store.items():
        assert describes_direct(
            domain, direct.value_of(loc.name), value
        ), f"direct store unsound at {loc.name}"
        assert describes_direct(
            domain, semantic.value_of(loc.name), value
        ), f"semantic store unsound at {loc.name}"
    for loc, value in concrete_cps.store.items():
        if isinstance(value, (CoKont, StopKont)):
            continue
        assert describes_cps(
            domain, syntactic.value_of(loc.name), value
        ), f"syntactic store unsound at {loc.name}"


SAMPLES = [
    "(add1 (sub1 5))",
    "((lambda (x) (* x x)) 12)",
    "(if0 (sub1 1) (+ 1 2) 99)",
    "(let (f (lambda (x) (lambda (y) (- x y)))) ((f 10) 4))",
    "(let (twice (lambda (f) (lambda (x) (f (f x))))) ((twice add1) 0))",
    "(let (p add1) (let (q sub1) (p (q 5))))",
    """(let (fact (lambda (self)
                    (lambda (n)
                      (if0 n 1 (* n ((self self) (- n 1)))))))
         ((fact fact) 5))""",
]


class TestSoundnessOnSamples:
    @pytest.mark.parametrize("source", SAMPLES)
    @pytest.mark.parametrize("domain", DOMAINS, ids=[d.name for d in DOMAINS])
    def test_sound(self, source, domain):
        check_program(normalize(parse(source)), domain)


class TestSoundnessOnRandomPrograms:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_constprop(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        check_program(term, ConstPropDomain())

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_parity(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        check_program(term, ParityDomain())

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_interval(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        check_program(term, IntervalDomain(bound=16))
