"""Unit tests for the semantic-CPS abstract interpreter (Figure 5)."""

import pytest

from repro.analysis import analyze_semantic_cps, AbsClo, NonComputableError
from repro.analysis.common import AFrame
from repro.analysis.semantic_cps import SemanticCpsAnalyzer
from repro.anf import normalize
from repro.domains import ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.lang.parser import parse

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def analyze(source: str, initial=None, **kwargs):
    return analyze_semantic_cps(
        normalize(parse(source)), DOM, initial=initial, **kwargs
    )


class TestBasics:
    def test_constant_result(self):
        assert analyze("42").value.num == 42

    def test_arithmetic(self):
        result = analyze("(let (a (+ 1 2)) (let (b (* a a)) b))")
        assert result.constant_of("b") == 9

    def test_closure_call(self):
        result = analyze("(let (f (lambda (x) (add1 x))) (f 1))")
        assert result.value.num == 2

    def test_known_conditional(self):
        assert analyze("(let (r (if0 0 1 2)) r)").constant_of("r") == 1


class TestDuplication:
    def test_continuation_analyzed_per_branch(self):
        # the continuation (let (b ...) b) sees a=0 and a=1 separately
        result = analyze(
            """(let (a (if0 x 0 1))
                 (let (b (if0 a (+ a 3) (+ a 2)))
                   b))""",
            initial={"x": LAT.of_num(TOP)},
        )
        assert result.constant_of("b") == 3
        # the store still joins a's bindings across paths
        assert result.num_of("a") is TOP

    def test_continuation_analyzed_per_callee(self):
        from repro.lang.ast import Num

        result = analyze_semantic_cps(
            normalize(
                parse("(let (a (f 3)) (let (b (if0 a 5 (+ a 4))) b))")
            ),
            DOM,
            initial={
                "f": LAT.of_clos(AbsClo("p", Num(0)), AbsClo("q", Num(1)))
            },
        )
        assert result.constant_of("b") == 5

    def test_returns_counter_tracks_duplication(self):
        result = analyze(
            "(let (a (if0 x 0 1)) (let (b (add1 a)) b))",
            initial={"x": LAT.of_num(TOP)},
        )
        assert result.stats.returns_analyzed >= 2


class TestTermination:
    def test_factorial_terminates(self):
        result = analyze(
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 6))"""
        )
        assert result.stats.loop_cuts >= 1
        assert result.value.num is TOP

    def test_omega_terminates(self):
        result = analyze("((lambda (x) (x x)) (lambda (y) (y y)))")
        assert result.stats.loop_cuts >= 1

    def test_loop_cut_returns_through_continuation(self):
        # even after a cut, the continuation of the recursive call is
        # analyzed with the top value: b gets a binding
        result = analyze(
            """(let (f (lambda (self) (self self)))
                 (let (b (f f))
                   (add1 b)))"""
        )
        assert result.num_of("b") is TOP


class TestLoopConstruct:
    def test_reject_mode_raises(self):
        with pytest.raises(NonComputableError):
            analyze("(let (d (loop)) d)")

    def test_top_mode_matches_direct_iota(self):
        result = analyze("(let (d (loop)) d)", loop_mode="top")
        assert result.num_of("d") is TOP

    def test_unroll_mode_joins_prefix(self):
        result = analyze(
            "(let (d (loop)) (let (r (if0 d 1 2)) r))",
            loop_mode="unroll",
            unroll_bound=4,
        )
        assert result.num_of("r") is TOP  # both branches reached

    def test_unroll_duplication_beats_top_mode(self):
        # every unrolled value hits the same branch arm with a
        # *constant*, so r stays precise per path; top mode cannot
        source = "(let (d (loop)) (let (r (* d 0)) r))"
        unrolled = analyze(source, loop_mode="unroll", unroll_bound=3)
        assert unrolled.constant_of("r") == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            analyze("(let (d (loop)) d)", loop_mode="bogus")


class TestInitialContinuation:
    def test_run_under_frames(self):
        analyzer = SemanticCpsAnalyzer(
            normalize(parse("41")), DOM
        )
        frame_body = normalize(parse("(add1 h)"), ensure_unique=False)
        result = analyzer.run(kont=(AFrame("h", frame_body),))
        assert result.value.num == 42
