"""Differential tests: the compiled-plan engines replay the tree
analyzers bit for bit.

`repro.analysis.engine` is only correct if a plan run is
indistinguishable from the reference tree-walking run — same answer
value, same final abstract store, same visit count, same loop cuts,
same widenings (the full `AnalysisStats` dict).  These tests compare
the two engines over:

- the full corpus, for all four analyzers, over every number domain;
- the Section 6.2 parametric families, including the
  ``loop-feeding-conditional`` computability workload and an
  ``unroll`` loop-mode case;
- 300 seeded random open terms (⊤ initial assumptions);
- the `repro.perf` caches stacked on top (``cache=True`` on both
  engines must still agree — the caches change the visit counts, but
  identically on both sides).

Work-budget agreement is part of the contract: when the tree analyzer
raises `BudgetExceeded`, the plan analyzer must raise it too.
"""

import random

import pytest

from repro.analysis.common import BudgetExceeded
from repro.analysis.delta import delta_store
from repro.analysis.direct import analyze_direct
from repro.analysis.polyvariant import analyze_polyvariant
from repro.analysis.semantic_cps import analyze_semantic_cps
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.anf import normalize
from repro.corpus.programs import (
    PROGRAMS,
    call_site_chain,
    conditional_chain,
    loop_feeding_conditional,
    top_conditional_chain,
)
from repro.cps import cps_transform
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.domains.store import AbsStore
from repro.gen.random_terms import random_open_term
from repro.lang.syntax import free_variables

BUDGET = 100_000

DOMAINS = {
    "constprop": ConstPropDomain,
    "unit": UnitDomain,
    "parity": ParityDomain,
    "sign": SignDomain,
    "interval": IntervalDomain,
}


def _fingerprint(run):
    """Everything observable about one analysis run, or the budget
    outcome — both engines must produce the same tuple."""
    try:
        result = run()
    except BudgetExceeded:
        return ("budget-exceeded",)
    return (
        "ok",
        result.value,
        dict(result.store.items()),
        result.stats.as_dict(),
    )


def _poly_fingerprint(run):
    try:
        result = run()
    except BudgetExceeded:
        return ("budget-exceeded",)
    return (
        "ok",
        result.value,
        dict(result._store.items()),
        result.analyzer.stats.as_dict(),
    )


def _assert_direct_agrees(term, domain, initial, cache=None):
    fingerprints = [
        _fingerprint(
            lambda e=engine: analyze_direct(
                term,
                domain,
                initial=initial,
                max_visits=BUDGET,
                cache=cache,
                engine=e,
            )
        )
        for engine in ("tree", "plan")
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_semantic_agrees(
    term, domain, initial, loop_mode="top", unroll_bound=32, cache=None
):
    fingerprints = [
        _fingerprint(
            lambda e=engine: analyze_semantic_cps(
                term,
                domain,
                initial=initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=BUDGET,
                cache=cache,
                engine=e,
            )
        )
        for engine in ("tree", "plan")
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_syntactic_agrees(
    cterm, domain, cps_initial, loop_mode="top", unroll_bound=32, cache=None
):
    fingerprints = [
        _fingerprint(
            lambda e=engine: analyze_syntactic_cps(
                cterm,
                domain,
                initial=cps_initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=BUDGET,
                cache=cache,
                engine=e,
            )
        )
        for engine in ("tree", "plan")
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_polyvariant_agrees(term, domain, initial, k, cache=None):
    fingerprints = [
        _poly_fingerprint(
            lambda e=engine: analyze_polyvariant(
                term,
                domain,
                k=k,
                initial=initial,
                max_visits=BUDGET,
                cache=cache,
                engine=e,
            )
        )
        for engine in ("tree", "plan")
    ]
    assert fingerprints[0] == fingerprints[1]


def _cps_side(term, lattice, initial):
    return cps_transform(term), dict(
        delta_store(AbsStore(lattice, initial)).items()
    )


@pytest.mark.parametrize("domain_name", sorted(DOMAINS))
@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestCorpusAllDomains:
    """Full corpus x all four analyzers x every number domain."""

    def test_direct(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_direct_agrees(program.term, domain, initial)

    def test_semantic_cps(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_semantic_agrees(program.term, domain, initial)

    def test_syntactic_cps(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        lattice = Lattice(domain)
        initial = program.initial_for(lattice)
        cterm, cps_initial = _cps_side(program.term, lattice, initial)
        _assert_syntactic_agrees(cterm, domain, cps_initial)

    def test_polyvariant(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_polyvariant_agrees(program.term, domain, initial, k=1)


@pytest.mark.parametrize("k", (0, 1, 2))
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_polyvariant_context_depths(name, k):
    domain = ConstPropDomain()
    program = PROGRAMS[name]
    initial = program.initial_for(Lattice(domain))
    _assert_polyvariant_agrees(program.term, domain, initial, k=k)


@pytest.mark.parametrize(
    "program",
    [
        conditional_chain(8),
        call_site_chain(6),
        top_conditional_chain(10),
        loop_feeding_conditional(3),
    ],
    ids=lambda p: p.name,
)
def test_families(program):
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_direct_agrees(program.term, domain, initial)
    _assert_semantic_agrees(program.term, domain, initial)
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(cterm, domain, cps_initial)


def test_loop_unroll_mode():
    """Section 4.4/6.2: the `loop` handling must agree in `unroll`
    mode too (the bound changes the answer, identically on both
    engines)."""
    program = loop_feeding_conditional(3)
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_semantic_agrees(
        program.term, domain, initial, loop_mode="unroll", unroll_bound=8
    )
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(
        cterm, domain, cps_initial, loop_mode="unroll", unroll_bound=8
    )


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_corpus_with_caches_stacked(name):
    """`repro.perf` caches on top of the plan engine must not change
    the (already cache-perturbed) statistics relative to the tree
    engine with the same caches."""
    domain = ConstPropDomain()
    program = PROGRAMS[name]
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_direct_agrees(program.term, domain, initial, cache=True)
    _assert_semantic_agrees(program.term, domain, initial, cache=True)
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(cterm, domain, cps_initial, cache=True)
    _assert_polyvariant_agrees(
        program.term, domain, initial, k=1, cache=True
    )


@pytest.mark.parametrize("chunk", range(10))
def test_random_open_terms(chunk):
    """300 seeded random open programs (30 per chunk), all three
    monovariant analyzers, ⊤ assumptions for the free inputs."""
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    for seed in range(chunk * 30, (chunk + 1) * 30):
        term = normalize(random_open_term(random.Random(seed), 4))
        initial = {
            name: lattice.of_num(domain.top)
            for name in free_variables(term)
        }
        cache = True if seed % 5 == 0 else None
        _assert_direct_agrees(term, domain, initial, cache=cache)
        _assert_semantic_agrees(term, domain, initial, cache=cache)
        cterm, cps_initial = _cps_side(term, lattice, initial)
        _assert_syntactic_agrees(cterm, domain, cps_initial, cache=cache)
