"""Theorem 5.2: the syntactic-CPS analysis of F_k[M] can be strictly
more precise than the direct analysis of M (*duplication*).

Two paper witnesses:

1. a conditional join — the direct analysis merges a1 ∈ {0,1} to ⊤
   before the second conditional, the CPS analysis re-analyzes the
   continuation per branch and proves a2 = 3;
2. two closures at one call site — the direct analysis joins the two
   results at a1, the CPS analysis analyzes the continuation once per
   closure and proves a2 = 5.
"""

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import THEOREM_52_CONDITIONAL, THEOREM_52_TWO_CLOSURES
from repro.domains.constprop import TOP


class TestConditionalWitness:
    def test_direct_loses_a2(self):
        report = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct.num_of("a1") is TOP
        assert report.direct.num_of("a2") is TOP

    def test_cps_proves_a2(self):
        report = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS)
        assert report.syntactic.constant_of("a2") == 3

    def test_verdict_cps_strictly_more_precise(self):
        report = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct_vs_syntactic is Precision.RIGHT_MORE_PRECISE

    def test_semantic_cps_also_proves_a2(self):
        # the gain is duplication, not reification: the semantic-CPS
        # analyzer achieves it too
        report = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic.constant_of("a2") == 3


class TestTwoClosuresWitness:
    def test_direct_loses_everything_after_the_join(self):
        report = run_comparison(THEOREM_52_TWO_CLOSURES, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct.num_of("a1") is TOP
        assert report.direct.num_of("a2") is TOP

    def test_cps_proves_a2(self):
        report = run_comparison(THEOREM_52_TWO_CLOSURES, analyzers=THREE_WAY_ANALYZERS)
        assert report.syntactic.constant_of("a2") == 5

    def test_verdict(self):
        report = run_comparison(THEOREM_52_TWO_CLOSURES, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct_vs_syntactic is Precision.RIGHT_MORE_PRECISE


class TestIncomparability:
    """Theorems 5.1 + 5.2 together: the translation to CPS may increase
    or decrease static information — the analyses are incomparable."""

    def test_both_directions_occur(self):
        from repro.corpus import THEOREM_51_WITNESS

        gain = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS).direct_vs_syntactic
        loss = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS).direct_vs_syntactic
        assert gain is Precision.RIGHT_MORE_PRECISE
        assert loss is Precision.LEFT_MORE_PRECISE

    def test_single_program_can_be_incomparable(self):
        # combine both mechanisms in one program: a false-return loss
        # on u and a duplication gain on b
        source = """
        (let (id (lambda (x) x))
          (let (u (id 1))
            (let (w (id 2))
              (let (a (if0 y 0 1))
                (let (b (if0 a (+ a 3) (+ a 2)))
                  b)))))
        """
        from repro.domains import ConstPropDomain, Lattice

        lat = Lattice(ConstPropDomain())
        report = run_comparison(source, initial={"y": lat.of_num(TOP)}, analyzers=THREE_WAY_ANALYZERS)
        # direct wins on u, CPS wins on b
        assert report.direct.constant_of("u") == 1
        assert report.syntactic.num_of("u") is TOP
        assert report.direct.num_of("b") is TOP
        assert report.syntactic.constant_of("b") == 3
        assert report.direct_vs_syntactic is Precision.INCOMPARABLE
