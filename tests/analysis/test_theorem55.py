"""Theorem 5.5: the semantic-CPS analysis of M is always at least as
precise as the syntactic-CPS analysis of F_k[M]:

    (M, nil, σ) Ce A1  iff  (F_k[M], δe(σ)[k := (⊥,∅,{stop})]) Ms A2
    where δe(A1) ⊑ A2.

Reproduction scope (see DESIGN.md): the theorem concerns the analyzer
*specifications*; the Section 4.4 loop-detection device is asymmetric
(the semantic cut feeds (⊤, CL⊤) through the pending frames, the
syntactic cut returns its top value directly), so on recursive
programs the *store-level* inequality can fray while the answer-value
inequality held in every run we performed.  We therefore assert:

- the answer-value inequality on the whole corpus x every domain;
- the full (value + store) inequality on cut-free derivations and on
  random (non-recursive, hence cut-free) programs;
- the strict gap and its false-return mechanism on the Theorem 5.1
  witness;
- a documented artifact test for the store-level deviation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_semantic_cps, analyze_syntactic_cps
from repro.analysis.compare import (
    answer_leq,
    compare_semantic_to_syntactic,
    source_variables,
)
from repro.analysis.delta import delta_answer, delta_store, delta_value
from repro.anf import normalize
from repro.corpus import PROGRAMS, THEOREM_51_WITNESS
from repro.cps import cps_transform
from repro.domains import (
    AbsStore,
    ConstPropDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.gen import random_closed_term

DOMAINS = [ConstPropDomain(), UnitDomain(), ParityDomain(), SignDomain()]

AT_LEAST_AS_PRECISE = (Precision.EQUAL, Precision.LEFT_MORE_PRECISE)

#: Programs whose syntactic-CPS analysis is tractable (see
#: CorpusProgram.heavy; `ackermann` hits the Section 6.2 blowup).
LIGHT_PROGRAMS = [n for n in sorted(PROGRAMS) if not PROGRAMS[n].heavy]


def run_pair(program, domain):
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    semantic = analyze_semantic_cps(program.term, domain, initial=initial)
    cps_initial = dict(delta_store(AbsStore(lattice, initial)).items())
    syntactic = analyze_syntactic_cps(
        cps_transform(program.term), domain, initial=cps_initial
    )
    return lattice, semantic, syntactic


class TestValueInequality:
    @pytest.mark.parametrize("name", LIGHT_PROGRAMS)
    @pytest.mark.parametrize("domain", DOMAINS, ids=[d.name for d in DOMAINS])
    def test_answer_value_never_less_precise(self, name, domain):
        lattice, semantic, syntactic = run_pair(PROGRAMS[name], domain)
        assert lattice.leq(delta_value(semantic.value), syntactic.value)


class TestFullInequalityOnCutFreeRuns:
    @pytest.mark.parametrize("name", LIGHT_PROGRAMS)
    def test_corpus_cut_free_runs(self, name):
        lattice, semantic, syntactic = run_pair(
            PROGRAMS[name], ConstPropDomain()
        )
        if semantic.stats.loop_cuts or syntactic.stats.loop_cuts:
            pytest.skip("cuts fired; covered by the value-level test")
        assert (
            compare_semantic_to_syntactic(semantic, syntactic)
            in AT_LEAST_AS_PRECISE
        )

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        domain = ConstPropDomain()
        semantic = analyze_semantic_cps(term, domain)
        syntactic = analyze_syntactic_cps(cps_transform(term), domain)
        assert (
            compare_semantic_to_syntactic(semantic, syntactic)
            in AT_LEAST_AS_PRECISE
        )


class TestStrictGap:
    def test_false_returns_make_the_gap_strict(self):
        # on the Theorem 5.1 witness the semantic analyzer keeps the
        # single control stack and proves a1 = 1; the syntactic one
        # merges the continuations and cannot
        report = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic.constant_of("a1") == 1
        assert report.semantic_vs_syntactic is Precision.LEFT_MORE_PRECISE

    def test_duplication_gain_is_shared(self):
        # on the Theorem 5.2 witnesses both CPS-style analyses prove
        # the constant: the syntactic analyzer is not behind
        from repro.corpus import THEOREM_52_CONDITIONAL

        report = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic.constant_of("a2") == 3
        assert report.syntactic.constant_of("a2") == 3
        assert report.semantic_vs_syntactic is Precision.EQUAL


class TestCutArtifact:
    def test_store_level_deviation_on_recursive_programs(self):
        """Reproduction finding (mirror of the Theorem 5.4 artifact):
        on recursive programs the semantic cut binds (⊤, CL⊤) into
        store entries through the pending frames, while the syntactic
        cut only taints the final answer value — so the *store-level*
        direction of Theorem 5.5 deviates even though the value-level
        direction holds.  Documented in DESIGN.md."""
        lattice, semantic, syntactic = run_pair(
            PROGRAMS["factorial"], ConstPropDomain()
        )
        assert semantic.stats.loop_cuts >= 1
        # value level holds ...
        assert lattice.leq(delta_value(semantic.value), syntactic.value)
        # ... but the store level does not
        transported = delta_answer(semantic.answer)
        names = source_variables(transported) | source_variables(
            syntactic.answer
        )
        assert not answer_leq(
            transported, syntactic.answer, lattice, names
        )
