"""Theorem 5.1: the direct analysis of M can be strictly more precise
than the syntactic-CPS analysis of F_k[M] (*false returns*).

The paper's proof witness: M = (let (a1 (f 1)) (let (a2 (f 2)) a2))
with f bound to the identity closure.  The direct analysis proves
a1 = 1; the CPS analysis merges the two continuations that flow to the
identity's continuation parameter and answers ⊤ for both a1 and a2.
"""

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import AbsCo, analyze_direct, analyze_syntactic_cps
from repro.analysis.compare import compare_direct_to_cps
from repro.analysis.delta import delta_store
from repro.corpus import SHIVERS_EXAMPLE, THEOREM_51_WITNESS
from repro.cps import cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice
from repro.domains.constprop import TOP

DOM = ConstPropDomain()
LAT = Lattice(DOM)


class TestPaperWitness:
    def run_both(self):
        program = THEOREM_51_WITNESS
        initial = program.initial_for(LAT)
        direct = analyze_direct(program.term, DOM, initial=initial)
        cps_initial = dict(delta_store(AbsStore(LAT, initial)).items())
        syntactic = analyze_syntactic_cps(
            cps_transform(program.term), DOM, initial=cps_initial
        )
        return direct, syntactic

    def test_direct_proves_a1_constant(self):
        direct, _ = self.run_both()
        assert direct.constant_of("a1") == 1

    def test_direct_a2_is_top(self):
        # the second call sees x already joined to TOP
        direct, _ = self.run_both()
        assert direct.num_of("a2") is TOP

    def test_cps_loses_a1(self):
        _, syntactic = self.run_both()
        assert syntactic.num_of("a1") is TOP

    def test_cps_collects_both_continuations_at_kx(self):
        # the false-return mechanism: both call-site continuations
        # flow to the identity's continuation parameter k/x
        _, syntactic = self.run_both()
        konts = syntactic.konts_of("k/x")
        assert len(konts) == 2
        assert all(isinstance(k, AbsCo) for k in konts)

    def test_verdict_direct_strictly_more_precise(self):
        direct, syntactic = self.run_both()
        assert (
            compare_direct_to_cps(direct, syntactic)
            is Precision.LEFT_MORE_PRECISE
        )

    def test_three_way_report_agrees(self):
        report = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct_vs_syntactic is Precision.LEFT_MORE_PRECISE


class TestShiversExample:
    """Shivers' 0CFA example ([16] p.33, Section 6.1): the identity
    procedure is defined inside the program; same confusion."""

    def test_direct_proves_first_call_constant(self):
        report = run_comparison(SHIVERS_EXAMPLE, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct.constant_of("a1") == 1

    def test_cps_confuses_returns(self):
        report = run_comparison(SHIVERS_EXAMPLE, analyzers=THREE_WAY_ANALYZERS)
        assert report.syntactic.num_of("a1") is TOP

    def test_verdict(self):
        report = run_comparison(SHIVERS_EXAMPLE, analyzers=THREE_WAY_ANALYZERS)
        assert report.direct_vs_syntactic is Precision.LEFT_MORE_PRECISE


class TestMechanism:
    def test_single_call_site_has_no_false_return(self):
        # with only one call site there is one continuation: no loss
        report = run_comparison("(let (f (lambda (x) x)) (let (u (f 1)) u))", analyzers=THREE_WAY_ANALYZERS)
        assert report.syntactic.constant_of("u") == 1
        assert report.direct_vs_syntactic is Precision.EQUAL

    def test_distinct_callees_do_not_confuse(self):
        # two different identities: each k-param collects one
        # continuation, so precision is preserved
        report = run_comparison(
            """(let (f (lambda (x) x))
                 (let (g (lambda (y) y))
                   (let (u (f 1)) (let (v (g 2)) v))))""", analyzers=THREE_WAY_ANALYZERS
        )
        assert report.syntactic.constant_of("u") == 1
        assert report.syntactic.constant_of("v") == 2
