"""Ablation: the granularity of the Section 4.4 loop cut matters.

DESIGN.md §3.5, finding 2: registering *value* judgments in the active
set (a literal reading of "the arguments (M, σ) have already been
considered") lets a cut fire at a judgment whose continuation frame
binds the cut's (⊤, CL⊤) directly, injecting spurious closures the
default (let-headed-only) cut discipline filters through arithmetic.
The `cut_values=True` switch restores the literal reading so the
effect can be measured.
"""

import pytest

from repro import Precision
from repro.analysis import analyze_direct
from repro.analysis.compare import compare_semantic_to_direct
from repro.analysis.semantic_cps import SemanticCpsAnalyzer
from repro.corpus import PROGRAMS
from repro.domains import ConstPropDomain, Lattice, SignDomain


def run_semantic(program, domain, cut_values):
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    analyzer = SemanticCpsAnalyzer(
        program.term, domain, initial=initial, cut_values=cut_values
    )
    return analyzer.run()


class TestDefaultDiscipline:
    def test_theorem54_holds_on_factorial_sign(self):
        program = PROGRAMS["factorial"]
        domain = SignDomain()
        direct = analyze_direct(program.term, domain)
        semantic = run_semantic(program, domain, cut_values=False)
        assert compare_semantic_to_direct(semantic, direct) in (
            Precision.EQUAL,
            Precision.LEFT_MORE_PRECISE,
        )

    def test_results_identical_on_cut_free_programs(self):
        # on non-recursive programs the switch is unobservable
        program = PROGRAMS["theorem-5.2-conditional"]
        domain = ConstPropDomain()
        default = run_semantic(program, domain, cut_values=False)
        literal = run_semantic(program, domain, cut_values=True)
        assert default.answer == literal.answer
        assert default.stats.loop_cuts == literal.stats.loop_cuts == 0


class TestLiteralReading:
    def test_value_cuts_perturb_theorem54(self):
        """With value judgments registered, cuts deliver (⊤, CL⊤) into
        join frames and the semantic analysis accumulates spurious
        closures the direct analysis does not have."""
        program = PROGRAMS["factorial"]
        domain = SignDomain()
        direct = analyze_direct(program.term, domain)
        literal = run_semantic(program, domain, cut_values=True)
        verdict = compare_semantic_to_direct(literal, direct)
        assert verdict in (
            Precision.RIGHT_MORE_PRECISE,
            Precision.INCOMPARABLE,
        )
        # the mechanism: extra closures in the final answer
        assert literal.value.clos - direct.value.clos

    def test_literal_mode_still_terminates(self):
        program = PROGRAMS["factorial"]
        result = run_semantic(program, ConstPropDomain(), cut_values=True)
        assert result.stats.loop_cuts >= 1

    def test_literal_mode_cuts_at_least_as_often(self):
        program = PROGRAMS["even-odd"]
        domain = ConstPropDomain()
        default = run_semantic(program, domain, cut_values=False)
        literal = run_semantic(program, domain, cut_values=True)
        assert literal.stats.loop_cuts >= default.stats.loop_cuts
