"""Validation against an enumerated collecting semantics.

Section 4 derives the analyzers by abstracting a *collecting*
semantics: the map from each variable to the set of values bound to it
along **all** executions.  For programs whose free variables range
over a small finite set we can compute that collecting semantics
exactly — run the concrete interpreter once per input assignment and
union the per-variable bindings — and then check the Section 4.3
correctness criterion against it: the abstract store entry for ``x``
must describe *every* collected value, for every input that the
initial abstract store covers.

This is a much sharper soundness test than comparing against a single
run: it exercises exactly the joins (branch merges, multi-call-site
parameters) where the analyzers approximate.
"""

import itertools

import pytest

from repro.analysis import (
    analyze_direct,
    analyze_polyvariant,
    analyze_semantic_cps,
)
from repro.anf import normalize
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
)
from repro.interp import run_direct
from repro.interp.errors import InterpError
from repro.interp.values import Closure, Env, PrimVal, Store
from repro.lang.parser import parse
from repro.lang.syntax import free_variables

INPUT_RANGE = range(-2, 4)

PROGRAMS = [
    # branch joins
    "(let (a (if0 x 0 1)) (let (b (if0 a (+ a 3) (+ a 2))) b))",
    # nested conditionals with correlations
    "(let (a (if0 x 1 2)) (let (b (if0 y a (* a a))) (+ a b)))",
    # parameter joins across call sites
    """(let (f (lambda (p) (* p p)))
         (let (u (f x)) (let (v (f (add1 x))) (+ u v))))""",
    # higher-order: chosen closure depends on input
    """(let (inc (lambda (i) (add1 i)))
         (let (dec (lambda (j) (sub1 j)))
           (let (pick (if0 x inc dec))
             (pick y))))""",
    # arithmetic mixing
    "(let (a (* x y)) (let (b (- a x)) (if0 b a b)))",
]

DOMAINS = [
    ConstPropDomain(),
    ParityDomain(),
    SignDomain(),
    IntervalDomain(bound=8),
]


def collecting_semantics(term, names):
    """Run the program for every input assignment; return the map
    variable -> set of concrete values bound along any run."""
    collected: dict[str, set] = {}
    results = []
    for values in itertools.product(INPUT_RANGE, repeat=len(names)):
        env, store = Env(), Store()
        for name, value in zip(names, values):
            loc = store.new(name)
            store.bind(loc, value)
            env = env.bind(name, loc)
        try:
            answer = run_direct(term, env=env, store=store, fuel=200_000)
        except InterpError:
            continue
        results.append(answer.value)
        for loc, value in answer.store.items():
            collected.setdefault(loc.name, set()).add(value)
    return collected, results


def describes(domain, abstract, concrete) -> bool:
    if isinstance(concrete, int):
        return domain.abstracts(abstract.num, concrete)
    if isinstance(concrete, (PrimVal, Closure)):
        return bool(abstract.clos)
    return False


def initial_for(lattice, names):
    """Cover the whole input range with one abstract value per input."""
    domain = lattice.domain
    joined = domain.bottom
    for i in INPUT_RANGE:
        joined = domain.join(joined, domain.const(i))
    return {name: lattice.of_num(joined) for name in names}


@pytest.mark.parametrize("source", PROGRAMS, ids=lambda s: s[:28])
@pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.name)
class TestAgainstCollectingSemantics:
    def test_direct_analyzer_covers_all_runs(self, source, domain):
        term = normalize(parse(source))
        names = sorted(free_variables(term))
        collected, results = collecting_semantics(term, names)
        assert results, "workload must have at least one terminating run"
        lattice = Lattice(domain)
        analysis = analyze_direct(
            term, domain, initial=initial_for(lattice, names)
        )
        for name, values in collected.items():
            for value in values:
                assert describes(
                    domain, analysis.value_of(name), value
                ), f"{name} misses {value!r}"
        for result in results:
            assert describes(domain, analysis.value, result)

    def test_semantic_analyzer_covers_all_runs(self, source, domain):
        term = normalize(parse(source))
        names = sorted(free_variables(term))
        collected, results = collecting_semantics(term, names)
        lattice = Lattice(domain)
        analysis = analyze_semantic_cps(
            term, domain, initial=initial_for(lattice, names)
        )
        for name, values in collected.items():
            for value in values:
                assert describes(
                    domain, analysis.value_of(name), value
                ), f"{name} misses {value!r}"
        for result in results:
            assert describes(domain, analysis.value, result)

    @pytest.mark.parametrize("k", [1, 2])
    def test_polyvariant_analyzer_covers_all_runs(self, source, domain, k):
        term = normalize(parse(source))
        names = sorted(free_variables(term))
        collected, results = collecting_semantics(term, names)
        lattice = Lattice(domain)
        analysis = analyze_polyvariant(
            term, domain, k=k, initial=initial_for(lattice, names)
        )
        for name, values in collected.items():
            for value in values:
                assert describes(
                    domain, analysis.value_of(name), value
                ), f"{name} misses {value!r}"
        for result in results:
            assert describes(domain, analysis.value, result)
