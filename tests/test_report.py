"""Tests for the report generator (EXPERIMENTS.md regeneration)."""

from repro.report import (
    call_cost_table,
    computability_note,
    cost_table,
    generate_report,
    loop_table,
    routes_table,
    witness_table,
)


class TestWitnessTable:
    def test_contains_all_four_witnesses(self):
        table = witness_table()
        for name in (
            "theorem-5.1",
            "shivers-p33",
            "theorem-5.2-conditional",
            "theorem-5.2-two-closures",
        ):
            assert name in table

    def test_records_both_verdict_directions(self):
        table = witness_table()
        assert "left-more-precise" in table
        assert "right-more-precise" in table

    def test_paper_constants_present(self):
        table = witness_table()
        assert "`(1, {})`" in table  # direct a1 on T5.1
        assert "`(3, {})`" in table  # cps a2 on T5.2 case 1
        assert "`(5, {})`" in table  # cps a2 on T5.2 case 2


class TestCostTables:
    def test_conditional_series_shape(self):
        table = cost_table(lengths=(2, 4))
        assert "| 2 | 9 | 17 | 17 |" in table
        assert "| 4 | 19 | 89 | 89 |" in table

    def test_call_chain_superexponential(self):
        table = call_cost_table(lengths=(3,))
        assert "| 3 | 10 | 29 | 329 |" in table


class TestLoopTables:
    def test_instability_around_threshold(self):
        table = loop_table(threshold=10, bounds=(9, 10))
        assert "| 9 | `222` |" in table
        assert "| 10 | `⊤` |" in table

    def test_computability_note(self):
        note = computability_note()
        assert "raises NonComputableError" in note
        assert "matches direct" in note


class TestRoutesTable:
    def test_duplication_matches_cps(self):
        table = routes_table()
        assert "duplication + direct | `(3, {})`" in table
        assert "syntactic-CPS | `(3, {})`" in table


class TestFullReport:
    def test_all_sections_present(self):
        report = generate_report(quick=True)
        for heading in (
            "Theorem 5.1 / 5.2 witnesses",
            "conditional-chain cost",
            "call-site-chain cost",
            "loop unrolling",
            "computability",
            "routes on the conditional witness",
        ):
            assert heading in report
