"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRun:
    def test_direct(self, capsys):
        code, out, _ = run_cli(capsys, "run", "-e", "(add1 41)")
        assert code == 0
        assert out.strip() == "42"

    @pytest.mark.parametrize("interp", ["direct", "semantic", "syntactic"])
    def test_all_interpreters_agree(self, capsys, interp):
        code, out, _ = run_cli(
            capsys, "run", "-e", "(* (+ 1 2) 4)", "--interpreter", interp
        )
        assert code == 0
        assert out.strip() == "12"

    def test_assume_provides_free_variables(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "-e", "(+ n 2)", "--assume", "n=40"
        )
        assert out.strip() == "42"

    def test_missing_free_variable_errors(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "run", "-e", "(+ n 2)")

    def test_bad_assume_errors(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "run", "-e", "(+ n 2)", "--assume", "n=abc")

    def test_file_input(self, capsys, tmp_path):
        path = tmp_path / "prog.anf"
        path.write_text("(sub1 0)")
        code, out, _ = run_cli(capsys, "run", str(path))
        assert out.strip() == "-1"


class TestAnalyze:
    def test_three_way_summary(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze",
            "-e",
            "(let (a1 (if0 x 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
        )
        assert code == 0
        assert "right-more-precise" in out
        assert "per-variable facts" in out

    def test_domain_choice(self, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", "-e", "(+ 2 4)", "--domain", "parity"
        )
        assert "even" in out

    def test_assume_constant(self, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", "-e", "(add1 n)", "--assume", "n=1"
        )
        assert "value=(2, {})" in out

    def test_polyvariant_mode(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze",
            "--k",
            "1",
            "-e",
            "(let (f (lambda (x) (add1 x))) (+ (f 1) (f 2)))",
        )
        assert "value: (5, {})" in out

    def test_json_output(self, capsys):
        import json

        code, out, _ = run_cli(
            capsys, "analyze", "--json", "-e", "(let (a (+ 1 2)) a)"
        )
        data = json.loads(out)
        assert data["direct"]["store"]["a"]["num"] == "3"
        assert data["verdicts"]["semantic_vs_direct"] == "equal"
        assert data["verdicts"]["pushdown_vs_direct"] == "equal"
        assert set(data) == {
            "direct",
            "semantic_cps",
            "syntactic_cps",
            "pushdown",
            "verdicts",
        }

    def test_loop_mode(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze",
            "-e",
            "(let (d (loop)) d)",
            "--loop-mode",
            "top",
        )
        assert code == 0


class TestTransforms:
    def test_anf(self, capsys):
        code, out, _ = run_cli(capsys, "anf", "-e", "(f (g 1))")
        assert out.strip() == "(let (t%1 (g 1)) (let (t (f t%1)) t))"

    def test_cps(self, capsys):
        code, out, _ = run_cli(capsys, "cps", "-e", "(f 1)")
        assert out.strip() == "(f 1 (lambda (t) (k/halt t)))"

    def test_optimize(self, capsys):
        code, out, err = run_cli(
            capsys,
            "optimize",
            "-e",
            "(let (f (lambda (x) (add1 x))) (+ (f 1) (f 2)))",
        )
        assert "5" in out
        assert "rounds" in err

    def test_optimize_pass_subset(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "optimize",
            "-e",
            "(let (dead 1) 9)",
            "--passes",
            "dce",
        )
        assert out.strip() == "9"


class TestGraph:
    def test_call_graph(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "-e", "(let (f (lambda (x) x)) (f 1))"
        )
        assert out.startswith("digraph")
        assert "λx" in out

    def test_flow_graph(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "graph",
            "--kind",
            "flow",
            "-e",
            "(let (a 1) (let (b 2) b))",
        )
        assert '"a" -> "b"' in out


class TestCompile:
    def test_direct_backend(self, capsys):
        code, out, err = run_cli(
            capsys, "compile", "-e", "(let (f (lambda (x) (* x x))) (f 6))"
        )
        assert code == 0
        assert "Close(param='x')" in out
        assert "result: 36" in err

    def test_cps_backend_is_stackless(self, capsys):
        code, out, err = run_cli(
            capsys,
            "compile",
            "--backend",
            "cps",
            "-e",
            "(let (f (lambda (x) (* x x))) (f 6))",
        )
        assert "CallK" in out
        assert "control-stack depth: 0" in err

    def test_no_run(self, capsys):
        code, out, err = run_cli(
            capsys, "compile", "--no-run", "-e", "(add1 1)"
        )
        assert "result" not in err
        assert "instructions" in err

    def test_assume(self, capsys):
        code, out, err = run_cli(
            capsys, "compile", "-e", "(+ n 2)", "--assume", "n=40"
        )
        assert "result: 42" in err


class TestDataflow:
    WITNESS = "(let (a1 (if0 x 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))"

    def test_both_solvers(self, capsys):
        code, out, _ = run_cli(capsys, "dataflow", "-e", self.WITNESS)
        assert "[MFP]" in out and "[MOP]" in out
        # the split is visible in the output
        assert "a2           ⊤" in out
        assert "a2           3" in out

    def test_single_solver(self, capsys):
        code, out, _ = run_cli(
            capsys, "dataflow", "--solver", "mfp", "-e", self.WITNESS
        )
        assert "[MFP]" in out and "[MOP]" not in out

    def test_assume_constant(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "dataflow",
            "-e",
            "(let (r (if0 x 1 2)) r)",
            "--assume",
            "x=0",
        )
        assert "r            1" in out

    def test_refine_flag(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "dataflow",
            "--solver",
            "mfp",
            "--refine",
            "-e",
            "(let (r (if0 x (+ x 5) 9)) r)",
        )
        assert code == 0


class TestErrors:
    def test_no_input(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "anf")

    def test_unknown_command(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "frobnicate")


class TestCorpusCommand:
    def test_lists_programs_and_families(self, capsys):
        code, out, _ = run_cli(capsys, "corpus")
        assert code == 0
        assert "theorem-5.1" in out
        assert "conditional-chain-K" in out
        assert "[heavy]" in out  # ackermann is flagged

    def test_json_listing(self, capsys):
        code, out, _ = run_cli(capsys, "corpus", "--json")
        listing = json.loads(out)
        names = {entry["name"] for entry in listing["programs"]}
        assert "shivers-p33" in names
        assert all("description" in entry for entry in listing["families"])


class TestExitCodes:
    """Interpreter/analyzer failures map to the structured
    `repro.serve` exit codes instead of tracebacks."""

    def test_diverged_exits_4(self, capsys):
        code, _, err = run_cli(capsys, "run", "-e", "(let (d (loop)) d)")
        assert code == 4
        assert "diverged" in err

    def test_fuel_exhausted_exits_3(self, capsys):
        code, _, err = run_cli(
            capsys,
            "run",
            "-e",
            "(let (f (lambda (s) (s s))) (f f))",
            "--fuel",
            "50",
        )
        assert code == 3
        assert "fuel_exhausted" in err

    def test_stuck_exits_5(self, capsys):
        code, _, err = run_cli(capsys, "run", "-e", "(1 2)")
        assert code == 5
        assert "stuck" in err

    def test_parse_error_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "anf", "-e", "(((")
        assert code == 2
        assert "parse_error" in err

    def test_non_computable_exits_7(self, capsys):
        code, _, err = run_cli(
            capsys,
            "analyze",
            "-e",
            "(let (d (loop)) d)",
            "--loop-mode",
            "reject",
        )
        assert code == 7
        assert "non_computable" in err

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "--help")
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "fuel_exhausted" in out
        assert "diverged" in out

    def test_success_still_exits_0(self, capsys):
        code, out, _ = run_cli(capsys, "run", "-e", "(add1 1)")
        assert code == 0


class TestServeCommands:
    def test_serve_and_request_help_exist(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "serve", "--help")
        out = capsys.readouterr().out
        assert "--queue-size" in out
        with pytest.raises(SystemExit):
            run_cli(capsys, "request", "--help")
        out = capsys.readouterr().out
        assert "--retries" in out

    def test_request_unreachable_exit_code(self, capsys):
        code, _, err = run_cli(
            capsys,
            "request",
            "health",
            "--url",
            "http://127.0.0.1:1",
            "--retries",
            "0",
            "--timeout",
            "2",
        )
        assert code == 10
        assert "unreachable" in err


class TestTrace:
    def test_stdout_jsonl(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "-e", "(add1 1)")
        assert code == 0
        records = [json.loads(line) for line in out.splitlines()]
        assert records
        assert all(r["event"] == "interp.step" for r in records)
        interpreters = {r["interpreter"] for r in records}
        assert interpreters == {"direct", "semantic-cps", "syntactic-cps"}

    def test_out_file(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "trace", "-e", "(add1 1)", "--out", str(path)
        )
        assert code == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        assert f"{len(records)} events" in err

    def test_single_interpreter(self, capsys):
        code, out, _ = run_cli(
            capsys, "trace", "-e", "(add1 1)", "--interpreter", "direct"
        )
        records = [json.loads(line) for line in out.splitlines()]
        assert {r["interpreter"] for r in records} == {"direct"}

    def test_analyzers_flag_adds_analysis_events(self, capsys):
        code, out, _ = run_cli(
            capsys, "trace", "-e", "(add1 1)", "--analyzers"
        )
        kinds = {json.loads(line)["event"] for line in out.splitlines()}
        assert "interp.step" in kinds
        assert "analysis.visit" in kinds

    def test_unbound_free_variable_errors(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "trace", "-e", "(+ n 2)")


class TestStatsFlags:
    def test_run_stats(self, capsys):
        code, out, err = run_cli(
            capsys, "run", "-e", "(add1 41)", "--stats"
        )
        assert out.strip() == "42"
        assert "steps:" in err and "fuel remaining:" in err

    def test_analyze_stats_table_and_snapshot(self, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", "-e", "(let (a1 (if0 x 0 1)) a1)", "--stats"
        )
        assert "per-analyzer work" in out
        assert "visits" in out and "joins" in out and "widenings" in out
        assert "analysis.direct.visits" in out

    def test_analyze_stats_json(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze",
            "-e",
            "(let (a1 (if0 x 0 1)) a1)",
            "--stats",
            "--json",
        )
        payload = json.loads(out)
        assert "metrics" in payload
        assert payload["metrics"]["counters"]["analysis.direct.visits"] > 0

    def test_dataflow_stats(self, capsys):
        code, out, _ = run_cli(
            capsys, "dataflow", "-e", "(let (a 1) a)", "--stats"
        )
        assert "mfp.iterations" in out
        assert "mop.paths" in out
