"""Tests for the compiler back ends and the abstract machine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize
from repro.corpus import PROGRAMS
from repro.cps import TOP_KVAR, cps_transform
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.interp.errors import Diverged, FuelExhausted, StuckError
from repro.lang.parser import parse
from repro.lang.syntax import free_variables
from repro.machine import compile_cps, compile_direct, run_code
from repro.machine.code import Halt, code_size
from repro.machine.vm import MClosure, MClosureK, MPrim


def run_both(source_or_term, fuel=1_000_000):
    term = (
        normalize(parse(source_or_term))
        if isinstance(source_or_term, str)
        else source_or_term
    )
    direct_value, direct_stats = run_code(compile_direct(term), fuel=fuel)
    cps_value, cps_stats = run_code(
        compile_cps(cps_transform(term)), halt_kvar=TOP_KVAR, fuel=fuel
    )
    return (direct_value, direct_stats), (cps_value, cps_stats)


class TestBasicPrograms:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", 42),
            ("(add1 41)", 42),
            ("(sub1 0)", -1),
            ("(+ 2 3)", 5),
            ("(* (- 7 3) 3)", 12),
            ("(if0 0 1 2)", 1),
            ("(if0 9 1 2)", 2),
            ("((lambda (x) (* x x)) 6)", 36),
            ("(let (f (lambda (x) (lambda (y) (- x y)))) ((f 10) 4))", 6),
            ("(let (twice (lambda (f) (lambda (x) (f (f x))))) ((twice add1) 0))", 2),
        ],
    )
    def test_both_back_ends_agree_with_expected(self, source, expected):
        (dv, _), (cv, _) = run_both(source)
        assert dv == expected
        assert cv == expected

    def test_closure_results(self):
        term = normalize(parse("(lambda (x) x)"))
        dv, _ = run_code(compile_direct(term))
        cv, _ = run_code(
            compile_cps(cps_transform(term)), halt_kvar=TOP_KVAR
        )
        assert isinstance(dv, MClosure)
        assert isinstance(cv, MClosureK)

    def test_prim_value_results(self):
        dv, _ = run_code(compile_direct(normalize(parse("add1"))))
        assert dv == MPrim("add1")


class TestControlStackContrast:
    """The operational reading of Section 6.3: the CPS back end has no
    control stack — the continuation closures in the environment play
    that role."""

    @pytest.mark.parametrize(
        "name", ["factorial", "even-odd", "church", "ackermann"]
    )
    def test_cps_code_never_pushes_frames(self, name):
        term = PROGRAMS[name].term
        _, stats = run_code(
            compile_cps(cps_transform(term)),
            halt_kvar=TOP_KVAR,
            fuel=10_000_000,
        )
        assert stats.max_frames == 0

    def test_direct_code_stack_grows_with_recursion(self):
        shallow = PROGRAMS["church"].term
        deep = PROGRAMS["factorial"].term
        _, s1 = run_code(compile_direct(shallow))
        _, s2 = run_code(compile_direct(deep))
        assert s2.max_frames > s1.max_frames >= 1

    def test_tail_recursion_runs_in_constant_stack(self):
        """Last-call optimization: the countdown loop's recursive call
        and conditional are both in tail position, so the direct back
        end runs it without growing the control stack."""

        def countdown(n):
            return normalize(
                parse(
                    f"""(let (down (lambda (self)
                                 (lambda (n)
                                   (if0 n 0 ((self self) (- n 1))))))
                      ((down down) {n}))"""
                )
            )

        _, small = run_code(compile_direct(countdown(5)), fuel=10_000_000)
        _, large = run_code(
            compile_direct(countdown(2000)), fuel=10_000_000
        )
        assert large.max_frames == small.max_frames  # O(1) frames

    def test_tail_call_instruction_emitted(self):
        from repro.machine import TailCall
        from repro.machine.code import Branch

        term = normalize(parse("(let (f (lambda (x) x)) (f 1))"))
        code = compile_direct(term)

        def instrs(block):
            for instr in block:
                yield instr
                match instr:
                    case Branch(t, e):
                        yield from instrs(t)
                        yield from instrs(e)
                    case _:
                        if hasattr(instr, "code"):
                            yield from instrs(instr.code)

        assert any(isinstance(i, TailCall) for i in instrs(code))

    def test_direct_stack_depth_tracks_input(self):
        def fact_term(n):
            return normalize(
                parse(
                    f"""(let (fact (lambda (self)
                                 (lambda (n)
                                   (if0 n 1 (* n ((self self) (- n 1)))))))
                      ((fact fact) {n}))"""
                )
            )

        _, small = run_code(compile_direct(fact_term(3)))
        _, large = run_code(compile_direct(fact_term(9)))
        # one frame per recursion level: the non-tail recursive call
        # (the multiplication consumes its result); the conditional and
        # the self-application are tail-optimized
        assert large.max_frames - small.max_frames == 9 - 3


class TestAgreementWithInterpreters:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_corpus(self, name):
        term = PROGRAMS[name].term
        if free_variables(term):
            pytest.skip("open program")
        reference = run_direct(term, fuel=1_000_000).value
        if not isinstance(reference, int):
            pytest.skip("non-numeric result; covered above")
        (dv, _), (cv, _) = run_both(term, fuel=10_000_000)
        assert dv == reference
        assert cv == reference

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        reference = run_direct(term, fuel=1_000_000).value
        (dv, _), (cv, _) = run_both(term, fuel=4_000_000)
        if isinstance(reference, int):
            assert dv == reference
            assert cv == reference


class TestErrorsAndEdges:
    def test_stuck_on_unbound_variable(self):
        term = normalize(parse("(add1 ghost)"))
        with pytest.raises(StuckError):
            run_code(compile_direct(term, check=False))

    def test_stuck_on_applying_number(self):
        term = normalize(parse("(1 2)"))
        with pytest.raises(StuckError):
            run_code(compile_direct(term))

    def test_loop_diverges(self):
        term = normalize(parse("(loop)"))
        with pytest.raises(Diverged):
            run_code(compile_direct(term))
        with pytest.raises(Diverged):
            run_code(
                compile_cps(cps_transform(term)), halt_kvar=TOP_KVAR
            )

    def test_omega_exhausts_fuel(self):
        term = normalize(parse("((lambda (x) (x x)) (lambda (y) (y y)))"))
        with pytest.raises(FuelExhausted):
            run_code(compile_direct(term), fuel=10_000)

    def test_initial_env(self):
        term = normalize(parse("(+ n 2)"))
        value, _ = run_code(compile_direct(term), initial_env={"n": 40})
        assert value == 42

    def test_direct_code_ends_with_halt(self):
        code = compile_direct(normalize(parse("42")))
        assert isinstance(code[-1], Halt)

    def test_cps_code_has_no_halt(self):
        code = compile_cps(cps_transform(normalize(parse("42"))))
        assert not any(isinstance(i, Halt) for i in code)

    def test_code_size_counts_nested_blocks(self):
        term = normalize(parse("(let (f (lambda (x) (if0 x 1 2))) (f 0))"))
        assert code_size(compile_direct(term)) > len(compile_direct(term))
