"""Edge-case tests for the abstract machine itself."""

import pytest

from repro.interp.errors import StuckError
from repro.machine import run_code
from repro.machine.code import (
    Bind,
    Call,
    CallK,
    CloseK,
    Code,
    Const,
    Halt,
    Lookup,
    MakePrim,
    Op,
    Push,
    RetK,
    code_size,
)
from repro.machine.vm import MHalt, MKont, MPrim


class TestHandwrittenCode:
    def test_minimal_program(self):
        value, stats = run_code((Const(7), Halt()))
        assert value == 7
        assert stats.steps == 2

    def test_arithmetic(self):
        code: Code = (Const(2), Push(), Const(3), Op("*"), Halt())
        value, _ = run_code(code)
        assert value == 6

    def test_falling_off_with_no_frames_is_the_answer(self):
        value, _ = run_code((Const(9),))
        assert value == 9

    def test_prim_call(self):
        code: Code = (MakePrim("add1"), Push(), Const(41), Call(), Halt())
        value, _ = run_code(code)
        assert value == 42

    def test_manual_continuation(self):
        # bind a continuation, return through it
        code: Code = (
            CloseK("r", (Lookup("r"), RetK("k/halt"))),
            Bind("k/j"),
            Const(5),
            RetK("k/j"),
        )
        value, _ = run_code(code, halt_kvar="k/halt")
        assert value == 5


class TestStuckStates:
    def test_unbound_variable(self):
        with pytest.raises(StuckError):
            run_code((Lookup("ghost"), Halt()))

    def test_apply_number(self):
        with pytest.raises(StuckError):
            run_code((Const(1), Push(), Const(2), Call(), Halt()))

    def test_prim_on_non_number(self):
        code: Code = (
            MakePrim("add1"),
            Push(),
            MakePrim("sub1"),
            Call(),
            Halt(),
        )
        with pytest.raises(StuckError):
            run_code(code)

    def test_return_through_number(self):
        code: Code = (Const(1), Bind("k/j"), Const(2), RetK("k/j"))
        with pytest.raises(StuckError):
            run_code(code)

    def test_unbound_continuation(self):
        with pytest.raises(StuckError):
            run_code((Const(1), RetK("k/ghost")))

    def test_callk_on_number(self):
        code: Code = (
            Const(1),
            Push(),
            Const(2),
            Push(),
            CloseK("r", (Lookup("r"), RetK("k/halt"))),
            CallK(),
        )
        with pytest.raises(StuckError):
            run_code(code, halt_kvar="k/halt")


class TestValues:
    def test_machine_value_types(self):
        assert MPrim("add1") == MPrim("add1")
        assert MHalt() == MHalt()
        kont = MKont("x", (Halt(),), {})
        assert kont.param == "x"

    def test_code_size_flat(self):
        assert code_size((Const(1), Halt())) == 2

    def test_initial_env_values_pass_through(self):
        value, _ = run_code(
            (Lookup("n"), Push(), Const(2), Op("+"), Halt()),
            initial_env={"n": 40},
        )
        assert value == 42
