"""Differential tests: the optimized plan tier replays the baseline
tier bit for bit.

`repro.machine.absplan.optimize_anf_plan` / `optimize_cps_plan` may
fuse opcodes into superinstructions, pre-join interned constant
abstract values, and precompute branch targets — but an optimized run
must be indistinguishable from the baseline run: same answer value,
same final abstract store, same visit count, same loop cuts, same
widenings (the full `AnalysisStats` dict).  These tests compare the
two tiers over:

- the full corpus, for all four plan analyzers, over every number
  domain;
- the Section 6.2 parametric families (including an ``unroll``
  loop-mode case);
- 300 seeded random open terms (⊤ initial assumptions);
- the `repro.perf` caches stacked on top.

Work-budget agreement is part of the contract: when the baseline tier
raises `BudgetExceeded`, the optimized tier must raise it too.  The
structural tests at the bottom pin the optimizer's shape invariants
(no instruction added, removed, or renumbered; idempotence).
"""

import random

import pytest

from repro.analysis.common import BudgetExceeded
from repro.analysis.delta import delta_store
from repro.analysis.direct import analyze_direct
from repro.analysis.polyvariant import analyze_polyvariant
from repro.analysis.semantic_cps import analyze_semantic_cps
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.anf import normalize
from repro.corpus.programs import (
    PROGRAMS,
    call_site_chain,
    conditional_chain,
    loop_feeding_conditional,
    top_conditional_chain,
)
from repro.cps import cps_transform
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.domains.store import AbsStore
from repro.gen.random_terms import random_open_term
from repro.lang.syntax import free_variables
from repro.machine.absplan import (
    PLAN_TIERS,
    compile_anf_plan,
    compile_cps_plan,
    optimize_anf_plan,
    optimize_cps_plan,
)

BUDGET = 100_000

DOMAINS = {
    "constprop": ConstPropDomain,
    "unit": UnitDomain,
    "parity": ParityDomain,
    "sign": SignDomain,
    "interval": IntervalDomain,
}


def _fingerprint(run):
    """Everything observable about one analysis run, or the budget
    outcome — both tiers must produce the same tuple."""
    try:
        result = run()
    except BudgetExceeded:
        return ("budget-exceeded",)
    return (
        "ok",
        result.value,
        dict(result.store.items()),
        result.stats.as_dict(),
    )


def _poly_fingerprint(run):
    try:
        result = run()
    except BudgetExceeded:
        return ("budget-exceeded",)
    return (
        "ok",
        result.value,
        dict(result._store.items()),
        result.analyzer.stats.as_dict(),
    )


def _assert_direct_agrees(term, domain, initial, cache=None):
    fingerprints = [
        _fingerprint(
            lambda t=tier: analyze_direct(
                term,
                domain,
                initial=initial,
                max_visits=BUDGET,
                cache=cache,
                engine="plan",
                plan_tier=t,
            )
        )
        for tier in PLAN_TIERS
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_semantic_agrees(
    term, domain, initial, loop_mode="top", unroll_bound=32, cache=None
):
    fingerprints = [
        _fingerprint(
            lambda t=tier: analyze_semantic_cps(
                term,
                domain,
                initial=initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=BUDGET,
                cache=cache,
                engine="plan",
                plan_tier=t,
            )
        )
        for tier in PLAN_TIERS
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_syntactic_agrees(
    cterm, domain, cps_initial, loop_mode="top", unroll_bound=32, cache=None
):
    fingerprints = [
        _fingerprint(
            lambda t=tier: analyze_syntactic_cps(
                cterm,
                domain,
                initial=cps_initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=BUDGET,
                cache=cache,
                engine="plan",
                plan_tier=t,
            )
        )
        for tier in PLAN_TIERS
    ]
    assert fingerprints[0] == fingerprints[1]


def _assert_polyvariant_agrees(term, domain, initial, k, cache=None):
    fingerprints = [
        _poly_fingerprint(
            lambda t=tier: analyze_polyvariant(
                term,
                domain,
                k=k,
                initial=initial,
                max_visits=BUDGET,
                cache=cache,
                engine="plan",
                plan_tier=t,
            )
        )
        for tier in PLAN_TIERS
    ]
    assert fingerprints[0] == fingerprints[1]


def _cps_side(term, lattice, initial):
    return cps_transform(term), dict(
        delta_store(AbsStore(lattice, initial)).items()
    )


@pytest.mark.parametrize("domain_name", sorted(DOMAINS))
@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestCorpusAllDomains:
    """Full corpus x all four plan analyzers x every number domain."""

    def test_direct(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_direct_agrees(program.term, domain, initial)

    def test_semantic_cps(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_semantic_agrees(program.term, domain, initial)

    def test_syntactic_cps(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        lattice = Lattice(domain)
        initial = program.initial_for(lattice)
        cterm, cps_initial = _cps_side(program.term, lattice, initial)
        _assert_syntactic_agrees(cterm, domain, cps_initial)

    def test_polyvariant(self, name, domain_name):
        domain = DOMAINS[domain_name]()
        program = PROGRAMS[name]
        initial = program.initial_for(Lattice(domain))
        _assert_polyvariant_agrees(program.term, domain, initial, k=1)


@pytest.mark.parametrize(
    "program",
    [
        conditional_chain(8),
        call_site_chain(6),
        top_conditional_chain(10),
        loop_feeding_conditional(3),
    ],
    ids=lambda p: p.name,
)
def test_families(program):
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_direct_agrees(program.term, domain, initial)
    _assert_semantic_agrees(program.term, domain, initial)
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(cterm, domain, cps_initial)


def test_loop_unroll_mode():
    """The `loop` handling must agree in `unroll` mode too (the bound
    changes the answer, identically on both tiers)."""
    program = loop_feeding_conditional(3)
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_semantic_agrees(
        program.term, domain, initial, loop_mode="unroll", unroll_bound=8
    )
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(
        cterm, domain, cps_initial, loop_mode="unroll", unroll_bound=8
    )


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_corpus_with_caches_stacked(name):
    """`repro.perf` caches on top of the optimized tier must not
    change the (already cache-perturbed) statistics relative to the
    baseline tier with the same caches."""
    domain = ConstPropDomain()
    program = PROGRAMS[name]
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    _assert_direct_agrees(program.term, domain, initial, cache=True)
    _assert_semantic_agrees(program.term, domain, initial, cache=True)
    cterm, cps_initial = _cps_side(program.term, lattice, initial)
    _assert_syntactic_agrees(cterm, domain, cps_initial, cache=True)
    _assert_polyvariant_agrees(
        program.term, domain, initial, k=1, cache=True
    )


@pytest.mark.parametrize("chunk", range(10))
def test_random_open_terms(chunk):
    """300 seeded random open programs (30 per chunk), all three
    monovariant analyzers, ⊤ assumptions for the free inputs."""
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    for seed in range(chunk * 30, (chunk + 1) * 30):
        term = normalize(random_open_term(random.Random(seed), 4))
        initial = {
            name: lattice.of_num(domain.top)
            for name in free_variables(term)
        }
        cache = True if seed % 5 == 0 else None
        _assert_direct_agrees(term, domain, initial, cache=cache)
        _assert_semantic_agrees(term, domain, initial, cache=cache)
        cterm, cps_initial = _cps_side(term, lattice, initial)
        _assert_syntactic_agrees(cterm, domain, cps_initial, cache=cache)


# ----------------------------------------------------------------------
# Optimizer shape invariants
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_optimizer_preserves_plan_shape(name):
    """The peephole passes specialize instructions in place: the pc
    numbering, source-term labels, slot table, and constant pool are
    untouched, so trace labels and error messages keep pointing at the
    same program points on both tiers."""
    term = PROGRAMS[name].term
    base = compile_anf_plan(term)
    opt = optimize_anf_plan(compile_anf_plan(term))
    assert len(opt.code) == len(base.code)
    assert opt.entry_pc == base.entry_pc
    assert opt.terms == base.terms
    assert opt.slot_names == base.slot_names
    assert opt.consts == base.consts
    assert opt.entries == base.entries
    assert opt.optimized and not base.optimized

    cterm = cps_transform(term)
    cbase = compile_cps_plan(cterm)
    copt = optimize_cps_plan(compile_cps_plan(cterm))
    assert len(copt.code) == len(cbase.code)
    assert copt.entry_pc == cbase.entry_pc
    assert copt.terms == cbase.terms
    assert copt.slot_names == cbase.slot_names
    assert copt.consts == cbase.consts
    assert copt.optimized and not cbase.optimized


def test_optimizer_is_idempotent():
    term = PROGRAMS["factorial"].term
    once = optimize_anf_plan(compile_anf_plan(term))
    again = optimize_anf_plan(once)
    assert again is once

    cterm = cps_transform(term)
    conce = optimize_cps_plan(compile_cps_plan(cterm))
    cagain = optimize_cps_plan(conce)
    assert cagain is conce
