"""Property-based tests for the classical dataflow solvers.

On random first-order programs (the fragment the frameworks model
exactly):

- MOP is pointwise at least as precise as MFP (Kam–Ullman);
- both are sound against enumerated concrete executions;
- on the distributive unit framework MOP and MFP coincide;
- branch refinement only ever improves MFP.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize
from repro.dataflow import build_problem, solve_mfp, solve_mop
from repro.domains import ConstPropDomain, UnitDomain
from repro.gen import random_first_order_term
from repro.interp import run_direct
from repro.interp.errors import InterpError
from repro.interp.values import Env, Store
from repro.lang.syntax import free_variables

DOM = ConstPropDomain()

seeds = st.integers(0, 2**32 - 1)


def make_term(seed: int, depth: int):
    term = random_first_order_term(random.Random(seed), depth)
    return normalize(term)


def make_problem(term, domain=DOM, **kwargs):
    entry = {name: domain.top for name in free_variables(term)}
    return build_problem(term, domain, entry_facts=entry, **kwargs)


class TestMopDominatesMfp:
    @settings(max_examples=100, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 5))
    def test_pointwise(self, seed, depth):
        term = make_term(seed, depth)
        problem = make_problem(term)
        mfp = solve_mfp(problem)
        mop = solve_mop(problem, max_paths=1_000_000)
        for point in problem.points:
            assert problem.facts_leq(mop[point], mfp[point]), point


class TestDistributiveCoincidence:
    @settings(max_examples=80, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 5))
    def test_unit_framework(self, seed, depth):
        domain = UnitDomain()
        term = make_term(seed, depth)
        problem = make_problem(term, domain)
        mfp = solve_mfp(problem)
        mop = solve_mop(problem, max_paths=1_000_000)
        for point in problem.points:
            assert mfp[point] == mop[point], point


class TestSoundness:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=seeds,
        depth=st.integers(1, 4),
        refine=st.booleans(),
    )
    def test_exit_facts_cover_enumerated_runs(self, seed, depth, refine):
        term = make_term(seed, depth)
        names = sorted(free_variables(term))
        problem = build_problem(
            term,
            DOM,
            entry_facts={n: DOM.top for n in names},
            refine_tests=refine,
        )
        for solution in (
            solve_mfp(problem),
            solve_mop(problem, max_paths=1_000_000),
        ):
            exit_facts = solution[problem.exit_point]
            for values in itertools.product((-1, 0, 2), repeat=len(names)):
                env, store = Env(), Store()
                for name, value in zip(names, values):
                    loc = store.new(name)
                    store.bind(loc, value)
                    env = env.bind(name, loc)
                try:
                    answer = run_direct(
                        term, env=env, store=store, fuel=100_000
                    )
                except InterpError:
                    continue
                assert exit_facts is not None
                if isinstance(answer.value, int):
                    assert DOM.abstracts(
                        exit_facts.get("<result>", DOM.bottom),
                        answer.value,
                    ), (values, answer.value)


class TestRefinementMonotone:
    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 4))
    def test_refined_mfp_at_least_as_precise(self, seed, depth):
        term = make_term(seed, depth)
        plain = make_problem(term)
        refined = make_problem(term, refine_tests=True)
        plain_solution = solve_mfp(plain)
        refined_solution = solve_mfp(refined)
        for point in plain.points:
            assert plain.facts_leq(
                refined_solution[point], plain_solution[point]
            ), point
