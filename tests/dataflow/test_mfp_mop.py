"""Tests for the classical MFP and MOP dataflow solvers.

The scientific content: MOP ⊒ MFP always (Kam–Ullman), strictly on the
paper's non-distributive witness, equal on distributive frameworks —
and the split aligns exactly with the interpreter-derived analyzers
(direct = MFP-like, semantic-CPS = MOP-like), which is Nielson's
result the paper cites in Section 6.2.
"""

import itertools

import pytest

from repro.analysis import analyze_direct, analyze_semantic_cps
from repro.anf import normalize
from repro.dataflow import (
    ENTRY,
    PathExplosion,
    build_problem,
    solve_mfp,
    solve_mop,
)
from repro.dataflow.mfp import mfp_value
from repro.dataflow.mop import mop_value
from repro.domains import ConstPropDomain, Lattice, ParityDomain, UnitDomain
from repro.domains.constprop import TOP
from repro.interp import run_direct
from repro.interp.values import Env, Store
from repro.lang.parser import parse
from repro.lang.syntax import free_variables

DOM = ConstPropDomain()

WITNESS = normalize(
    parse(
        """(let (a1 (if0 x 0 1))
             (let (a2 (if0 a1 (+ a1 3) (+ a1 2)))
               a2))"""
    ),
    ensure_unique=False,
)


def solve_both(term, domain=DOM, entry=None, **kwargs):
    problem = build_problem(term, domain, entry_facts=entry, **kwargs)
    return problem, solve_mfp(problem), solve_mop(problem)


class TestStraightLine:
    def test_constants_propagate(self):
        term = normalize(parse("(let (a (+ 1 2)) (let (b (* a a)) b))"))
        problem, mfp, mop = solve_both(term)
        assert mfp_value(problem, mfp, "b") == 9
        assert mop_value(problem, mop, "b") == 9
        assert mfp_value(problem, mfp, "<result>") == 9

    def test_prim_application(self):
        term = normalize(parse("(add1 (sub1 5))"))
        problem, mfp, _ = solve_both(term)
        assert mfp_value(problem, mfp, "<result>") == 5

    def test_unknown_call_is_top(self):
        term = normalize(parse("(let (r (f 1)) r)"))
        problem, mfp, _ = solve_both(term, entry={"f": DOM.top})
        assert mfp_value(problem, mfp, "r") is TOP

    def test_loop_is_iota(self):
        term = normalize(parse("(let (d (loop)) d)"))
        problem, mfp, _ = solve_both(term)
        assert mfp_value(problem, mfp, "d") is TOP  # constprop iota


class TestConditionals:
    def test_known_test_prunes_infeasible_edge(self):
        term = normalize(parse("(let (r (if0 0 1 2)) r)"))
        problem, mfp, mop = solve_both(term)
        assert mfp_value(problem, mfp, "r") == 1
        assert mop_value(problem, mop, "r") == 1

    def test_unknown_test_merges_in_mfp(self):
        term = normalize(parse("(let (r (if0 x 1 2)) r)"))
        problem, mfp, mop = solve_both(term, entry={"x": DOM.top})
        assert mfp_value(problem, mfp, "r") is TOP
        assert mop_value(problem, mop, "r") is TOP  # 1 and 2 really differ

    def test_refinement_mode_learns_test_value(self):
        # with refine_tests the then-edge knows x = 0
        term = normalize(
            parse("(let (r (if0 x (+ x 5) 9)) r)"), ensure_unique=False
        )
        problem, mfp, _ = solve_both(
            term, entry={"x": DOM.top}, refine_tests=True
        )
        assert mfp_value(problem, mfp, "r") in (5, TOP)
        # without refinement the then-branch computes TOP + 5 = TOP
        problem2, mfp2, _ = solve_both(term, entry={"x": DOM.top})
        assert mfp_value(problem2, mfp2, "r") is TOP


class TestMopVsMfp:
    def test_the_paper_witness_splits_them(self):
        problem, mfp, mop = solve_both(WITNESS, entry={"x": DOM.top})
        assert mfp_value(problem, mfp, "a2") is TOP  # MFP merges a1 first
        assert mop_value(problem, mop, "a2") == 3  # MOP keeps paths apart

    def test_mop_always_at_least_as_precise(self):
        sources = [
            "(let (a (+ 1 2)) a)",
            "(let (r (if0 x 1 2)) r)",
            "(let (a (if0 x 0 1)) (let (b (+ a a)) b))",
            "(let (a (if0 x 0 1)) (let (b (if0 y a (+ a 1))) b))",
        ]
        for source in sources:
            term = normalize(parse(source), ensure_unique=False)
            entry = {name: DOM.top for name in free_variables(term)}
            problem, mfp, mop = solve_both(term, entry=entry)
            for point in problem.points:
                assert problem.facts_leq(mop[point], mfp[point]), (
                    source,
                    point,
                )

    def test_distributive_framework_coincides(self):
        # the unit domain: all transfers additive, MOP = MFP
        domain = UnitDomain()
        term = WITNESS
        problem = build_problem(
            term, domain, entry_facts={"x": domain.top}
        )
        mfp = solve_mfp(problem)
        mop = solve_mop(problem)
        for point in problem.points:
            assert mfp[point] == mop[point], point

    def test_alignment_with_interpreter_derived_analyzers(self):
        """Nielson's correspondence, reproduced: direct = MFP-like,
        semantic-CPS = MOP-like on the witness."""
        lattice = Lattice(DOM)
        initial = {"x": lattice.of_num(DOM.top)}
        direct = analyze_direct(WITNESS, DOM, initial=initial)
        semantic = analyze_semantic_cps(WITNESS, DOM, initial=initial)
        problem, mfp, mop = solve_both(WITNESS, entry={"x": DOM.top})
        assert direct.num_of("a2") == mfp_value(problem, mfp, "a2") is TOP
        assert (
            semantic.constant_of("a2")
            == mop_value(problem, mop, "a2")
            == 3
        )


class TestSoundness:
    @pytest.mark.parametrize(
        "source",
        [
            "(let (a (if0 x 0 1)) (let (b (if0 a (+ a 3) (+ a 2))) b))",
            "(let (a (* x y)) (let (b (- a x)) (if0 b a b)))",
            "(let (a (if0 x 1 2)) (let (b (if0 y a (* a a))) (+ a b)))",
        ],
    )
    @pytest.mark.parametrize("solver", [solve_mfp, solve_mop])
    @pytest.mark.parametrize("refine", [False, True])
    def test_against_enumerated_runs(self, source, solver, refine):
        term = normalize(parse(source), ensure_unique=False)
        names = sorted(free_variables(term))
        problem = build_problem(
            term,
            DOM,
            entry_facts={n: DOM.top for n in names},
            refine_tests=refine,
        )
        solution = solver(problem)
        exit_facts = solution[problem.exit_point]
        assert exit_facts is not None
        for values in itertools.product(range(-2, 3), repeat=len(names)):
            env, store = Env(), Store()
            for name, value in zip(names, values):
                loc = store.new(name)
                store.bind(loc, value)
                env = env.bind(name, loc)
            answer = run_direct(term, env=env, store=store, fuel=100_000)
            # every binding of this (first-order) run lies on a feasible
            # path to the exit, so the exit facts must describe it
            for loc, value in answer.store.items():
                if isinstance(value, int) and loc.name not in names:
                    fact = exit_facts.get(loc.name, DOM.bottom)
                    assert DOM.abstracts(fact, value), (loc.name, value)
            if isinstance(answer.value, int):
                assert DOM.abstracts(
                    exit_facts.get("<result>", DOM.bottom), answer.value
                )


class TestMopExplosion:
    def test_budget_raises(self):
        # a chain of conditionals has 2^k paths
        from repro.corpus import conditional_chain

        program = conditional_chain(10)
        problem = build_problem(
            program.term,
            DOM,
            entry_facts={f"x{i}": DOM.top for i in range(1, 11)},
        )
        with pytest.raises(PathExplosion):
            solve_mop(problem, max_paths=100)
        # MFP is linear and unbothered
        mfp = solve_mfp(problem)
        assert mfp[problem.exit_point] is not None


class TestParityFramework:
    def test_parity_mop_gain(self):
        domain = ParityDomain()
        term = normalize(
            parse("(let (a (if0 x 1 3)) (let (b (+ a 1)) b))"),
            ensure_unique=False,
        )
        problem = build_problem(term, domain, entry_facts={"x": domain.top})
        mop = solve_mop(problem)
        from repro.domains.parity import EVEN

        # both branches give odd a, so b is even on every path — parity
        # keeps this even through the MFP merge (1 and 3 are both odd)
        mfp = solve_mfp(problem)
        assert mfp_value(problem, mfp, "b") is EVEN
        assert mop_value(problem, mop, "b") is EVEN


class TestMfpJoinMemo:
    """`solve_mfp(..., cache=True)` memoizes fact joins (repro.perf)
    without moving the solution."""

    PROGRAMS = [
        "(let (a (+ 1 2)) (let (b (* a a)) b))",
        "(let (r (if0 x 1 2)) r)",
        "(let (a1 (if0 x 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
        "(let (d (loop)) d)",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_cached_solution_identical(self, source):
        term = normalize(parse(source), ensure_unique=False)
        entry = {name: DOM.top for name in free_variables(term)}
        problem = build_problem(term, DOM, entry_facts=entry)
        assert solve_mfp(problem, cache=True) == solve_mfp(problem)

    def test_cache_metrics_recorded(self):
        from repro.obs.metrics import Metrics

        term = normalize(
            parse(self.PROGRAMS[2]), ensure_unique=False
        )
        problem = build_problem(term, DOM, entry_facts={"x": DOM.top})
        metrics = Metrics()
        solve_mfp(problem, metrics=metrics, cache=True)
        counters = metrics.snapshot()["counters"]
        assert "perf.mfp.join_memo_misses" in counters
        uncached = Metrics()
        solve_mfp(problem, metrics=uncached)
        assert "perf.mfp.join_memo_misses" not in uncached.snapshot()["counters"]
