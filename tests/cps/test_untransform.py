"""Tests for the inverse CPS transformation (uncps)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize, validate_anf
from repro.corpus import PROGRAMS
from repro.cps import UnCpsError, cps_transform, parse_cps, uncps
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat


class TestInversion:
    SOURCES = [
        "42",
        "(f 1)",
        "(if0 x 1 2)",
        "(+ x 3)",
        "(loop)",
        "(lambda (x) (add1 x))",
        "(let (g (lambda (x) (add1 x))) (if0 (g 0) (g 10) (g 20)))",
        """(let (fact (lambda (self)
                        (lambda (n)
                          (if0 n 1 (* n ((self self) (- n 1)))))))
             ((fact fact) 6))""",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_uncps_inverts_cps_transform(self, source):
        term = normalize(parse(source))
        assert uncps(cps_transform(term)) == term

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_identity_on_corpus(self, name):
        term = PROGRAMS[name].term
        assert uncps(cps_transform(term)) == term

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_identity_on_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        assert uncps(cps_transform(term)) == term

    def test_result_is_valid_anf(self):
        term = normalize(parse(self.SOURCES[-2]))
        back = uncps(cps_transform(term))
        validate_anf(back)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_round_trip_preserves_semantics(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        back = uncps(cps_transform(term))
        before = run_direct(term, fuel=500_000)
        after = run_direct(back, fuel=500_000)
        if isinstance(before.value, int):
            assert after.value == before.value


class TestOutsideTheImage:
    def test_return_to_wrong_continuation(self):
        # (f 1 (lambda (r) (k/halt r))) nested so that the inner
        # continuation returns to the *outer* one directly: not F's
        # image
        program = parse_cps(
            "(f 1 (lambda (r) (g r (lambda (s) (k/halt r)))))"
        )
        # valid image: returns s through... this one IS fine;
        # break it by returning to k/halt from inside an if0 branch:
        broken = parse_cps(
            "(let (k/j (lambda (x) (k/halt x)))"
            " (if0 y (k/halt 1) (k/j 2)))"
        )
        with pytest.raises(UnCpsError):
            uncps(broken)

    def test_valid_nested_program_inverts(self):
        program = parse_cps(
            "(f 1 (lambda (r) (g r (lambda (s) (k/halt s)))))"
        )
        back = uncps(program)
        assert pretty_flat(back) == "(let (r (f 1)) (let (s (g r)) s))"
