"""Tests for the syntactic CPS transformation (Definition 3.2)."""

import pytest

from repro.anf import normalize
from repro.cps import (
    TOP_KVAR,
    cps_pretty,
    cps_transform,
    cps_transform_value,
    kvar_for,
    validate_cps,
)
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CVar,
    KApp,
    KLam,
)
from repro.lang.ast import Lam, Num, Prim, Var
from repro.lang.errors import SyntaxValidationError
from repro.lang.parser import parse


def transform(source: str):
    return cps_transform(normalize(parse(source)))


class TestValueTransformation:
    def test_number(self):
        assert cps_transform_value(Num(3)) == CNum(3)

    def test_variable(self):
        assert cps_transform_value(Var("x")) == CVar("x")

    def test_add1(self):
        assert cps_transform_value(Prim("add1")) == CPrim("add1k")

    def test_sub1(self):
        assert cps_transform_value(Prim("sub1")) == CPrim("sub1k")

    def test_lambda_gains_continuation_parameter(self):
        result = cps_transform_value(Lam("x", Var("x")))
        assert result == CLam("x", "k/x", KApp("k/x", CVar("x")))


class TestTermTransformation:
    def test_value_returns_to_k(self):
        assert transform("42") == KApp(TOP_KVAR, CNum(42))

    def test_let_of_value(self):
        assert transform("(let (x 1) x)") == CLet(
            "x", CNum(1), KApp(TOP_KVAR, CVar("x"))
        )

    def test_application_reifies_continuation(self):
        # (let (t (f 1)) t) => (f 1 (lambda (t) (k t)))
        result = cps_transform(normalize(parse("(f 1)"), ensure_unique=False))
        assert result == CApp(
            CVar("f"), CNum(1), KLam("t", KApp(TOP_KVAR, CVar("t")))
        )

    def test_if0_names_the_join_continuation(self):
        result = cps_transform(
            normalize(parse("(if0 x 1 2)"), ensure_unique=False)
        )
        assert result == CIf0(
            kvar_for("t"),
            KLam("t", KApp(TOP_KVAR, CVar("t"))),
            CVar("x"),
            KApp(kvar_for("t"), CNum(1)),
            KApp(kvar_for("t"), CNum(2)),
        )

    def test_operator_binding_stays_direct(self):
        result = cps_transform(
            normalize(parse("(+ x 3)"), ensure_unique=False)
        )
        assert result == CPrimLet(
            "t",
            "+",
            (CVar("x"), CNum(3)),
            KApp(TOP_KVAR, CVar("t")),
        )

    def test_loop_receives_continuation(self):
        result = cps_transform(
            normalize(parse("(loop)"), ensure_unique=False)
        )
        assert result == CLoop(KLam("t", KApp(TOP_KVAR, CVar("t"))))

    def test_paper_theorem51_shape(self):
        """F_k[(let (a1 (f 1)) (let (a2 (f 2)) a2))]
        = (f 1 (lambda (a1) (f 2 (lambda (a2) (k a2)))))"""
        term = parse("(let (a1 (f 1)) (let (a2 (f 2)) a2))")
        result = cps_transform(term)
        assert result == CApp(
            CVar("f"),
            CNum(1),
            KLam(
                "a1",
                CApp(
                    CVar("f"),
                    CNum(2),
                    KLam("a2", KApp(TOP_KVAR, CVar("a2"))),
                ),
            ),
        )

    def test_rejects_non_anf_input(self):
        with pytest.raises(SyntaxValidationError):
            cps_transform(parse("(f (g 1))"))

    def test_deterministic(self):
        term = normalize(parse("(let (f (lambda (x) (add1 x))) (f 1))"))
        assert cps_transform(term) == cps_transform(term)


class TestValidatorAndPrinter:
    @pytest.mark.parametrize(
        "source",
        [
            "42",
            "(f 1)",
            "(if0 x 1 2)",
            "(+ x 3)",
            "(loop)",
            "(let (f (lambda (x) (add1 x))) (if0 (f 0) (f 10) (f 20)))",
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 8))""",
        ],
    )
    def test_transform_output_validates(self, source):
        program = transform(source)
        validate_cps(program, frozenset((TOP_KVAR,)))

    def test_pretty_produces_text(self):
        text = cps_pretty(transform("(let (g (lambda (x) (add1 x))) (g 0))"))
        assert "lambda" in text and "k/" in text

    def test_validate_rejects_unbound_kvar(self):
        with pytest.raises(SyntaxValidationError):
            validate_cps(KApp("k/ghost", CNum(1)), frozenset())

    def test_validate_rejects_kvar_in_var_namespace(self):
        bad = CLam("x", "notk", KApp("notk", CVar("x")))
        with pytest.raises(SyntaxValidationError):
            validate_cps(KApp(TOP_KVAR, bad), frozenset((TOP_KVAR,)))
