"""Tests for the cps(A) parser, including the pretty round trip."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize
from repro.cps import cps_pretty, cps_transform, parse_cps, parse_cps_value
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CVar,
    KApp,
    KLam,
)
from repro.gen import random_closed_term
from repro.lang.errors import ParseError
from repro.lang.parser import parse


class TestValues:
    def test_number(self):
        assert parse_cps_value("42") == CNum(42)

    def test_variable(self):
        assert parse_cps_value("x") == CVar("x")

    def test_primitives(self):
        assert parse_cps_value("add1k") == CPrim("add1k")
        assert parse_cps_value("sub1k") == CPrim("sub1k")

    def test_user_lambda(self):
        assert parse_cps_value("(lambda (x k/x) (k/x x))") == CLam(
            "x", "k/x", KApp("k/x", CVar("x"))
        )

    def test_kvar_is_not_a_value(self):
        with pytest.raises(ParseError):
            parse_cps_value("k/halt")


class TestSeriousTerms:
    def test_return(self):
        assert parse_cps("(k/halt 7)") == KApp("k/halt", CNum(7))

    def test_let(self):
        assert parse_cps("(let (x 1) (k/halt x))") == CLet(
            "x", CNum(1), KApp("k/halt", CVar("x"))
        )

    def test_operator_let(self):
        assert parse_cps("(let (x (+ a 3)) (k/halt x))") == CPrimLet(
            "x", "+", (CVar("a"), CNum(3)), KApp("k/halt", CVar("x"))
        )

    def test_call(self):
        assert parse_cps("(f 1 (lambda (r) (k/halt r)))") == CApp(
            CVar("f"), CNum(1), KLam("r", KApp("k/halt", CVar("r")))
        )

    def test_conditional(self):
        source = (
            "(let (k/r (lambda (r) (k/halt r))) "
            "(if0 x (k/r 1) (k/r 2)))"
        )
        assert parse_cps(source) == CIf0(
            "k/r",
            KLam("r", KApp("k/halt", CVar("r"))),
            CVar("x"),
            KApp("k/r", CNum(1)),
            KApp("k/r", CNum(2)),
        )

    def test_loop(self):
        assert parse_cps("(loop (lambda (d) (k/halt d)))") == CLoop(
            KLam("d", KApp("k/halt", CVar("d")))
        )

    @pytest.mark.parametrize(
        "source",
        [
            "x",
            "()",
            "(k/halt)",
            "(k/halt 1 2)",
            "(let (x 1))",
            "(let (k/r 1) (if0 x (k/r 1) (k/r 2)))",
            "(let (k/r (lambda (r) (k/halt r))) (k/r 1))",
            "(f 1)",
            "(f 1 2 3)",
            "(loop)",
            "(lambda (x k/x) (k/x x))",  # a value, not a serious term
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_cps(source)


class TestRoundTrip:
    SOURCES = [
        "42",
        "(f 1)",
        "(if0 x 1 2)",
        "(+ x 3)",
        "(loop)",
        "(let (g (lambda (x) (add1 x))) (if0 (g 0) (g 10) (g 20)))",
        """(let (fact (lambda (self)
                        (lambda (n)
                          (if0 n 1 (* n ((self self) (- n 1)))))))
             ((fact fact) 6))""",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_transform_pretty_parse(self, source):
        program = cps_transform(normalize(parse(source)))
        assert parse_cps(cps_pretty(program)) == program

    @pytest.mark.parametrize("width", [20, 40, 100])
    def test_round_trip_any_width(self, width):
        program = cps_transform(normalize(parse(self.SOURCES[-2])))
        assert parse_cps(cps_pretty(program, width=width)) == program

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_round_trip_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        program = cps_transform(term)
        assert parse_cps(cps_pretty(program)) == program
