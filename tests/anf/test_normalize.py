"""Tests for A-normalization (paper Section 2)."""

import pytest

from repro.anf import is_anf, normalize, validate_anf
from repro.interp import run_direct
from repro.lang.errors import SyntaxValidationError
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.lang.syntax import free_variables, has_unique_binders


class TestPaperExample:
    def test_section2_example(self):
        """(f (let (x 1) (g x))) becomes the let chain of the paper."""
        term = normalize(parse("(f (let (x 1) (g x)))"))
        assert pretty_flat(term) == (
            "(let (x 1) (let (t%1 (g x)) (let (t (f t%1)) t)))"
        )

    def test_footnote2_reordering(self):
        """(add1 (let (x V) 0)) re-orders to evaluate the binding first."""
        term = normalize(parse("(add1 (let (x 5) 0))"))
        assert pretty_flat(term) == "(let (x 5) (let (t (add1 0)) t))"


class TestGrammar:
    @pytest.mark.parametrize(
        "source",
        [
            "42",
            "x",
            "(f x)",
            "((f x) (g y))",
            "(let (x (f 1)) (let (y (g x)) (+ x y)))",
            "(if0 (f 1) (g 2) (h 3))",
            "(lambda (x) (f (g x)))",
            "(add1 (if0 (g 2) ((lambda (y) (+ y 1)) 5) 7))",
            "(let (d (loop)) d)",
            "(* (+ 1 2) (- 3 4))",
            "(let (x (let (y 1) (let (z 2) (+ y z)))) x)",
        ],
    )
    def test_normalize_produces_anf(self, source):
        result = normalize(parse(source))
        assert is_anf(result)
        validate_anf(result)

    def test_result_has_unique_binders(self):
        result = normalize(parse("((lambda (x) x) (lambda (x) x))"))
        assert has_unique_binders(result)

    def test_preserves_free_variables(self):
        term = parse("(f (let (x (g 1)) (h x)))")
        assert free_variables(normalize(term)) == {"f", "g", "h"}

    def test_idempotent_on_anf(self):
        term = normalize(parse("(f (g 1))"))
        assert normalize(term) == term


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(add1 (add1 0))", 2),
            ("(sub1 (+ 2 3))", 4),
            ("((lambda (x) (* x x)) (+ 1 2))", 9),
            ("(if0 (sub1 1) 10 20)", 10),
            ("(if0 (add1 0) 10 20)", 20),
            ("(let (f (lambda (x) (add1 x))) (f (f (f 0))))", 3),
            ("(add1 (let (x 1) (let (y 2) (+ x y))))", 4),
            ("(if0 ((lambda (x) x) 0) (+ 1 2) (loop))", 3),
            ("((lambda (f) ((f 1) 2)) (lambda (a) (lambda (b) (- a b))))", -1),
        ],
    )
    def test_value_preserved(self, source, expected):
        result = run_direct(normalize(parse(source)))
        assert result.value == expected


class TestValidator:
    def test_rejects_unnamed_application(self):
        with pytest.raises(SyntaxValidationError):
            validate_anf(parse("(f (g 1))"))

    def test_rejects_non_value_test(self):
        with pytest.raises(SyntaxValidationError):
            validate_anf(parse("(let (x (if0 (f 1) 2 3)) x)"))

    def test_rejects_duplicate_binders(self):
        with pytest.raises(SyntaxValidationError):
            validate_anf(parse("(let (x 1) (let (x 2) x))"))

    def test_rejects_bare_if0(self):
        # if0 may only appear as a let right-hand side
        assert not is_anf(parse("(if0 x 1 2)"))

    def test_accepts_lambda_with_anf_body(self):
        validate_anf(parse("(lambda (x) (let (y (add1 x)) y))"))

    def test_rejects_lambda_with_non_anf_body(self):
        assert not is_anf(parse("(lambda (x) (f (g x)))"))

    def test_accepts_loop_rhs(self):
        validate_anf(parse("(let (d (loop)) d)"))
