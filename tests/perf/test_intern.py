"""Tests for `repro.perf.intern`: hash-consing and join memoization.

The load-bearing invariant: interning is *semantics-free*.  The
canonical representative of a store/value is structurally equal to
what went in, two objects intern to the same representative iff they
are equal, and the join memo caches exactly `AbsStore.join`.
"""

import pytest

from repro.domains import AbsStore, AbsVal, ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.perf import (
    DEFAULT_CONFIG,
    FULL_CONFIG,
    OFF_CONFIG,
    Interner,
    JoinMemo,
    PerfConfig,
)

LAT = Lattice(ConstPropDomain())


def store_of(**bindings: int) -> AbsStore:
    return AbsStore(
        LAT, {name: LAT.of_const(num) for name, num in bindings.items()}
    )


class TestPerfConfigResolve:
    def test_none_is_default(self):
        config = PerfConfig.resolve(None)
        assert config is DEFAULT_CONFIG
        assert config.intern and config.join_memo and not config.memo

    def test_true_is_full(self):
        assert PerfConfig.resolve(True) is FULL_CONFIG
        assert FULL_CONFIG.memo

    def test_false_is_off(self):
        config = PerfConfig.resolve(False)
        assert config is OFF_CONFIG
        assert not (config.intern or config.join_memo or config.memo)

    def test_config_passes_through(self):
        config = PerfConfig(intern=False, join_memo=False, memo=True)
        assert PerfConfig.resolve(config) is config

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            PerfConfig.resolve("yes please")


class TestInternerInvariant:
    def test_equal_stores_intern_to_one_object(self):
        interner = Interner()
        a = store_of(x=1, y=2)
        b = store_of(x=1, y=2)
        assert a is not b and a == b
        assert interner.store(a) is interner.store(b)

    def test_unequal_stores_stay_distinct(self):
        interner = Interner()
        a = interner.store(store_of(x=1))
        b = interner.store(store_of(x=2))
        assert a is not b

    def test_canonical_is_structurally_equal(self):
        interner = Interner()
        original = store_of(x=1, y=2)
        interner.store(store_of(x=1, y=2))
        canon = interner.store(original)
        assert canon == original
        assert dict(canon.items()) == dict(original.items())

    def test_iff_direction_over_a_population(self):
        # intern(a) is intern(b)  <=>  a == b, over a small population.
        interner = Interner()
        stores = [
            store_of(),
            store_of(x=1),
            store_of(x=1),
            store_of(x=2),
            store_of(x=1, y=2),
            store_of(y=2, x=1),
        ]
        for a in stores:
            for b in stores:
                same = interner.store(a) is interner.store(b)
                assert same == (a == b)

    def test_value_interning(self):
        interner = Interner()
        a = AbsVal(TOP, frozenset())
        b = AbsVal(TOP, frozenset())
        assert interner.value(a) is interner.value(b)
        assert interner.value(LAT.of_const(1)) is not interner.value(
            LAT.of_const(2)
        )

    def test_stats_count_hits_and_misses(self):
        interner = Interner()
        interner.store(store_of(x=1))
        interner.store(store_of(x=1))
        interner.store(store_of(x=2))
        assert interner.stats.intern_store_misses == 2
        assert interner.stats.intern_store_hits == 1
        assert interner.stats.bytes_saved > 0


class TestJoinStores:
    def test_join_matches_plain_join(self):
        interner = Interner()
        a = store_of(x=1)
        b = store_of(x=2, y=3)
        assert interner.join_stores(a, b) == a.join(b)

    def test_join_is_memoized(self):
        interner = Interner()
        a = store_of(x=1)
        b = store_of(x=2)
        first = interner.join_stores(a, b)
        # Same pair again, through fresh (equal) objects.
        second = interner.join_stores(store_of(x=1), store_of(x=2))
        assert first is second
        assert interner.stats.join_memo_hits == 1
        assert interner.stats.join_memo_misses == 1

    def test_join_is_commutative_in_the_memo(self):
        interner = Interner()
        a = store_of(x=1)
        b = store_of(x=2)
        assert interner.join_stores(a, b) is interner.join_stores(b, a)
        assert interner.stats.join_memo_misses == 1

    def test_identical_operands_short_circuit(self):
        interner = Interner()
        a = interner.store(store_of(x=1))
        assert interner.join_stores(a, a) is a
        assert interner.stats.join_memo_misses == 0


class TestJoinMemo:
    def test_caches_the_join_function(self):
        calls = []

        def join(a, b):
            calls.append((a, b))
            return dict(a, **b)

        memo = JoinMemo(join, canon_key=lambda d: tuple(sorted(d.items())))
        a, b = {"x": 1}, {"y": 2}
        first = memo(a, b)
        second = memo({"x": 1}, {"y": 2})
        assert first is second == {"x": 1, "y": 2}
        assert len(calls) == 1
        assert memo.hits == 1 and memo.misses == 1

    def test_none_passes_through(self):
        memo = JoinMemo(lambda a, b: (a or frozenset()) | (b or frozenset()))
        assert memo.canonical(None) is None
        assert memo(None, frozenset({1})) == frozenset({1})

    def test_idempotent_identity_shortcut(self):
        join_calls = []

        def join(a, b):
            join_calls.append(1)
            return a | b

        memo = JoinMemo(join, canon_key=frozenset)
        a = {1, 2}
        canon = memo.canonical(a)
        assert memo(canon, canon) is canon
        assert not join_calls
