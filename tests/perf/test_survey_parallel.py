"""Parallel surveys must aggregate to exactly the serial result.

The `--jobs` fan-out ships picklable `SurveyRow` records back and
folds them in input order, so every counter and visit total matches
the serial run field for field.
"""

from dataclasses import fields

from repro.survey import (
    SurveyResult,
    survey_corpus,
    survey_random,
    survey_random_open,
)


def assert_results_identical(a: SurveyResult, b: SurveyResult) -> None:
    for f in fields(SurveyResult):
        assert getattr(a, f.name) == getattr(b, f.name), f.name


def test_survey_corpus_parallel_matches_serial():
    serial = survey_corpus(budget=10_000, jobs=1)
    parallel = survey_corpus(budget=10_000, jobs=2)
    assert_results_identical(serial, parallel)
    assert serial.count > 0


def test_survey_random_parallel_matches_serial():
    serial = survey_random(count=8, depth=3, jobs=1)
    parallel = survey_random(count=8, depth=3, jobs=3)
    assert_results_identical(serial, parallel)
    assert serial.count == 8


def test_survey_random_open_parallel_matches_serial():
    serial = survey_random_open(count=8, depth=3, jobs=1)
    parallel = survey_random_open(count=8, depth=3, jobs=2)
    assert_results_identical(serial, parallel)


def test_jobs_zero_uses_all_cores():
    # jobs=0 means "one worker per CPU"; still the same aggregate.
    serial = survey_random_open(count=4, depth=3, jobs=None)
    parallel = survey_random_open(count=4, depth=3, jobs=0)
    assert_results_identical(serial, parallel)
