"""The persistent warm-once worker pool (`repro.perf.pool`).

The contract under test: `PersistentPool.map` is a drop-in for
``[fn(x) for x in items]`` — same order, same values, ``None``
included — and stays that way when workers are killed mid-batch
(respawn + chunk redispatch), fail with exceptions, or are handed an
unpicklable function.  Shutdown must drain cleanly and be idempotent.
"""

import os
import signal
import time

import pytest

from repro.perf.batch import parallel_map
from repro.perf.pool import (
    MAX_CHUNK_RETRIES,
    PersistentPool,
    WorkerCrashed,
    get_pool,
    shutdown_pools,
    warm_analysis_caches,
)


# -- module-level worker functions (must be picklable) -----------------


def square(x):
    return x * x


def none_for_odd(x):
    return None if x % 2 else x


def crash_once(args):
    """Kill the executing worker (SIGKILL, mid-chunk) the first time
    this marker file is claimed; compute normally afterwards."""
    x, marker = args
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
    except FileExistsError:
        return x * 10
    os.kill(os.getpid(), signal.SIGKILL)


def crash_always(x):
    os.kill(os.getpid(), signal.SIGKILL)


def raise_value_error(x):
    raise ValueError(f"bad item {x}")


def slow_identity(x):
    time.sleep(0.05)
    return x


@pytest.fixture()
def pool():
    p = PersistentPool(2)
    yield p
    p.shutdown(timeout=10)


class TestMapSemantics:
    def test_map_matches_serial_comprehension(self, pool):
        items = list(range(37))
        assert pool.map(square, items) == [square(x) for x in items]

    def test_none_results_survive(self, pool):
        # `None` is a real row (survey uses it for budget-exceeded
        # programs); the pool must not drop or reorder it.
        items = list(range(11))
        assert pool.map(none_for_odd, items) == [
            none_for_odd(x) for x in items
        ]

    def test_order_preserved_across_chunks(self, pool):
        # chunksize=1 maximizes interleaving between the two workers;
        # the reassembled result must still be in input order.
        items = list(range(24))
        assert pool.map(square, items, chunksize=1) == [
            x * x for x in items
        ]

    def test_empty_input(self, pool):
        assert pool.map(square, []) == []

    def test_workers_persist_across_maps(self, pool):
        before = set(pool.worker_pids)
        for _ in range(3):
            pool.map(square, list(range(8)))
        assert set(pool.worker_pids) == before
        assert pool.maps_completed == 3
        assert pool.respawns == 0

    def test_unpicklable_fn_fails_fast(self, pool):
        with pytest.raises(Exception):
            pool.map(lambda x: x, [1, 2, 3])
        # the pool survives the failed map
        assert pool.map(square, [2]) == [4]

    def test_worker_exception_propagates(self, pool):
        with pytest.raises(ValueError, match="bad item"):
            pool.map(raise_value_error, list(range(4)))
        assert pool.map(square, [3]) == [9]


class TestCrashRecovery:
    def test_sigkill_mid_batch_heals_and_completes(self, pool, tmp_path):
        marker = str(tmp_path / "crashed-once")
        items = [(x, marker) for x in range(12)]
        result = pool.map(crash_once, items, chunksize=1)
        # every row present, in order, despite one worker dying
        assert result == [x * 10 for x in range(12)]
        assert pool.respawns >= 1
        # the healed pool is fully alive and keeps working
        assert pool.snapshot()["alive"] == 2
        assert pool.map(square, [5]) == [25]

    def test_deterministic_crasher_raises_worker_crashed(self, pool):
        # a chunk that kills every worker it touches must surface
        # WorkerCrashed after the redispatch budget, not loop forever
        with pytest.raises(WorkerCrashed):
            pool.map(crash_always, [1], chunksize=1)
        assert pool.respawns >= MAX_CHUNK_RETRIES
        # healing refilled the pool
        assert pool.map(square, [6]) == [36]


class TestShutdown:
    def test_clean_shutdown_is_clean_and_idempotent(self):
        pool = PersistentPool(2)
        pool.map(square, list(range(4)))
        pids = list(pool.worker_pids)
        assert pool.shutdown(timeout=10) is True
        for pid in pids:
            # SIGTERM-free drain: workers exited on the sentinel
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert pool.shutdown(timeout=10) is True

    def test_map_after_shutdown_raises(self):
        pool = PersistentPool(1)
        pool.shutdown(timeout=10)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.map(square, [1])

    def test_get_pool_reuses_then_recreates(self):
        a = get_pool(2)
        assert get_pool(2) is a
        a.shutdown(timeout=10)
        b = get_pool(2)
        assert b is not a
        assert b.map(square, [7]) == [49]
        shutdown_pools()


class TestWarmup:
    def test_warm_is_idempotent_and_precompiles_plans(self):
        first = warm_analysis_caches()
        assert first["plans"] > 0
        assert first["pid"] == os.getpid()
        assert warm_analysis_caches() is first

    def test_fork_pool_reports_parent_warm_stats(self):
        pool = PersistentPool(1)
        try:
            if pool.start_method != "fork":
                pytest.skip("fork start method unavailable")
            snapshot = pool.snapshot()
            assert snapshot["warm"]["plans"] > 0
            assert snapshot["start_method"] == "fork"
        finally:
            pool.shutdown(timeout=10)


class TestParallelMapIntegration:
    def test_parallel_map_rides_the_persistent_pool(self):
        items = list(range(20))
        try:
            assert parallel_map(square, items, jobs=2) == [
                x * x for x in items
            ]
            # a second call reuses the same workers
            pool = get_pool(2)
            before = set(pool.worker_pids)
            parallel_map(square, items, jobs=2)
            assert set(get_pool(2).worker_pids) == before
        finally:
            shutdown_pools()

    def test_jobs_one_never_touches_the_pool(self):
        shutdown_pools()
        from repro.perf import pool as pool_module

        assert parallel_map(square, [1, 2, 3], jobs=1) == [1, 4, 9]
        assert not pool_module._POOLS
