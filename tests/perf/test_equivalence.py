"""Cached results must be bit-identical to uncached results.

The ISSUE's acceptance bar for the eval memo: over the whole corpus,
for every analyzer, running with ``cache=True`` (interning + join memo
+ eval memo) produces exactly the same answer — value and final store
— as running with every cache disabled.  Visit counts may drop (that
is the point); answers may not move.
"""

import pytest

from repro.analysis.polyvariant import analyze_polyvariant
from repro.api import THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import (
    PROGRAMS,
    call_site_chain,
    conditional_chain,
    top_conditional_chain,
)
from repro.domains import ConstPropDomain, Lattice

LAT = Lattice(ConstPropDomain())

#: Non-heavy corpus programs: the heavy ones exist to demonstrate the
#: syntactic-CPS blowup and are exercised at small k below instead.
CORPUS = [name for name, prog in PROGRAMS.items() if not prog.heavy]

#: Small members of the Section 6.2 blowup families (the syntactic-CPS
#: analyzer is exponential in k uncached, so k stays modest here; the
#: benchmark harness runs the large-k cached showcases).
FAMILIES = [
    conditional_chain(6),
    call_site_chain(3),
    top_conditional_chain(8),
]


def assert_reports_identical(cached, uncached):
    for name in ("direct", "semantic", "syntactic"):
        a = getattr(cached, name)
        b = getattr(uncached, name)
        assert a.answer == b.answer, f"{name} answer diverged"
        assert dict(a.answer.store.items()) == dict(b.answer.store.items())
    assert cached.direct_vs_syntactic is uncached.direct_vs_syntactic
    assert cached.semantic_vs_direct is uncached.semantic_vs_direct
    assert cached.semantic_vs_syntactic is uncached.semantic_vs_syntactic


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_cached_equals_uncached(name):
    program = PROGRAMS[name]
    uncached = run_comparison(program, loop_mode="top", cache=False, analyzers=THREE_WAY_ANALYZERS)
    cached = run_comparison(program, loop_mode="top", cache=True, analyzers=THREE_WAY_ANALYZERS)
    assert_reports_identical(cached, uncached)


@pytest.mark.parametrize(
    "program", FAMILIES, ids=[p.name for p in FAMILIES]
)
def test_families_cached_equals_uncached(program):
    uncached = run_comparison(program, cache=False, analyzers=THREE_WAY_ANALYZERS)
    cached = run_comparison(program, cache=True, analyzers=THREE_WAY_ANALYZERS)
    assert_reports_identical(cached, uncached)
    # The blowup families are where the memo actually earns its keep.
    if program.name.startswith("top-conditional-chain"):
        assert (
            cached.semantic.stats.visits < uncached.semantic.stats.visits
        )


@pytest.mark.parametrize("name", ["factorial", "even-odd", "church-pairs"])
@pytest.mark.parametrize("k", [0, 1])
def test_polyvariant_cached_equals_uncached(name, k):
    program = PROGRAMS[name]
    initial = program.initial_for(LAT)
    uncached = analyze_polyvariant(
        program.term, k=k, initial=initial, cache=False
    )
    cached = analyze_polyvariant(
        program.term, k=k, initial=initial, cache=True
    )
    assert cached.value == uncached.value
    collapsed_c = cached.collapse()
    collapsed_u = uncached.collapse()
    assert collapsed_c.answer == collapsed_u.answer
    assert dict(collapsed_c.answer.store.items()) == dict(
        collapsed_u.answer.store.items()
    )


def test_memo_collapses_top_conditional_chain():
    """The headline perf claim, asserted functionally: the 2^k
    duplicated paths of ``top_conditional_chain`` carry identical
    stores, so the eval memo collapses the semantic-CPS run from
    exponential to linear visits."""
    program = top_conditional_chain(12)
    uncached = run_comparison(program, cache=False, analyzers=THREE_WAY_ANALYZERS)
    cached = run_comparison(program, cache=True, analyzers=THREE_WAY_ANALYZERS)
    assert_reports_identical(cached, uncached)
    assert uncached.semantic.stats.visits > 2**12
    assert cached.semantic.stats.visits < 100
