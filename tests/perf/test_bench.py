"""Tests for the `repro.perf.bench` regression-benchmark schema.

The CI smoke job trusts `validate_bench` to fail loudly on a
malformed payload or a cached/uncached divergence — so the validator
itself gets tested against hand-broken payloads, and one real
``--quick``-sized workload goes through `run_bench` end to end.
"""

import copy
import json

import pytest

from repro.perf.bench import (
    SCHEMA,
    _engine_row,
    _incremental_row,
    _plan_opt_row,
    _plan_persist_row,
    _workload,
    summarize,
    validate_bench,
    validate_bench_file,
)


def make_payload() -> dict:
    """A minimal well-formed bench payload (one real tiny workload)."""
    from repro.analysis.engine import SemanticCpsPlanAnalyzer
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer
    from repro.corpus import PROGRAMS, top_conditional_chain
    from repro.domains import ConstPropDomain, Lattice
    from repro.machine.absplan import compile_anf_plan

    program = PROGRAMS["constants"]
    initial = program.initial_for(Lattice(ConstPropDomain()))
    entry = _workload(
        "corpus/constants",
        "semantic-cps",
        lambda cache: SemanticCpsAnalyzer(
            program.term, initial=initial, cache=cache
        ),
        repeat=2,
    )
    engine_entry = _engine_row(
        "engine/constants",
        "semantic-cps",
        lambda: SemanticCpsAnalyzer(program.term, initial=initial),
        lambda: SemanticCpsPlanAnalyzer(program.term, initial=initial),
        lambda: compile_anf_plan(program.term),
        repeat=2,
    )
    pushdown_entry = {
        "name": "pushdown/constants",
        "verdict": "equal",
        "direct": {"wall_s": 0.001, "visits": 10},
        "pushdown": {
            "wall_s": 0.001,
            "visits": 10,
            "returns_analyzed": 0,
            "loop_cuts": 0,
        },
        "work_ratio": 1.0,
        "noise_exempt": False,
    }
    tcc = top_conditional_chain(4)
    incr_entry = _incremental_row(
        f"incremental/{tcc.name}",
        tcc.term,
        top_conditional_chain(4, p_addend=3).term,
        tcc.initial_for(Lattice(ConstPropDomain())),
        repeat=2,
    )
    persist_entry = _plan_persist_row(
        "plan_persist/constants", program.term, repeat=2
    )
    plan_opt_entry = _plan_opt_row(
        "plan_opt/constants",
        "semantic-cps",
        lambda tier: SemanticCpsPlanAnalyzer(
            program.term, initial=initial, plan_tier=tier
        ),
        repeat=2,
    )
    return {
        "schema": SCHEMA,
        "quick": True,
        "repeat": 2,
        "engine_mode": "tree",
        "generated_at": "2026-01-01T00:00:00Z",
        "meta": {"python": "3.11.0", "platform": "test"},
        "workloads": [entry],
        "engine": [engine_entry],
        "pushdown": [pushdown_entry],
        "parallel": {
            "jobs": 4,
            "cpus": 4,
            "required_speedup": 2.0,
            "enforced": True,
            "pool": {"jobs": 4, "respawns": 0},
            "populations": [
                {
                    "population": "random-open",
                    "count": 1,
                    "depth": 3,
                    "serial_s": 1.0,
                    "parallel_s": 0.4,
                    "speedup": 2.5,
                    "noise_exempt": False,
                    "matches": True,
                }
            ],
        },
        "incremental": [incr_entry],
        "plan_persist": {
            "cfg": "plan/1/2/1",
            "rows": [persist_entry],
            "total": {
                "compile_s": (
                    persist_entry["anf"]["compile_s"]
                    + persist_entry["cps"]["compile_s"]
                ),
                "load_s": (
                    persist_entry["anf"]["load_s"]
                    + persist_entry["cps"]["load_s"]
                ),
                "speedup": persist_entry["speedup"],
                "noise_exempt": persist_entry["noise_exempt"],
            },
        },
        "plan_opt": [plan_opt_entry],
    }


class TestValidate:
    def test_well_formed_passes(self):
        validate_bench(make_payload())

    def test_payload_must_be_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bench([1, 2, 3])

    def test_missing_meta_rejected(self):
        payload = make_payload()
        del payload["meta"]
        with pytest.raises(ValueError, match="meta"):
            validate_bench(payload)

    def test_meta_needs_python_and_platform(self):
        payload = make_payload()
        del payload["meta"]["python"]
        with pytest.raises(ValueError, match="python"):
            validate_bench(payload)

    def test_generated_at_is_caller_stamped(self):
        assert make_payload()["generated_at"] == "2026-01-01T00:00:00Z"

    def test_wrong_schema_rejected(self):
        payload = make_payload()
        payload["schema"] = "repro.perf.bench/0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench(payload)

    def test_empty_workloads_rejected(self):
        payload = make_payload()
        payload["workloads"] = []
        with pytest.raises(ValueError, match="workload list"):
            validate_bench(payload)

    def test_missing_cached_field_rejected(self):
        payload = make_payload()
        del payload["workloads"][0]["cached"]["eval_cache_hits"]
        with pytest.raises(ValueError, match="eval_cache_hits"):
            validate_bench(payload)

    def test_divergence_rejected(self):
        payload = make_payload()
        payload["workloads"][0]["answers_equal"] = False
        with pytest.raises(ValueError, match="diverged"):
            validate_bench(payload)

    def test_missing_parallel_rejected(self):
        payload = make_payload()
        del payload["parallel"]
        with pytest.raises(ValueError, match="parallel"):
            validate_bench(payload)

    def test_parallel_mismatch_rejected(self):
        # Identity is enforced even where the speedup floor is not.
        payload = make_payload()
        payload["parallel"]["enforced"] = False
        payload["parallel"]["populations"][0]["matches"] = False
        with pytest.raises(ValueError, match="diverged from serial"):
            validate_bench(payload)

    def test_parallel_slow_speedup_rejected_when_enforced(self):
        payload = make_payload()
        payload["parallel"]["populations"][0]["speedup"] = 1.0
        with pytest.raises(ValueError, match="below the"):
            validate_bench(payload)

    def test_parallel_slow_speedup_tolerated_on_one_cpu(self):
        # The honest gate: a 1-CPU box cannot deliver 2x, so the
        # payload records enforced=False and the validator lets a
        # sub-floor ratio through (identity still required).
        payload = make_payload()
        payload["parallel"]["cpus"] = 1
        payload["parallel"]["enforced"] = False
        payload["parallel"]["populations"][0]["speedup"] = 0.9
        validate_bench(payload)

    def test_parallel_noise_exempt_skips_speedup_gate(self):
        payload = make_payload()
        entry = payload["parallel"]["populations"][0]
        entry["serial_s"] = 0.004
        entry["parallel_s"] = 0.009
        entry["speedup"] = 0.44
        entry["noise_exempt"] = True
        validate_bench(payload)

    def test_workloads_carry_noise_exempt_flag(self):
        payload = make_payload()
        assert isinstance(payload["workloads"][0]["noise_exempt"], bool)
        assert isinstance(payload["engine"][0]["noise_exempt"], bool)
        del payload["workloads"][0]["noise_exempt"]
        with pytest.raises(ValueError, match="noise_exempt"):
            validate_bench(payload)

    def test_missing_engine_section_rejected(self):
        payload = make_payload()
        del payload["engine"]
        with pytest.raises(ValueError, match="engine section"):
            validate_bench(payload)

    def test_engine_divergence_rejected(self):
        payload = make_payload()
        payload["engine"][0]["answers_equal"] = False
        with pytest.raises(ValueError, match="plan answer diverged"):
            validate_bench(payload)

    def test_engine_missing_plan_field_rejected(self):
        payload = make_payload()
        del payload["engine"][0]["plan"]["compile_s"]
        with pytest.raises(ValueError, match="compile_s"):
            validate_bench(payload)

    def test_missing_pushdown_section_rejected(self):
        payload = make_payload()
        del payload["pushdown"]
        with pytest.raises(ValueError, match="pushdown section"):
            validate_bench(payload)

    def test_pushdown_precision_loss_rejected(self):
        # The whole-point gate: summaries may tie or win, never lose.
        payload = make_payload()
        payload["pushdown"][0]["verdict"] = "right-more-precise"
        with pytest.raises(ValueError, match="less precise"):
            validate_bench(payload)

    def test_pushdown_incomparable_rejected(self):
        payload = make_payload()
        payload["pushdown"][0]["verdict"] = "incomparable"
        with pytest.raises(ValueError, match="less precise"):
            validate_bench(payload)

    def test_pushdown_missing_run_field_rejected(self):
        payload = make_payload()
        del payload["pushdown"][0]["direct"]["visits"]
        with pytest.raises(ValueError, match="visits"):
            validate_bench(payload)

    def test_missing_incremental_section_rejected(self):
        payload = make_payload()
        del payload["incremental"]
        with pytest.raises(ValueError, match="incremental section"):
            validate_bench(payload)

    def test_incremental_divergence_rejected(self):
        payload = make_payload()
        payload["incremental"][0]["answers_equal"] = False
        with pytest.raises(ValueError, match="warm answer"):
            validate_bench(payload)

    def test_incremental_missing_store_hits_rejected(self):
        payload = make_payload()
        del payload["incremental"][0]["edited"]["store_hits"]
        with pytest.raises(ValueError, match="store_hits"):
            validate_bench(payload)

    def test_incremental_missing_dirty_paths_rejected(self):
        payload = make_payload()
        del payload["incremental"][0]["edited"]["dirty_paths"]
        with pytest.raises(ValueError, match="dirty_paths"):
            validate_bench(payload)

    def test_incremental_edit_slower_than_cold_rejected(self):
        payload = make_payload()
        entry = payload["incremental"][0]
        entry["noise_exempt"] = False
        entry["cold"]["wall_s"] = 0.010
        entry["edited"]["wall_s"] = 0.020
        with pytest.raises(ValueError, match="did not beat"):
            validate_bench(payload)

    def test_incremental_noise_exempt_skips_speedup_gate(self):
        payload = make_payload()
        entry = payload["incremental"][0]
        entry["noise_exempt"] = True
        entry["cold"]["wall_s"] = 0.0001
        entry["edited"]["wall_s"] = 0.0002
        validate_bench(payload)

    def test_missing_plan_persist_section_rejected(self):
        payload = make_payload()
        del payload["plan_persist"]
        with pytest.raises(ValueError, match="plan_persist"):
            validate_bench(payload)

    def test_plan_persist_roundtrip_divergence_rejected(self):
        # Field identity of the loaded plan is physics-independent.
        payload = make_payload()
        payload["plan_persist"]["rows"][0]["plans_equal"] = False
        with pytest.raises(ValueError, match="loaded plan"):
            validate_bench(payload)

    def test_plan_persist_slow_load_rejected(self):
        payload = make_payload()
        entry = payload["plan_persist"]["rows"][0]
        entry["anf"]["compile_s"] = 0.010
        entry["anf"]["load_s"] = 0.020
        with pytest.raises(ValueError, match="did not beat"):
            validate_bench(payload)

    def test_plan_persist_noise_floor_skips_per_kind_gate(self):
        # A sub-millisecond compile is too small to gate a ratio on.
        payload = make_payload()
        entry = payload["plan_persist"]["rows"][0]
        entry["anf"]["compile_s"] = 0.0001
        entry["anf"]["load_s"] = 0.0002
        validate_bench(payload)

    def test_plan_persist_slow_total_rejected(self):
        payload = make_payload()
        total = payload["plan_persist"]["total"]
        total["noise_exempt"] = False
        total["compile_s"] = 0.010
        total["load_s"] = 0.020
        with pytest.raises(ValueError, match="cold compiles"):
            validate_bench(payload)

    def test_missing_plan_opt_section_rejected(self):
        payload = make_payload()
        del payload["plan_opt"]
        with pytest.raises(ValueError, match="plan_opt"):
            validate_bench(payload)

    def test_plan_opt_divergence_rejected(self):
        # The optimizer's bit-identity contract: always enforced,
        # noise floor or not.
        payload = make_payload()
        payload["plan_opt"][0]["answers_equal"] = False
        with pytest.raises(ValueError, match="diverged from the baseline"):
            validate_bench(payload)

    def test_plan_opt_missing_run_field_rejected(self):
        payload = make_payload()
        del payload["plan_opt"][0]["opt"]["run_s"]
        with pytest.raises(ValueError, match="run_s"):
            validate_bench(payload)


class TestRoundTrip:
    def test_payload_is_json_round_trippable(self, tmp_path):
        payload = make_payload()
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(payload))
        loaded = validate_bench_file(str(path))
        assert loaded == json.loads(json.dumps(payload))

    def test_validate_file_rejects_broken_file(self, tmp_path):
        payload = make_payload()
        payload["workloads"][0]["answers_equal"] = False
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            validate_bench_file(str(path))

    def test_summarize_mentions_every_workload(self):
        payload = make_payload()
        text = summarize(payload)
        assert "corpus/constants" in text
        assert "engine/constants" in text
        assert "pushdown/constants" in text
        assert "parallel random-open" in text
        assert "incremental/top-conditional-chain-4" in text
        assert "plan_persist/constants" in text
        assert "plan_opt/constants" in text

    def test_workload_answers_equal(self):
        # The real cached-vs-uncached comparison inside _workload.
        entry = make_payload()["workloads"][0]
        assert entry["answers_equal"] is True
        assert entry["uncached"]["visits"] >= entry["cached"]["visits"]

    def test_copy_is_safe(self):
        # validate_bench must not mutate its argument.
        payload = make_payload()
        snapshot = copy.deepcopy(payload)
        validate_bench(payload)
        assert payload == snapshot
