"""Tests for `repro.perf.batch`: the parallel map primitive.

`parallel_map` must be a drop-in for the serial ``[fn(x) for x in
items]`` — same results, same order — whatever ``jobs`` says.
"""

import os

import pytest

from repro.perf import effective_jobs, parallel_map


def _double(n: int) -> int:
    """Module-level so multiprocessing can pickle it."""
    return 2 * n


def _classify(n: int) -> "int | None":
    return None if n % 3 == 0 else n


class TestEffectiveJobs:
    def test_none_means_serial(self):
        assert effective_jobs(None, 10) == 1

    def test_zero_means_cpu_count(self):
        assert effective_jobs(0, 1_000) == (os.cpu_count() or 1)

    def test_clamped_to_item_count(self):
        assert effective_jobs(8, 3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_jobs(-1, 10)

    def test_one_item_is_serial(self):
        assert effective_jobs(8, 1) == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_double, [1, 2, 3], jobs=None) == [2, 4, 6]
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_parallel_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(_double, items, jobs=1)
        parallel = parallel_map(_double, items, jobs=2)
        assert parallel == serial == [2 * n for n in items]

    def test_order_is_preserved(self):
        items = list(range(40, 0, -1))
        assert parallel_map(_double, items, jobs=3) == [
            2 * n for n in items
        ]

    def test_none_results_survive_the_boundary(self):
        items = list(range(12))
        assert parallel_map(_classify, items, jobs=2) == [
            _classify(n) for n in items
        ]

    def test_empty_input(self):
        assert parallel_map(_double, [], jobs=4) == []
