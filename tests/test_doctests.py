"""Run the doctests embedded in the library's docstrings."""

import doctest
import importlib

import pytest

# fetched via importlib: several module names are shadowed by same-named
# functions re-exported in their package __init__ (e.g. repro.lang.pretty)
MODULE_NAMES = [
    "repro.lang.parser",
    "repro.lang.pretty",
    "repro.lang.rename",
    "repro.anf.normalize",
    "repro.anf.splice",
    "repro.domains.constprop",
    "repro.analysis.direct",
    "repro.cps.transform",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
