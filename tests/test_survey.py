"""Tests for the population survey tooling."""

import pytest

from repro import Precision
from repro.analysis import BudgetExceeded, analyze_syntactic_cps
from repro.corpus import THEOREM_51_WITNESS, THEOREM_52_CONDITIONAL, call_site_chain
from repro.cps import cps_transform
from repro.domains import ConstPropDomain
from repro.survey import (
    SurveyResult,
    survey_programs,
    survey_random,
    survey_random_open,
)


class TestBudget:
    def test_budget_exceeded_raises(self):
        program = call_site_chain(4)  # ~70k visits unbounded
        from repro.analysis.delta import delta_store
        from repro.domains import AbsStore, Lattice

        lattice = Lattice(ConstPropDomain())
        initial = dict(
            delta_store(
                AbsStore(lattice, program.initial_for(lattice))
            ).items()
        )
        with pytest.raises(BudgetExceeded):
            analyze_syntactic_cps(
                cps_transform(program.term),
                ConstPropDomain(),
                initial=initial,
                max_visits=1_000,
            )

    def test_budget_error_carries_limit(self):
        error = BudgetExceeded(123)
        assert error.budget == 123
        assert "123" in str(error)

    def test_survey_counts_blowups(self):
        result = survey_programs(
            [call_site_chain(4)], "blowup", budget=1_000
        )
        assert result.budget_exceeded == 1
        assert result.count == 0


class TestSurveyAggregation:
    def test_witnesses_produce_both_directions(self):
        result = survey_programs(
            [THEOREM_51_WITNESS, THEOREM_52_CONDITIONAL], "witnesses"
        )
        assert result.count == 2
        assert (
            result.direct_vs_syntactic[Precision.LEFT_MORE_PRECISE.value]
            == 1
        )
        assert (
            result.direct_vs_syntactic[Precision.RIGHT_MORE_PRECISE.value]
            == 1
        )

    def test_verdict_share(self):
        result = survey_programs([THEOREM_51_WITNESS], "one")
        share = result.verdict_share(
            result.direct_vs_syntactic, Precision.LEFT_MORE_PRECISE
        )
        assert share == 1.0

    def test_empty_share_is_zero(self):
        empty = SurveyResult("nothing")
        assert (
            empty.verdict_share(
                empty.direct_vs_syntactic, Precision.EQUAL
            )
            == 0.0
        )

    def test_summary_mentions_population(self):
        result = survey_programs([THEOREM_51_WITNESS], "mypop")
        assert "mypop" in result.summary()


class TestPopulations:
    def test_closed_random_programs_always_agree(self):
        result = survey_random(count=30, depth=3)
        assert result.count == 30
        assert result.direct_vs_syntactic == {
            Precision.EQUAL.value: 30
        }

    def test_open_random_programs_sometimes_differ(self):
        # over a decent sample the duplication gain appears; this is
        # the empirical face of Theorem 5.2 (seeded, so deterministic)
        result = survey_random_open(count=200, depth=4)
        assert result.count == 200
        gains = result.direct_vs_syntactic[
            Precision.RIGHT_MORE_PRECISE.value
        ]
        assert gains >= 1
        # and Theorem 5.4/5.5 inequality directions hold population-wide
        assert (
            result.semantic_vs_direct[Precision.RIGHT_MORE_PRECISE.value]
            == 0
        )
        assert (
            result.semantic_vs_syntactic[
                Precision.RIGHT_MORE_PRECISE.value
            ]
            == 0
        )
