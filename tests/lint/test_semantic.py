"""Semantic passes: lint yield as an analyzer-precision observation.

The headline assertion is the paper's Theorem 5.2 rephrased as tool
output: on the conditional witness the CPS analyzers prove constants
the direct analysis cannot, so L002/L003 fire under them and stay
silent under `direct`.
"""

from repro.corpus.programs import PROGRAMS
from repro.lint import run_lints


def _codes(program_name, analyzer, **kwargs):
    report = run_lints(
        PROGRAMS[program_name], analyzer=analyzer, **kwargs
    )
    assert report.analysis_error is None
    return report


class TestAnalyzerDependence:
    def test_theorem_52_conditional_direct_is_blind(self):
        report = _codes("theorem-5.2-conditional", "direct")
        assert report.semantic_codes == ()

    def test_theorem_52_conditional_cps_analyzers_fire(self):
        for analyzer in ("semantic-cps", "syntactic-cps"):
            report = _codes("theorem-5.2-conditional", analyzer)
            assert report.semantic_codes == ("L002", "L003")
            # a2 = (if0 a1 2 3) folds because the CPS analysis proves
            # a1 = 1, the paper's Theorem 5.2 example
            assert "a2" in {
                d.subject for d in report.by_code("L003")
            }

    def test_higher_order_syntactic_cps_loses_findings(self):
        # the reverse direction (Theorem 5.1 flavour): false returns
        # make the syntactic-CPS analyzer *miss* lints direct proves
        assert _codes("higher-order", "direct").semantic_codes == (
            "L002",
            "L003",
        )
        assert _codes("higher-order", "syntactic-cps").semantic_codes == ()


class TestIndividualRules:
    def test_l001_unreachable_branch_on_branchy(self):
        report = _codes("branchy", "direct")
        fired = report.by_code("L001")
        assert fired and all(d.severity == "warning" for d in fired)
        assert all(d.analyzer == "direct" for d in fired)

    def test_l002_requires_analysis_facts(self):
        # `constants` bindings are chained: plain deadcode removes
        # nothing, folding first makes the chain removable
        report = _codes("constants", "direct")
        assert report.by_code("L002")

    def test_l003_reports_the_proven_literal(self):
        report = _codes("constants", "direct")
        messages = [d.message for d in report.by_code("L003")]
        assert any("always evaluates to" in m for m in messages)

    def test_l004_fires_on_loop_cut_programs(self):
        report = _codes("factorial", "direct")
        fired = report.by_code("L004")
        assert fired and all(d.severity == "info" for d in fired)

    def test_l004_labels_are_deduplicated(self):
        report = _codes("factorial", "direct")
        subjects = [d.subject for d in report.by_code("L004")]
        assert len(subjects) == len(set(subjects))

    def test_semantic_diagnostics_carry_analyzer(self):
        report = _codes("constants", "semantic-cps")
        assert all(
            d.analyzer == "semantic-cps"
            for d in report.diagnostics
            if d.semantic
        )
