"""The diagnostic vocabulary and the renderers."""

import json

from repro.lint.diagnostic import (
    Diagnostic,
    ERROR,
    FixIt,
    INFO,
    LintReport,
    Span,
    WARNING,
    severity_rank,
)
from repro.lint.render import render_diagnostic, render_json, render_text


def _diag(**overrides):
    base = dict(
        code="S105",
        rule="unused-let-binding",
        severity=WARNING,
        message="binding 'x' is never used",
        subject="x",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestDiagnostic:
    def test_severity_order(self):
        assert severity_rank(ERROR) < severity_rank(WARNING) < severity_rank(INFO)

    def test_semantic_flag_follows_code_family(self):
        assert _diag(code="L001").semantic
        assert not _diag(code="S100").semantic

    def test_as_dict_omits_absent_fields(self):
        view = _diag().as_dict()
        assert "span" not in view and "analyzer" not in view
        assert "fixit" not in view
        assert view["code"] == "S105"

    def test_as_dict_carries_span_and_fixit(self):
        view = _diag(
            span=Span(3, 7),
            fixit=FixIt("opt.deadcode", "remove it"),
            analyzer="direct",
        ).as_dict()
        assert view["span"] == {"line": 3, "column": 7}
        assert view["fixit"]["action"] == "opt.deadcode"
        assert view["analyzer"] == "direct"

    def test_sort_key_orders_most_severe_first(self):
        diagnostics = sorted(
            [
                _diag(code="L003", severity=INFO),
                _diag(code="S103", severity=ERROR),
                _diag(code="L001", severity=WARNING),
            ],
            key=Diagnostic.sort_key,
        )
        assert [d.severity for d in diagnostics] == [ERROR, WARNING, INFO]


class TestLintReport:
    def _report(self):
        return LintReport(
            program="p",
            analyzer="direct",
            diagnostics=(
                _diag(code="S103", severity=ERROR),
                _diag(code="L001", severity=WARNING, analyzer="direct"),
                _diag(code="L003", severity=INFO, analyzer="direct"),
            ),
        )

    def test_counts_and_errors(self):
        report = self._report()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert [d.code for d in report.errors] == ["S103"]

    def test_semantic_codes_sorted_distinct(self):
        assert self._report().semantic_codes == ("L001", "L003")

    def test_by_code(self):
        assert len(self._report().by_code("L001")) == 1

    def test_as_dict_shape(self):
        view = self._report().as_dict()
        assert view["program"] == "p"
        assert len(view["diagnostics"]) == 3
        assert "analysis_error" not in view
        assert "fixed_source" not in view


class TestRenderers:
    def test_text_line_carries_span_code_and_fix(self):
        report = LintReport(program="demo", analyzer="direct")
        line = render_diagnostic(
            report,
            _diag(span=Span(2, 5), fixit=FixIt("opt.deadcode", "drop")),
        )
        assert line.startswith("demo:2:5: warning[S105]:")
        assert line.endswith("(fix: opt.deadcode)")

    def test_text_summary_clean(self):
        text = render_text(LintReport(program="demo", analyzer="direct"))
        assert "demo: clean [analyzer=direct]" in text

    def test_text_summary_notes_analysis_error(self):
        text = render_text(
            LintReport(
                program="demo",
                analyzer="syntactic-cps",
                analysis_error="budget_exceeded",
            )
        )
        assert "semantic passes unavailable: budget_exceeded" in text

    def test_json_round_trips_and_ends_with_newline(self):
        report = LintReport(
            program="demo", analyzer="direct", diagnostics=(_diag(),)
        )
        blob = render_json(report)
        assert blob.endswith("\n")
        assert json.loads(blob) == report.as_dict()
