"""The run_lints driver and the `repro lint` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.corpus.programs import PROGRAMS
from repro.lang.errors import ParseError
from repro.lint import has_errors, run_lints
from repro.obs import Metrics, RecordingSink
from repro.serve.codes import CODES


class TestEngine:
    def test_source_input_gets_spans(self):
        report = run_lints("(let (dead 1) 2)", semantic=False)
        fired = report.by_code("S105")
        assert fired[0].span is not None

    def test_normalized_flag(self):
        assert run_lints("(add1 1)").normalized
        assert not run_lints("(let (x (add1 1)) x)").normalized

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            run_lints("(((")

    def test_unknown_analyzer_rejected(self):
        with pytest.raises(ValueError):
            run_lints("(let (x 1) x)", analyzer="magic")

    def test_budget_degrades_to_syntactic_findings(self):
        report = run_lints(
            PROGRAMS["ackermann"],
            analyzer="syntactic-cps",
            max_visits=2_000,
        )
        assert report.analysis_error == "budget_exceeded"
        assert report.semantic_codes == ()
        assert not has_errors(report)

    def test_fix_applies_all_fixits(self):
        report = run_lints(
            "(let (dead (+ 1 2)) (if0 0 (add1 4) 9))", fix=True
        )
        assert report.fixed_source is not None
        assert "dead" not in report.fixed_source
        assert "if0" not in report.fixed_source

    def test_metrics_counters(self):
        metrics = Metrics()
        report = run_lints(
            "(let (dead 1) 2)", semantic=False, metrics=metrics
        )
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["lint.runs"] == 1
        assert snapshot["lint.fired"] == len(report.diagnostics)
        assert snapshot["lint.fired.S105"] == 1

    def test_trace_carries_analysis_and_lint_events(self):
        sink = RecordingSink()
        run_lints(PROGRAMS["constants"], trace=sink)
        kinds = sink.counts()
        assert kinds.get("analysis.visit", 0) > 0
        assert kinds.get("lint.fired", 0) > 0

    def test_corpus_initial_suppresses_s102(self):
        # theorem-5.1 has free `f`, covered by its bundled assumptions
        report = run_lints(PROGRAMS["theorem-5.1"])
        assert not report.by_code("S102")


class TestCli:
    def test_lint_clean_exits_zero(self, capsys):
        assert main(["lint", "-e", "(let (x (f 1)) x)"]) == 0
        assert "S102" in capsys.readouterr().out

    def test_lint_error_exit_code(self, capsys):
        code = main(["lint", "-e", "((f 1) (g 2))"])
        assert code == CODES["lint_error"].exit_code == 14
        assert "S103" in capsys.readouterr().out

    def test_parse_error_exit_code(self, capsys):
        assert main(["lint", "-e", "((("]) == CODES["parse_error"].exit_code

    def test_json_format_parses(self, capsys):
        assert main(
            ["lint", "--corpus", "constants", "--format", "json"]
        ) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["program"] == "constants"
        assert body["analyzer"] == "direct"
        assert isinstance(body["diagnostics"], list)

    def test_all_json_is_an_array_over_the_corpus(self, capsys):
        assert main(
            [
                "lint", "--all", "--format", "json",
                "--syntactic-only",
            ]
        ) == 0
        body = json.loads(capsys.readouterr().out)
        assert {entry["program"] for entry in body} == set(PROGRAMS)

    def test_analyzer_choice_changes_findings(self, capsys):
        main(
            [
                "lint", "--corpus", "theorem-5.2-conditional",
                "--analyzer", "semantic-cps", "--format", "json",
            ]
        )
        semantic = json.loads(capsys.readouterr().out)
        main(
            [
                "lint", "--corpus", "theorem-5.2-conditional",
                "--analyzer", "direct", "--format", "json",
            ]
        )
        direct = json.loads(capsys.readouterr().out)
        sem_codes = {d["code"] for d in semantic["diagnostics"]}
        dir_codes = {d["code"] for d in direct["diagnostics"]}
        assert "L003" in sem_codes and "L003" not in dir_codes

    def test_fix_prints_fixed_program(self, capsys):
        assert main(["lint", "-e", "(let (dead 1) 2)", "--fix"]) == 0
        out = capsys.readouterr().out
        assert "fixed program:" in out

    def test_unknown_corpus_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "--corpus", "no-such-program"])

    def test_assume_feeds_analyzer_and_suppresses_s102(self, capsys):
        assert main(
            [
                "lint", "-e", "(let (a (add1 n)) a)",
                "--assume", "n=4", "--format", "json",
            ]
        ) == 0
        body = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in body["diagnostics"]]
        assert "S102" not in codes
        assert "L003" in codes  # a = 5 proven from the assumption
