"""Golden lint snapshots for every corpus program (ISSUE 4 satellite).

One JSON file per program under ``tests/lint/golden/`` holds the full
`LintReport` dicts of all three analyzers (``max_visits=60_000``,
``loop_mode="top"``).  The test fails on any drift — diagnostics,
messages, spans, or the JSON renderer itself (the stored bytes are the
renderer's own output, so a formatting change is also drift).

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.corpus.programs import PROGRAMS
from repro.lint import LINT_ANALYZERS, run_lints

GOLDEN_DIR = Path(__file__).parent / "golden"
MAX_VISITS = 60_000
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _snapshot(name):
    return {
        analyzer: run_lints(
            PROGRAMS[name], analyzer=analyzer, max_visits=MAX_VISITS
        ).as_dict()
        for analyzer in LINT_ANALYZERS
    }


def _render(snapshot):
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_lint_report_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    snapshot = _snapshot(name)
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(_render(snapshot))
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    stored = path.read_text()
    assert json.loads(stored) == snapshot, (
        f"{name}: lint output drifted from the golden snapshot; if the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )
    # Renderer drift: the stored bytes are exactly what the current
    # serializer emits for the same payload.
    assert stored == _render(snapshot)


def test_no_orphan_golden_files():
    if REGEN:
        pytest.skip("regenerating")
    stored = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert stored == set(PROGRAMS)
