"""Syntactic passes and the violation-collecting validator refactor."""

import pytest

from repro.anf.validate import anf_violations, validate_anf
from repro.cps.transform import TOP_KVAR, cps_transform
from repro.cps.validate import cps_violations, validate_cps
from repro.cps.ast import CVar, KApp
from repro.lang.ast import App, If0, Lam, Let, Loop, Num, Var
from repro.lang.errors import SyntaxValidationError
from repro.lang.parser import parse
from repro.lint.diagnostic import ERROR, WARNING
from repro.lint.spans import binder_spans
from repro.lint.syntactic import iter_let_bindings, syntactic_lints


class TestAnfViolations:
    def test_valid_program_is_clean(self):
        term = parse("(let (x 1) x)")
        assert anf_violations(term) == []

    def test_non_unique_binders_reported_once_per_name(self):
        term = Let("x", Num(1), Let("x", Num(2), Var("x")))
        rules = [v.rule for v in anf_violations(term)]
        assert rules.count("non-unique-binders") == 1

    def test_not_in_anf_points_at_binder(self):
        term = Let("y", App(App(Var("f"), Num(1)), Num(2)), Var("y"))
        violations = anf_violations(term)
        assert any(
            v.rule == "not-in-anf" and v.subject == "y" for v in violations
        )

    def test_shadowing_free_variable_reported(self):
        # `g` is used free in the rhs, then rebound below.
        term = Let("a", App(Var("g"), Num(1)), Let("g", Num(2), Var("a")))
        violations = anf_violations(term)
        assert any(
            v.rule == "binder-shadows-free" and v.subject == "g"
            for v in violations
        )

    def test_validate_anf_raises_with_rule_and_subject(self):
        term = Let("y", If0(App(Var("f"), Num(1)), Num(1), Num(2)), Var("y"))
        with pytest.raises(SyntaxValidationError) as excinfo:
            validate_anf(term)
        assert excinfo.value.rule == "not-in-anf"
        assert excinfo.value.subject == "y"

    def test_validate_anf_accepts_valid(self):
        validate_anf(parse("(let (x (+ 1 2)) x)"))


class TestCpsViolations:
    def test_image_of_transform_is_clean(self):
        image = cps_transform(parse("(let (x (f 1)) x)"))
        assert cps_violations(image, frozenset({TOP_KVAR})) == []

    def test_unbound_continuation_collected(self):
        violations = cps_violations(KApp("k/nope", CVar("x")))
        assert [v.rule for v in violations] == ["unbound-continuation"]
        assert violations[0].subject == "k/nope"

    def test_kvar_namespace_violation_collected(self):
        violations = cps_violations(
            KApp(TOP_KVAR, CVar("k/evil")), frozenset({TOP_KVAR})
        )
        assert [v.rule for v in violations] == ["kvar-namespace"]

    def test_validate_cps_raises_first_violation(self):
        with pytest.raises(SyntaxValidationError) as excinfo:
            validate_cps(KApp("k/nope", CVar("x")))
        assert excinfo.value.rule == "unbound-continuation"


class TestIterLetBindings:
    def test_preorder_covers_nested_positions(self):
        term = parse(
            "(let (f (lambda (x) (let (a 1) a)))"
            " (let (t (if0 0 (let (b 2) b) 3)) t))"
        )
        names = [name for name, _, _ in iter_let_bindings(term)]
        assert names == ["f", "a", "t", "b"]


class TestSyntacticLints:
    def test_clean_program(self):
        term = parse("(let (x (+ 1 2)) x)")
        assert syntactic_lints(term) == []

    def test_s100_s101_s103_codes_and_severity(self):
        term = Let(
            "x", App(App(Var("x"), Num(1)), Num(2)), Let("x", Num(1), Var("x"))
        )
        found = {d.code for d in syntactic_lints(term)}
        assert {"S100", "S103"} <= found
        assert all(
            d.severity == ERROR
            for d in syntactic_lints(term)
            if d.code in ("S100", "S101", "S103")
        )

    def test_s102_respects_assumed_names(self):
        term = parse("(let (a (f 1)) a)")
        assert [d.code for d in syntactic_lints(term)] == ["S102"]
        assert syntactic_lints(term, assumed={"f"}) == []

    def test_s105_requires_purity(self):
        pure = parse("(let (dead (+ 1 2)) 7)")
        fired = [d for d in syntactic_lints(pure) if d.code == "S105"]
        assert len(fired) == 1 and fired[0].severity == WARNING
        # an application may diverge: removing it would change behaviour
        impure = parse("(let (f (lambda (x) x)) (let (dead (f 1)) 7))")
        assert not [
            d for d in syntactic_lints(impure) if d.code == "S105"
        ]

    def test_s104_checker_runs_on_clean_programs(self):
        # the cps(A) image of a well-formed program always passes, so
        # S104's only observable behaviour here is silence
        term = parse("(let (t (if0 0 1 2)) t)")
        assert not [
            d for d in syntactic_lints(term) if d.code == "S104"
        ]

    def test_spans_attached_from_source(self):
        source = "(let (dead 1)\n  (let (used 2) used))"
        term = parse(source)
        spans = binder_spans(source)
        fired = [
            d for d in syntactic_lints(term, spans=spans)
            if d.code == "S105"
        ]
        assert fired[0].span is not None
        assert (fired[0].span.line, fired[0].span.column) == (1, 7)

    def test_fixits_delegate_to_repo_passes(self):
        term = Let("x", Num(1), Let("x", Num(2), Var("x")))
        actions = {
            d.code: d.fixit.action
            for d in syntactic_lints(term)
            if d.fixit is not None
        }
        assert actions["S100"] == "lang.rename.uniquify"


class TestBinderSpans:
    def test_let_and_lambda_binders(self):
        spans = binder_spans("(let (f (lambda (x) x)) (f 1))")
        assert set(spans) == {"f", "x"}
        assert spans["f"].line == 1

    def test_unreadable_source_is_empty(self):
        assert binder_spans("(((") == {}
