"""Property tests over seeded random programs (ISSUE 4 satellite).

Two invariants tie the validators to the transformations they guard:

- `anf.normalize` output is always lint-clean for the ANF rules
  (S100/S103 can never fire on a normalized program);
- `cps.transform` images always pass the cps(A) checker, i.e. S104 is
  unreachable from well-formed input.
"""

import random

import pytest

from repro.anf import normalize
from repro.anf.validate import anf_violations
from repro.cps.transform import TOP_KVAR, cps_transform
from repro.cps.validate import cps_violations
from repro.gen.random_terms import random_open_term, random_program
from repro.lint import syntactic_lints

SEEDS = range(60)
FREE_INPUTS = ("in0", "in1")


def _open_term(seed, max_depth=5):
    return random_open_term(
        random.Random(seed), max_depth=max_depth, free_numeric=FREE_INPUTS
    )


class TestNormalizeImagesAreLintClean:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_closed_programs(self, seed):
        term = normalize(random_program(seed, max_depth=5))
        assert anf_violations(term) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_open_programs(self, seed):
        normalized = normalize(_open_term(seed))
        structural = [
            d
            for d in syntactic_lints(normalized, assumed=FREE_INPUTS)
            if d.code in ("S100", "S103")
        ]
        assert structural == []


class TestCpsImagesPassTheChecker:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_closed_programs(self, seed):
        term = normalize(random_program(seed, max_depth=5))
        image = cps_transform(term)
        assert cps_violations(image, frozenset({TOP_KVAR})) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_open_programs(self, seed):
        image = cps_transform(normalize(_open_term(seed)))
        assert cps_violations(image, frozenset({TOP_KVAR})) == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_s104_never_fires_via_the_lint_pass(self, seed):
        term = normalize(random_program(seed, max_depth=4))
        assert not [
            d for d in syntactic_lints(term) if d.code == "S104"
        ]
