"""Differential validation of semantic lints (ISSUE 4 satellite).

Every L001/L002/L003 a lint run fires must be *actionable*: applying
the corresponding `repro.opt` transformation removes the flagged site,
and re-running the proving analyzer on the transformed program yields
the same final abstract value.  For closed programs we additionally
check the concrete direct interpreter agrees before and after.
"""

import itertools

import pytest

from repro.corpus.programs import PROGRAMS
from repro.domains.absval import Lattice
from repro.domains.constprop import ConstPropDomain
from repro.interp.direct import run_direct
from repro.interp.errors import InterpError
from repro.lang.ast import If0, Num
from repro.lang.syntax import binders, free_variables
from repro.lint import iter_let_bindings, run_analysis, run_lints
from repro.opt.constfold import constant_fold
from repro.opt.deadcode import eliminate_dead_code

MAX_VISITS = 60_000

CASES = [
    (name, analyzer)
    for name, analyzer in itertools.product(
        PROGRAMS, ("direct", "semantic-cps", "syntactic-cps")
    )
    if not (PROGRAMS[name].heavy and analyzer == "syntactic-cps")
]


def _let_rhs(term):
    return {name: rhs for name, rhs, _ in iter_let_bindings(term)}


@pytest.mark.parametrize("name,analyzer", CASES)
def test_semantic_lints_are_actionable(name, analyzer):
    prog = PROGRAMS[name]
    report = run_lints(prog, analyzer=analyzer, max_visits=MAX_VISITS)
    assert report.analysis_error is None
    flagged = {
        code: [d.subject for d in report.by_code(code)]
        for code in ("L001", "L002", "L003")
    }
    if not any(flagged.values()):
        pytest.skip(f"{name}/{analyzer}: no foldable semantic findings")

    lattice = Lattice(ConstPropDomain())
    initial = prog.initial_for(lattice)
    result = run_analysis(
        prog.term, analyzer, initial=initial, max_visits=MAX_VISITS
    )
    folded = constant_fold(prog.term, result)
    cleaned = eliminate_dead_code(folded)

    folded_rhs = _let_rhs(folded)
    # L003: the flagged binder now binds the proven literal — or the
    # site vanished entirely because an enclosing binding folded first
    # (e.g. a whole decided conditional collapsing to its constant).
    for subject in flagged["L003"]:
        if subject in folded_rhs:
            assert isinstance(folded_rhs[subject], Num), (
                f"{name}/{analyzer}: L003 on {subject!r} but constfold "
                f"left {folded_rhs[subject]!r}"
            )
    # L001: the decided conditional is gone after folding.
    for subject in flagged["L001"]:
        assert not isinstance(folded_rhs.get(subject), If0), (
            f"{name}/{analyzer}: L001 on {subject!r} but the if0 survived"
        )
    # L002: the binding is removed by the fold+deadcode pipeline.
    surviving = set(binders(cleaned))
    for subject in flagged["L002"]:
        assert subject not in surviving, (
            f"{name}/{analyzer}: L002 on {subject!r} but deadcode kept it"
        )

    # The proving analyzer computes the same final value on the
    # transformed program: the lint-suggested rewrites are
    # semantics-preserving under its own abstraction.
    after = run_analysis(
        cleaned, analyzer, initial=initial, max_visits=MAX_VISITS
    )
    assert after.answer.value == result.answer.value, (
        f"{name}/{analyzer}: final abstract value changed after rewrite"
    )

    # Closed programs: the concrete machine agrees too.
    if not free_variables(prog.term):
        try:
            before = run_direct(prog.term, fuel=200_000)
            assert run_direct(cleaned, fuel=200_000).value == before.value
        except InterpError:
            pytest.skip(f"{name}: concrete run exceeds the fuel budget")
