"""Sink behaviour: the protocol, recording, and JSONL round-trips."""

import io
import json

from repro.obs.events import CacheHit, InterpStep
from repro.obs.sinks import (
    NULL_SINK,
    JsonlSink,
    NullSink,
    RecordingSink,
    Sink,
    read_jsonl,
)


class TestProtocol:
    def test_all_sinks_satisfy_protocol(self):
        assert isinstance(NullSink(), Sink)
        assert isinstance(RecordingSink(), Sink)
        assert isinstance(JsonlSink(io.StringIO()), Sink)

    def test_null_sink_is_disabled(self):
        assert NULL_SINK.enabled is False
        # emit exists and drops silently for callers that don't hoist
        NULL_SINK.emit(CacheHit("mfp", "a1"))
        NULL_SINK.close()


class TestRecordingSink:
    def test_records_in_order(self):
        sink = RecordingSink()
        first = InterpStep("direct", "Num", 9)
        second = CacheHit("mfp", "a1")
        sink.emit(first)
        sink.emit(second)
        assert sink.events == [first, second]
        assert list(sink) == [first, second]
        assert len(sink) == 2

    def test_by_kind_and_counts(self):
        sink = RecordingSink()
        sink.emit(InterpStep("direct", "Num", 9))
        sink.emit(InterpStep("direct", "Var:x", 8))
        sink.emit(CacheHit("mfp", "a1"))
        assert len(sink.by_kind("interp.step")) == 2
        assert sink.counts() == {"interp.step": 2, "cache.hit": 1}

    def test_clear(self):
        sink = RecordingSink()
        sink.emit(CacheHit("mfp", "a1"))
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_one_json_object_per_line_with_seq(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(InterpStep("direct", "Num", 9))
        sink.emit(CacheHit("mfp", "a1"))
        sink.close()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [line["seq"] for line in lines] == [0, 1]
        assert lines[0]["event"] == "interp.step"
        assert lines[1] == {
            "event": "cache.hit",
            "component": "mfp",
            "key": "a1",
            "seq": 1,
        }
        assert sink.emitted == 2

    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(InterpStep("direct", "Let:x", 5))
        records = list(read_jsonl(path))
        assert records == [
            {
                "event": "interp.step",
                "interpreter": "direct",
                "label": "Let:x",
                "fuel": 5,
                "seq": 0,
            }
        ]

    def test_stream_is_not_closed_by_sink(self):
        buffer = io.StringIO()
        with JsonlSink(buffer) as sink:
            sink.emit(CacheHit("mfp", "a1"))
        # close() on a borrowed handle only flushes
        assert not buffer.closed
