"""Metrics registry: counters, gauges, histograms, spans, snapshots."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, Metrics


class TestCounter:
    def test_accumulates(self):
        metrics = Metrics()
        metrics.counter("visits").inc()
        metrics.counter("visits").inc(4)
        assert metrics.counter("visits").value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Metrics().counter("visits").inc(-1)

    def test_same_name_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")


class TestGauge:
    def test_set_tracks_high_water(self):
        gauge = Metrics().gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 5

    def test_set_max_only_grows(self):
        gauge = Metrics().gauge("depth")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5
        assert gauge.max_value == 5


class TestHistogram:
    def test_summary_statistics(self):
        hist = Metrics().histogram("seconds")
        assert hist.mean is None
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0


class TestHistogramBuckets:
    def test_default_bounds_are_geometric(self):
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert len(DEFAULT_BUCKETS) == 28
        for narrow, wide in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert wide == narrow * 2.0

    def test_observations_land_in_log_buckets(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.buckets == [1, 1, 1, 1]

    def test_cumulative_buckets_end_at_total_count(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.cumulative_buckets() == [
            (1.0, 1), (2.0, 2), (float("inf"), 3),
        ]


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        assert Metrics().histogram("h").quantile(0.5) is None

    def test_quantile_bounds_are_validated(self):
        with pytest.raises(ValueError):
            Metrics().histogram("h").quantile(1.5)

    def test_extremes_are_exact(self):
        hist = Metrics().histogram("h")
        for value in (0.001, 0.002, 0.004, 0.25):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.001
        assert hist.quantile(1.0) == 0.25

    def test_quantiles_are_monotone(self):
        hist = Metrics().histogram("h")
        for index in range(1, 101):
            hist.observe(index / 1000.0)  # 1ms .. 100ms
        p50 = hist.quantile(0.50)
        p90 = hist.quantile(0.90)
        p99 = hist.quantile(0.99)
        assert p50 <= p90 <= p99 <= hist.max

    def test_quantile_error_bounded_by_bucket_width(self):
        # ×2 geometric buckets: the interpolated estimate can be off
        # by at most one bucket, i.e. a factor of 2.
        hist = Metrics().histogram("h")
        for index in range(1, 101):
            hist.observe(index / 1000.0)
        true_p50 = 0.050
        estimate = hist.quantile(0.50)
        assert true_p50 / 2 <= estimate <= true_p50 * 2

    def test_single_observation_pins_every_quantile(self):
        hist = Metrics().histogram("h")
        hist.observe(0.125)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.125


class TestThreadSafety:
    def test_concurrent_instrument_creation_and_updates(self):
        metrics = Metrics()

        def hammer(seed: int) -> None:
            for index in range(500):
                metrics.counter("shared").inc()
                metrics.histogram("lat").observe(index / 1000.0)
                metrics.gauge(f"g{seed}").set(index)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("shared").value == 8 * 500
        hist = metrics.histogram("lat")
        assert hist.count == 8 * 500
        assert sum(hist.buckets) == hist.count

    def test_same_name_race_returns_one_instrument(self):
        metrics = Metrics()
        seen = []

        def create() -> None:
            seen.append(metrics.counter("raced"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestPrometheus:
    def test_counters_gauges_histograms_rendered(self):
        metrics = Metrics()
        metrics.counter("serve.requests.total").inc(7)
        metrics.gauge("serve.queue.depth").set(3)
        metrics.histogram("serve.request.seconds").observe(0.5)
        text = metrics.to_prometheus()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_queue_depth_max 3" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_serve_request_seconds_sum 0.5" in text
        assert "repro_serve_request_seconds_count 1" in text

    def test_bucket_series_is_cumulative(self):
        metrics = Metrics()
        hist = metrics.histogram("lat")
        for value in (1e-6, 1.0, 1000.0):  # first, middle, overflow
            hist.observe(value)
        lines = [
            line
            for line in metrics.to_prometheus().splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert lines[-1].startswith('repro_lat_bucket{le="+Inf"}')

    def test_names_are_sanitized(self):
        metrics = Metrics()
        metrics.counter("serve.responses.error.not_found").inc()
        text = metrics.to_prometheus()
        assert "repro_serve_responses_error_not_found 1" in text

    def test_ends_with_newline(self):
        assert Metrics().to_prometheus().endswith("\n")


class TestSpan:
    def test_records_duration_and_calls(self):
        metrics = Metrics()
        with metrics.span("work"):
            pass
        assert metrics.counter("work.calls").value == 1
        hist = metrics.histogram("work.seconds")
        assert hist.count == 1
        assert hist.min >= 0

    def test_records_even_on_exception(self):
        metrics = Metrics()
        with pytest.raises(RuntimeError):
            with metrics.span("work"):
                raise RuntimeError("boom")
        assert metrics.counter("work.calls").value == 1


class TestMergeStats:
    def test_counters_accumulate_and_max_keys_become_gauges(self):
        metrics = Metrics()
        metrics.merge_stats("analysis.direct", {"visits": 3, "max_depth": 2})
        metrics.merge_stats("analysis.direct", {"visits": 4, "max_depth": 1})
        assert metrics.counter("analysis.direct.visits").value == 7
        assert metrics.gauge("analysis.direct.max_depth").max_value == 2


class TestSnapshot:
    def test_nested_json_friendly_shape(self):
        metrics = Metrics()
        metrics.counter("c").inc(2)
        metrics.gauge("g").set(3)
        metrics.histogram("h").observe(1.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": {"value": 3, "max": 3}}
        assert snap["histograms"]["h"] == {
            "count": 1,
            "total": 1.5,
            "mean": 1.5,
            "min": 1.5,
            "max": 1.5,
        }

    def test_empty_registry(self):
        assert Metrics().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_quantiles_opt_in(self):
        metrics = Metrics()
        hist = metrics.histogram("h")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        plain = metrics.snapshot()["histograms"]["h"]
        assert set(plain) == {"count", "total", "mean", "min", "max"}
        rich = metrics.snapshot(quantiles=True)["histograms"]["h"]
        for key in ("p50", "p90", "p99"):
            assert isinstance(rich[key], float)
        assert rich["p50"] <= rich["p90"] <= rich["p99"]
