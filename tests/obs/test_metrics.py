"""Metrics registry: counters, gauges, histograms, spans, snapshots."""

import pytest

from repro.obs.metrics import Metrics


class TestCounter:
    def test_accumulates(self):
        metrics = Metrics()
        metrics.counter("visits").inc()
        metrics.counter("visits").inc(4)
        assert metrics.counter("visits").value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Metrics().counter("visits").inc(-1)

    def test_same_name_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")


class TestGauge:
    def test_set_tracks_high_water(self):
        gauge = Metrics().gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 5

    def test_set_max_only_grows(self):
        gauge = Metrics().gauge("depth")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5
        assert gauge.max_value == 5


class TestHistogram:
    def test_summary_statistics(self):
        hist = Metrics().histogram("seconds")
        assert hist.mean is None
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0


class TestSpan:
    def test_records_duration_and_calls(self):
        metrics = Metrics()
        with metrics.span("work"):
            pass
        assert metrics.counter("work.calls").value == 1
        hist = metrics.histogram("work.seconds")
        assert hist.count == 1
        assert hist.min >= 0

    def test_records_even_on_exception(self):
        metrics = Metrics()
        with pytest.raises(RuntimeError):
            with metrics.span("work"):
                raise RuntimeError("boom")
        assert metrics.counter("work.calls").value == 1


class TestMergeStats:
    def test_counters_accumulate_and_max_keys_become_gauges(self):
        metrics = Metrics()
        metrics.merge_stats("analysis.direct", {"visits": 3, "max_depth": 2})
        metrics.merge_stats("analysis.direct", {"visits": 4, "max_depth": 1})
        assert metrics.counter("analysis.direct.visits").value == 7
        assert metrics.gauge("analysis.direct.max_depth").max_value == 2


class TestSnapshot:
    def test_nested_json_friendly_shape(self):
        metrics = Metrics()
        metrics.counter("c").inc(2)
        metrics.gauge("g").set(3)
        metrics.histogram("h").observe(1.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": {"value": 3, "max": 3}}
        assert snap["histograms"]["h"] == {
            "count": 1,
            "total": 1.5,
            "mean": 1.5,
            "min": 1.5,
            "max": 1.5,
        }

    def test_empty_registry(self):
        assert Metrics().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
