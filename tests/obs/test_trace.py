"""Tests for `repro.obs.trace` — request-scoped span tracing."""

import threading

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    RequestTrace,
    TraceContext,
    activate,
    begin_trace,
    current,
    current_trace_id,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    record_span,
    span,
)


class TestIdentifiers:
    def test_trace_id_is_32_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)

    def test_span_id_is_16_hex(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()


class TestTraceparent:
    def test_round_trip(self):
        tid, sid = new_trace_id(), new_span_id()
        header = format_traceparent(tid, sid)
        assert parse_traceparent(header) == (tid, sid)

    def test_header_shape(self):
        header = format_traceparent("ab" * 16, "cd" * 8)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "garbage",
        "00-short-abcd-01",
        "01-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # unknown version
        "00-" + "zz" * 16 + "-" + "cd" * 8 + "-01",   # not hex
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",   # all-zero trace
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",   # all-zero span
    ])
    def test_malformed_headers_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_begin_trace_continues_valid_header(self):
        header = format_traceparent("ab" * 16, "cd" * 8)
        ctx = begin_trace(header)
        assert ctx.trace_id == "ab" * 16
        assert ctx.span_id == "cd" * 8

    def test_begin_trace_starts_fresh_on_garbage(self):
        ctx = begin_trace("not-a-header")
        assert len(ctx.trace_id) == 32
        assert ctx.span_id is None


class TestDisabledPath:
    def test_no_context_by_default(self):
        assert current() is None
        assert current_trace_id() is None

    def test_span_is_shared_noop_without_a_trace(self):
        # The NullSink rule applied to spans: the disabled path
        # allocates nothing — every call returns one shared object.
        assert span("anything") is NOOP_SPAN
        assert span("something-else", attr=1) is span("third")

    def test_noop_span_is_inert(self):
        with span("disabled") as live:
            live.annotate(extra=True)
        assert live is NOOP_SPAN

    def test_record_span_is_none_without_a_trace(self):
        assert record_span("queue.wait", 0.5) is None


class TestSpans:
    def test_span_records_into_the_trace(self):
        ctx = begin_trace()
        with activate(ctx):
            with span("work", kind="analyze"):
                pass
        records = ctx.trace.spans()
        assert [r.name for r in records] == ["work"]
        assert records[0].trace_id == ctx.trace_id
        assert records[0].attrs == {"kind": "analyze"}
        assert records[0].duration_s >= 0.0

    def test_nested_spans_form_a_parent_chain(self):
        ctx = begin_trace()
        with activate(ctx):
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
        by_name = {r.name: r for r in ctx.trace.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_continued_trace_parents_under_remote_span(self):
        header = format_traceparent("ab" * 16, "cd" * 8)
        ctx = begin_trace(header)
        with activate(ctx):
            with span("local"):
                pass
        (record,) = ctx.trace.spans()
        assert record.parent_id == "cd" * 8

    def test_span_recorded_even_when_body_raises(self):
        ctx = begin_trace()
        with activate(ctx):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert [r.name for r in ctx.trace.spans()] == ["failing"]

    def test_annotate_attaches_mid_span_attrs(self):
        ctx = begin_trace()
        with activate(ctx):
            with span("work") as live:
                live.annotate(cache="hit")
        (record,) = ctx.trace.spans()
        assert record.attrs == {"cache": "hit"}

    def test_record_span_uses_given_duration(self):
        ctx = begin_trace()
        with activate(ctx):
            record = record_span("queue.wait", 1.25)
        assert record.duration_s == 1.25
        assert ctx.trace.duration_of("queue.wait") == 1.25

    def test_activation_restores_previous_context(self):
        ctx = begin_trace()
        with activate(ctx):
            assert current() is ctx
        assert current() is None

    def test_as_dict_nests_attrs(self):
        ctx = begin_trace()
        with activate(ctx):
            with span("work", analyzer="direct"):
                pass
        (record,) = ctx.trace.as_dicts()
        assert record["name"] == "work"
        assert record["attrs"] == {"analyzer": "direct"}
        assert record["trace_id"] == ctx.trace_id

    def test_duration_of_sums_and_distinguishes_absent(self):
        trace = RequestTrace()
        ctx = TraceContext(trace)
        with activate(ctx):
            record_span("step", 0.25)
            record_span("step", 0.5)
        assert trace.duration_of("step") == 0.75
        assert trace.duration_of("never-happened") is None


class TestThreadHandOff:
    def test_activate_carries_trace_across_threads(self):
        # The worker-pool hand-off: capture on one thread, activate on
        # another, and every span lands in the same collector.
        ctx = begin_trace()
        seen = {}

        def worker(handed: TraceContext) -> None:
            with activate(handed):
                seen["trace_id"] = current_trace_id()
                with span("on-worker"):
                    pass

        with activate(ctx):
            handed = current()
        thread = threading.Thread(target=worker, args=(handed,))
        thread.start()
        thread.join()
        assert seen["trace_id"] == ctx.trace_id
        assert [r.name for r in ctx.trace.spans()] == ["on-worker"]

    def test_new_thread_has_no_inherited_context(self):
        ctx = begin_trace()
        seen = {}

        def worker() -> None:
            seen["ctx"] = current()

        with activate(ctx):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["ctx"] is None

    def test_concurrent_adds_are_thread_safe(self):
        trace = RequestTrace()
        ctx = TraceContext(trace)

        def hammer() -> None:
            with activate(ctx):
                for _ in range(200):
                    record_span("tick", 0.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trace.spans()) == 800
