"""End-to-end tracing: interpreters, analyzers, and solvers.

Three ISSUE-mandated properties live here:

* the golden JSONL trace of the ``factorial`` corpus program under the
  direct interpreter (schema stability across PRs),
* the analyzer ``analysis.visit`` event count equals ``stats.visits``
  (the Section 6.2 work measure and the trace agree),
* the disabled path is truly disabled: with the default `NullSink` no
  event is ever constructed and results are identical to tracing on.
"""

import json

import pytest

from repro.analysis.direct import analyze_direct
from repro.api import THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import corpus_program
from repro.cps import cps_transform
from repro.dataflow.framework import build_problem
from repro.dataflow.mfp import solve_mfp
from repro.dataflow.mop import solve_mop
from repro.domains import ConstPropDomain
from repro.interp.direct import run_direct
from repro.interp.semantic_cps import run_semantic_cps
from repro.interp.syntactic_cps import run_syntactic_cps
from repro.anf import normalize
from repro.lang.parser import parse
from repro.obs import JsonlSink, RecordingSink
from repro.obs.sinks import read_jsonl

from pathlib import Path

GOLDEN = Path(__file__).parent / "golden" / "factorial_direct.jsonl"
DOM = ConstPropDomain()


class ExplodingSink:
    """A disabled sink that fails loudly if any producer ignores
    ``enabled`` and emits anyway."""

    enabled = False

    def emit(self, event):
        raise AssertionError(f"event constructed on disabled path: {event!r}")

    def close(self):
        pass


class TestGoldenTrace:
    def test_factorial_direct_matches_golden(self, tmp_path):
        program = corpus_program("factorial")
        out = tmp_path / "trace.jsonl"
        with JsonlSink(out) as sink:
            answer = run_direct(program.term, trace=sink)
        assert answer.value == 720
        fresh = list(read_jsonl(out))
        golden = list(read_jsonl(GOLDEN))
        assert fresh == golden

    def test_golden_is_valid_jsonl(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                record = json.loads(line)
                assert record["event"] == "interp.step"
                assert record["interpreter"] == "direct"
                assert record["seq"] == index


class TestInterpreterTracing:
    SOURCE = "(let (f (lambda (x) (add1 x))) (f 2))"

    def test_direct_step_events_carry_fuel(self):
        sink = RecordingSink()
        run_direct(normalize(parse(self.SOURCE)), fuel=100, trace=sink)
        steps = sink.by_kind("interp.step")
        assert steps and steps == sink.events
        assert all(event.interpreter == "direct" for event in steps)
        fuels = [event.fuel for event in steps]
        assert fuels == sorted(fuels, reverse=True)
        assert fuels[0] == 99  # remaining after the first tick

    def test_event_count_equals_fuel_consumed(self):
        budget = 100
        sink = RecordingSink()
        run_direct(normalize(parse(self.SOURCE)), fuel=budget, trace=sink)
        remaining = sink.events[-1].fuel
        assert len(sink) == budget - remaining

    def test_semantic_cps_traces(self):
        sink = RecordingSink()
        run_semantic_cps(normalize(parse(self.SOURCE)), trace=sink)
        assert sink.counts() == {"interp.step": len(sink)}
        assert {e.interpreter for e in sink} == {"semantic-cps"}

    def test_syntactic_cps_traces(self):
        sink = RecordingSink()
        run_syntactic_cps(cps_transform(normalize(parse(self.SOURCE))), trace=sink)
        assert {e.interpreter for e in sink} == {"syntactic-cps"}
        labels = {e.label for e in sink}
        assert "apply" in labels and "return" in labels


class TestAnalyzerTracing:
    SOURCE = "(let (a1 (if0 x 0 1)) (let (a2 (if0 x 10 20)) (+ a1 a2)))"

    def test_visit_events_match_stats_for_all_three(self):
        sink = RecordingSink()
        report = run_comparison(self.SOURCE, trace=sink, analyzers=THREE_WAY_ANALYZERS)
        visits = sink.by_kind("analysis.visit")
        for result in (report.direct, report.semantic, report.syntactic):
            per_analyzer = [
                e for e in visits if e.analyzer == result.analyzer
            ]
            assert len(per_analyzer) == result.stats.visits

    def test_join_events_match_stats(self):
        sink = RecordingSink()
        report = run_comparison(self.SOURCE, trace=sink, analyzers=THREE_WAY_ANALYZERS)
        joins = sink.by_kind("analysis.join")
        for result in (report.direct, report.semantic, report.syntactic):
            count = sum(1 for e in joins if e.analyzer == result.analyzer)
            assert count == result.stats.joins

    def test_loop_events_emitted_on_recursion(self):
        program = corpus_program("factorial")
        sink = RecordingSink()
        result = analyze_direct(program.term, DOM, trace=sink)
        loops = sink.by_kind("analysis.loop")
        assert len(loops) == result.stats.loop_cuts > 0


class TestDisabledPath:
    SOURCE = "(let (a1 (if0 x 0 1)) a1)"

    def test_no_events_constructed_when_disabled(self):
        # ExplodingSink.emit raises, so this passes only if every
        # producer hoists the `enabled` check before building events.
        sink = ExplodingSink()
        run_comparison(self.SOURCE, trace=sink, analyzers=THREE_WAY_ANALYZERS)
        run_direct(normalize(parse("(add1 1)")), trace=sink)
        run_semantic_cps(normalize(parse("(add1 1)")), trace=sink)
        run_syntactic_cps(cps_transform(normalize(parse("(add1 1)"))), trace=sink)
        problem = build_problem(normalize(parse("(let (a 1) a)")), DOM)
        solve_mfp(problem, trace=sink)
        solve_mop(problem, trace=sink)

    def test_span_api_is_noop_when_no_trace_is_active(self):
        # The span analogue of the NullSink rule: with no active
        # request trace, span() hands back one shared inert object —
        # no allocation, no recording, however hot the call site.
        from repro.obs.trace import NOOP_SPAN, current, span

        assert current() is None
        assert span("plan.compile") is NOOP_SPAN
        assert span("execute", analyzer="direct") is span("serialize")
        with span("anything") as live:
            pass
        assert live is NOOP_SPAN

    def test_analysis_results_identical_under_span_tracing(self):
        # Activating a request trace must not perturb analysis
        # results, only record timings around them.
        from repro.obs.trace import activate, begin_trace

        plain = run_comparison(self.SOURCE, analyzers=THREE_WAY_ANALYZERS)
        ctx = begin_trace()
        with activate(ctx):
            traced = run_comparison(self.SOURCE, analyzers=THREE_WAY_ANALYZERS)
        for a, b in (
            (traced.direct, plain.direct),
            (traced.semantic, plain.semantic),
            (traced.syntactic, plain.syntactic),
        ):
            assert a.value == b.value
            assert dict(a.store.items()) == dict(b.store.items())
            assert a.stats.as_dict() == b.stats.as_dict()

    def test_results_identical_with_and_without_tracing(self):
        traced = run_comparison(self.SOURCE, trace=RecordingSink(), analyzers=THREE_WAY_ANALYZERS)
        plain = run_comparison(self.SOURCE, analyzers=THREE_WAY_ANALYZERS)
        for a, b in (
            (traced.direct, plain.direct),
            (traced.semantic, plain.semantic),
            (traced.syntactic, plain.syntactic),
        ):
            assert a.value == b.value
            assert dict(a.store.items()) == dict(b.store.items())
            assert a.stats.as_dict() == b.stats.as_dict()


class TestSolverTracing:
    SOURCE = "(let (a (if0 x 1 2)) (let (b (+ a 1)) b))"

    @pytest.mark.parametrize(
        "solve,solver", [(solve_mfp, "mfp"), (solve_mop, "mop")]
    )
    def test_iteration_events(self, solve, solver):
        problem = build_problem(normalize(parse(self.SOURCE)), DOM)
        sink = RecordingSink()
        solve(problem, trace=sink)
        iterations = sink.by_kind("dataflow.iteration")
        assert iterations
        assert {e.solver for e in iterations} == {solver}
