"""Event schema tests: kind tags, ``as_dict()`` shape, labels."""

import dataclasses
import json

import pytest

from repro.lang.parser import parse
from repro.obs.events import (
    AnalyzerVisit,
    BudgetAborted,
    CacheHit,
    InterpStep,
    JoinPerformed,
    LoopDetected,
    SolverIteration,
    StoreWidened,
    term_label,
)

ALL_EVENTS = [
    (InterpStep("direct", "Let:x", 99), "interp.step"),
    (AnalyzerVisit("direct", "Let:x", 2), "analysis.visit"),
    (JoinPerformed("direct", "if0"), "analysis.join"),
    (StoreWidened("semantic-cps", "x", 3), "analysis.widening"),
    (LoopDetected("syntactic-cps", "CApp"), "analysis.loop"),
    (BudgetAborted("direct", 100, 101), "analysis.budget_abort"),
    (CacheHit("mfp", "a1"), "cache.hit"),
    (SolverIteration("mop", "entry", 4), "dataflow.iteration"),
]


class TestSchema:
    @pytest.mark.parametrize(
        "event,kind", ALL_EVENTS, ids=[k for _, k in ALL_EVENTS]
    )
    def test_kind_tag(self, event, kind):
        assert event.kind == kind
        assert event.as_dict()["event"] == kind

    @pytest.mark.parametrize(
        "event,kind", ALL_EVENTS, ids=[k for _, k in ALL_EVENTS]
    )
    def test_as_dict_is_json_serializable(self, event, kind):
        view = event.as_dict()
        assert json.loads(json.dumps(view)) == view

    def test_as_dict_includes_every_field(self):
        event = InterpStep("direct", "Num", 7)
        assert event.as_dict() == {
            "event": "interp.step",
            "interpreter": "direct",
            "label": "Num",
            "fuel": 7,
        }

    def test_events_are_frozen(self):
        event = CacheHit("mfp", "a1")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.key = "other"


class TestTermLabel:
    def test_named_node(self):
        term = parse("(let (x 1) x)")
        assert term_label(term) == "Let:x"

    def test_unnamed_node(self):
        term = parse("42")
        assert term_label(term) == "Num"

    def test_non_string_name_attribute_ignored(self):
        class Odd:
            name = 7

        assert term_label(Odd()) == "Odd"
