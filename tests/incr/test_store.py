"""Tests for `repro.incr.store`: persistence, schema versioning, gc,
cross-process safety, and crash recovery."""

import os
import signal
import sqlite3
import subprocess
import sys

from repro.incr.store import (
    KIND_SUB,
    STORE_SCHEMA,
    IncrStore,
    describe,
    open_store,
    render_stats,
)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            store.put("cfg", KIND_SUB, "subj", "judg", "payload-1")
            assert store.get("cfg", KIND_SUB, "subj", "judg") == "payload-1"
            assert store.stats.hits == 1
            assert store.stats.puts == 1

    def test_miss_counts(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            assert store.get("cfg", KIND_SUB, "absent", "-") is None
            assert store.stats.misses == 1

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            store.put("cfg", KIND_SUB, "subj", "judg", "payload-2")
        with IncrStore(path) as store:
            assert store.get("cfg", KIND_SUB, "subj", "judg") == "payload-2"

    def test_load_working_set(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            store.put("cfg", KIND_SUB, "a", "j1", "p1")
            store.put("cfg", KIND_SUB, "a", "j2", "p2")
            store.put("cfg", KIND_SUB, "b", "j3", "p3")
            store.put("other", KIND_SUB, "a", "j1", "px")
            got = store.load("cfg", KIND_SUB, ["a", "missing"])
        assert got == {("a", "j1"): "p1", ("a", "j2"): "p2"}

    def test_put_replace_idempotent(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            store.put("cfg", KIND_SUB, "s", "j", "v1")
            store.put("cfg", KIND_SUB, "s", "j", "v1")
            assert store.summary()["entries"] == 1


class TestSchema:
    def test_schema_mismatch_starts_clean(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            store.put("cfg", KIND_SUB, "s", "j", "old")
            generation = store.generation()
        # Forge a header from a different layout.
        db = sqlite3.connect(path)
        with db:
            db.execute(
                "UPDATE meta SET value=? WHERE key='schema'",
                (str(STORE_SCHEMA + 1),),
            )
        db.close()
        with IncrStore(path) as store:
            assert store.get("cfg", KIND_SUB, "s", "j") is None
            # The wipe bumped the generation: volatile caches keyed on
            # it cannot serve pre-wipe bodies.
            assert store.generation() > generation

    def test_generation_bumps_on_gc(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            before = store.generation()
            report = store.gc(max_bytes=0)
            assert report["generation"] == before + 1
            assert store.generation(refresh=True) == before + 1

    def test_cross_handle_generation_visible(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as a, IncrStore(path) as b:
            assert b.generation() == a.generation()
            a.gc(max_bytes=0)
            assert b.generation(refresh=True) == a.generation()


class TestGc:
    def test_gc_to_zero_clears(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            for i in range(10):
                store.put("cfg", KIND_SUB, f"s{i}", "j", "x" * 100)
            report = store.gc(max_bytes=0)
            assert report["evicted"] == 10
            assert report["bytes"] == 0
            assert store.summary()["entries"] == 0

    def test_gc_keeps_recently_used(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            # 600 rows of 100 bytes; keep roughly half.  Eviction is
            # LRU in batches, so the survivors are the *newest* rows.
            for i in range(600):
                store.put("cfg", KIND_SUB, f"s{i}", "j", "x" * 100)
            report = store.gc(max_bytes=30_000)
            assert report["bytes"] <= 30_000
            assert 0 < report["evicted"] < 600
            assert store.summary()["entries"] == 600 - report["evicted"]

    def test_gc_counts_runs(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            store.gc(max_bytes=0)
            store.gc(max_bytes=0)
            assert store.summary()["gc_runs"] == 2


class TestOpenStore:
    def test_none_path_is_none(self):
        assert open_store(None) is None

    def test_unopenable_is_none(self, tmp_path):
        # A directory is not a sqlite file: open fails, returns None
        # (the serve layer then runs uncached instead of crashing).
        assert open_store(str(tmp_path)) is None

    def test_describe_and_render(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            store.put("cfg", KIND_SUB, "s", "j", "payload")
        summary = describe(path)
        assert summary["entries"] == 1
        text = render_stats(summary)
        assert "entries 1" in text
        assert path in text


CRASH_SCRIPT = """
import os, sys
from repro.incr.store import IncrStore, KIND_SUB

store = IncrStore(sys.argv[1])
for i in range(10_000):
    store.put("cfg", KIND_SUB, f"crash{i}", "j", "x" * 200)
    if i == 500:
        print("ready", flush=True)
"""


class TestCrashRecovery:
    def test_sigkill_mid_write_leaves_store_usable(self, tmp_path):
        # Kill a writer process in the middle of its transaction
        # stream; the WAL journal must roll back cleanly and the file
        # must serve subsequent sessions.
        path = str(tmp_path / "s.sqlite")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", CRASH_SCRIPT, path],
            stdout=subprocess.PIPE,
            env=env,
        )
        assert proc.stdout.readline().strip() == b"ready"
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        with IncrStore(path) as store:
            # Whatever committed is intact; the handle works for both
            # reads and writes.
            entries = store.summary()["entries"]
            assert entries >= 500
            store.put("cfg", KIND_SUB, "after", "j", "ok")
            assert store.get("cfg", KIND_SUB, "after", "j") == "ok"
            assert store.get("cfg", KIND_SUB, "crash0", "j") == "x" * 200
