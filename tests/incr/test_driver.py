"""The differential suite: incremental re-analysis must be
bit-identical to from-scratch analysis.

`analyze_incremental` may only change *work* (visits, wall clock,
store counters) — never the answer.  These tests compare the
incremental result against a plain `run_analysis` of the same edited
term across the corpus, the four analyzers, the abstract domains, the
plan engine, and 300 seeded random edit-pairs.
"""

import random

import pytest

from repro.analysis import BudgetExceeded
from repro.anf import normalize
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
)
from repro.gen.random_terms import random_program
from repro.incr import (
    ANALYZERS,
    IncrStore,
    analyze_incremental,
    run_analysis,
)
from repro.incr.hash import iter_nodes, replace_at
from repro.lang.ast import Num


def results_identical(a, b) -> bool:
    """Bit-identity of two analysis results (answer + store; the
    polyvariant result compares its per-context store map)."""
    if hasattr(a, "answer"):
        return a.answer == b.answer
    return a.value == b.value and a._store == b._store


def num_edit(term, rng=None, bump=1):
    """An edited copy of ``term``: one numeral changed."""
    paths = [
        path
        for path, node in iter_nodes(term)
        if isinstance(node, Num)
    ]
    if not paths:
        return None
    path = paths[0] if rng is None else rng.choice(paths)
    old = None
    for p, node in iter_nodes(term):
        if p == path:
            old = node
            break
    return replace_at(term, path, Num(old.value + bump))


def check_incremental(old, new, analyzer, **options):
    report = analyze_incremental(old, new, analyzer=analyzer, **options)
    scratch, _ = run_analysis(analyzer, new, **options)
    assert results_identical(report.result, scratch), (
        f"{analyzer}: incremental diverged from from-scratch"
    )
    return report


class TestCorpus:
    @pytest.mark.parametrize("analyzer", ANALYZERS)
    @pytest.mark.parametrize(
        "name", ["constants", "branchy", "factorial", "even-odd", "church"]
    )
    def test_corpus_edit_identity(self, name, analyzer):
        from repro.corpus import PROGRAMS

        program = PROGRAMS[name]
        lattice = Lattice(ConstPropDomain())
        initial = program.initial_for(lattice)
        edited = num_edit(program.term)
        if edited is None:
            pytest.skip("no numeral to edit")
        check_incremental(
            program.term, edited, analyzer, initial=initial
        )

    def test_reuse_actually_happens(self):
        # The flagship workload: an abstract-value-neutral edit on the
        # open Ackermann replays the recursive derivation.
        from repro.corpus import ackermann_open

        old = ackermann_open(1)
        new = ackermann_open(2)
        lattice = Lattice(ConstPropDomain())
        report = check_incremental(
            old.term,
            new.term,
            "semantic-cps",
            initial=old.initial_for(lattice),
            loop_mode="top",
        )
        assert report.reused > 0
        assert len(report.dirty_paths) == 1


class TestDomains:
    @pytest.mark.parametrize(
        "domain_cls",
        [ConstPropDomain, SignDomain, ParityDomain, IntervalDomain],
    )
    def test_domain_identity(self, domain_cls):
        from repro.corpus import PROGRAMS

        program = PROGRAMS["factorial"]
        domain = domain_cls()
        initial = program.initial_for(Lattice(domain))
        edited = num_edit(program.term)
        check_incremental(
            program.term,
            edited,
            "semantic-cps",
            domain=domain,
            initial=initial,
        )


class TestEngines:
    def test_plan_engine_falls_back(self):
        # The plan engine has no persistence: run_analysis returns no
        # recorder, analyze_incremental still agrees with scratch.
        from repro.corpus import PROGRAMS

        program = PROGRAMS["factorial"]
        initial = program.initial_for(Lattice(ConstPropDomain()))
        _, recorder = run_analysis(
            "direct",
            program.term,
            initial=initial,
            store=IncrStore(":memory:"),
            engine="plan",
        )
        assert recorder is None
        edited = num_edit(program.term)
        check_incremental(
            program.term, edited, "direct", initial=initial, engine="plan"
        )

    def test_uncached_run_skips_persistence(self):
        from repro.corpus import PROGRAMS

        program = PROGRAMS["constants"]
        initial = program.initial_for(Lattice(ConstPropDomain()))
        with IncrStore(":memory:") as store:
            _, recorder = run_analysis(
                "direct",
                program.term,
                initial=initial,
                store=store,
                cache=False,
            )
            assert recorder is None
            assert store.summary()["entries"] == 0


class TestLoopThresholdFamily:
    """The `loop-threshold-open-T-D` edit knob: a `loop` feeding a
    threshold conditional, with both the addend and the threshold as
    numerals an edit can move.  `loop` forces the Section 4.4 cut
    machinery, so this family covers the incremental path the plain
    numeral-edit corpus rows never reach."""

    @pytest.mark.parametrize("analyzer", ANALYZERS)
    def test_addend_edit_identity(self, analyzer):
        from repro.corpus import loop_threshold_open

        old = loop_threshold_open(10, 1)
        new = loop_threshold_open(10, 2)
        check_incremental(old.term, new.term, analyzer, loop_mode="top")

    @pytest.mark.parametrize("analyzer", ANALYZERS)
    def test_threshold_edit_identity(self, analyzer):
        from repro.corpus import loop_threshold_open

        old = loop_threshold_open(10, 1)
        new = loop_threshold_open(25, 1)
        check_incremental(old.term, new.term, analyzer, loop_mode="top")

    @pytest.mark.parametrize(
        "domain_cls",
        [ConstPropDomain, SignDomain, ParityDomain, IntervalDomain],
    )
    def test_domain_identity(self, domain_cls):
        from repro.corpus import loop_threshold_open

        old = loop_threshold_open(10, 1)
        new = loop_threshold_open(10, 3)
        for analyzer in ("direct", "pushdown"):
            check_incremental(
                old.term,
                new.term,
                analyzer,
                domain=domain_cls(),
                loop_mode="top",
            )

    def test_plan_engine_identity(self):
        from repro.corpus import loop_threshold_open

        old = loop_threshold_open(10, 1)
        new = loop_threshold_open(10, 2)
        for analyzer in ("direct", "semantic-cps", "syntactic-cps"):
            check_incremental(
                old.term, new.term, analyzer, loop_mode="top", engine="plan"
            )

    def test_pushdown_plan_rejected(self):
        from repro.analysis import EngineUnsupported
        from repro.corpus import loop_threshold_open

        old = loop_threshold_open(10, 1)
        new = loop_threshold_open(10, 2)
        with pytest.raises(EngineUnsupported):
            analyze_incremental(
                old.term,
                new.term,
                analyzer="pushdown",
                loop_mode="top",
                engine="plan",
            )

    def test_seeded_knob_pairs(self):
        # 40 seeded (threshold, addend) edit-pairs, analyzers rotating:
        # every knob move must stay bit-identical to scratch.
        from repro.corpus import loop_threshold_open

        for seed in range(40):
            rng = random.Random(seed)
            threshold = rng.randint(1, 40)
            addend = rng.randint(1, 9)
            old = loop_threshold_open(threshold, addend)
            if rng.random() < 0.5:
                new = loop_threshold_open(rng.randint(1, 40), addend)
            else:
                new = loop_threshold_open(threshold, rng.randint(1, 9))
            analyzer = ANALYZERS[seed % len(ANALYZERS)]
            check_incremental(
                old.term, new.term, analyzer, loop_mode="top"
            )


class TestSeededRandomEdits:
    # 300 seeded edit-pairs on small random closed programs, rotating
    # through the four analyzers.  Bit-identity must hold on every
    # pair; seeds whose programs blow the visit budget are skipped
    # (both sides would, identically).
    PAIRS = 300

    def test_random_edit_pairs(self):
        checked = 0
        for seed in range(self.PAIRS):
            rng = random.Random(seed)
            term = normalize(random_program(seed, max_depth=3))
            edited = num_edit(term, rng=rng, bump=rng.randint(1, 9))
            if edited is None:
                continue
            analyzer = ANALYZERS[seed % len(ANALYZERS)]
            try:
                check_incremental(
                    term, edited, analyzer, max_visits=20_000
                )
            except BudgetExceeded:
                continue
            checked += 1
        # The generator must not starve the suite of usable pairs.
        assert checked >= self.PAIRS // 2
