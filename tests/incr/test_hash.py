"""Tests for `repro.incr.hash`: Merkle structure digests, the
alpha-invariant `term_hash`, spine-only rehashing, path resolution,
and `merkle_diff`."""

import pytest

from repro.anf import normalize
from repro.cps import cps_transform
from repro.incr.hash import (
    TermHasher,
    iter_nodes,
    merkle_diff,
    node_children,
    replace_at,
    resolve_path,
    structure_hex,
    term_hash,
)
from repro.lang import parse
from repro.lang.ast import Num


def anf(source: str):
    return normalize(parse(source), ensure_unique=False)


FACT = """(let (fact (lambda (self)
                       (lambda (n)
                         (if0 n 1 (* n ((self self) (- n 1)))))))
            ((fact fact) 5))"""


class TestStructureDigest:
    def test_deterministic_across_objects(self):
        # Two structurally identical trees built separately hash equal.
        assert structure_hex(anf(FACT)) == structure_hex(anf(FACT))

    def test_name_sensitive(self):
        # Structure digests are literal: renaming a binder changes them
        # (the analyzers' judgments mention names, so the store must
        # distinguish them).
        a = anf("(let (x 1) (+ x 2))")
        b = anf("(let (y 1) (+ y 2))")
        assert structure_hex(a) != structure_hex(b)

    def test_scalar_sensitive(self):
        a = anf("(+ 1 2)")
        b = anf("(+ 1 3)")
        assert structure_hex(a) != structure_hex(b)

    def test_covers_cps_trees(self):
        cps = cps_transform(anf(FACT))
        assert structure_hex(cps) == structure_hex(cps_transform(anf(FACT)))

    def test_spine_only_rehash(self):
        # After hashing the old tree, an edit splicing a new leaf only
        # re-hashes the rebuilt spine: the cache grows by at most the
        # spine length plus the replacement sub-tree.
        hasher = TermHasher()
        term = anf(FACT)
        hasher.digest(term)
        size = len(term_nodes(term))
        assert len(hasher) == size
        path = num_paths(term)[0]
        edited = replace_at(term, path, Num(42))
        hasher.digest(edited)
        rehashed = len(hasher) - size
        assert rehashed <= len(path) + 1


def term_nodes(term):
    return [node for _, node in iter_nodes(term)]


def num_paths(term):
    return [
        path
        for path, node in iter_nodes(term)
        if isinstance(node, Num)
    ]


class TestTermHash:
    def test_alpha_invariant(self):
        a = anf("(let (x 1) (lambda (y) (+ x y)))")
        b = anf("(let (u 1) (lambda (v) (+ u v)))")
        assert term_hash(a) == term_hash(b)

    def test_free_variables_literal(self):
        # Free variables are analysis assumptions keyed by name: they
        # must NOT be canonicalized away.
        assert term_hash(anf("(+ g 1)")) != term_hash(anf("(+ h 1)"))

    def test_distinguishes_structure(self):
        assert term_hash(anf("(+ 1 2)")) != term_hash(anf("(* 1 2)"))

    def test_shadowing_respected(self):
        a = anf("(lambda (x) (lambda (x) x))")
        b = anf("(lambda (x) (lambda (y) x))")
        assert term_hash(a) != term_hash(b)

    def test_deep_terms_do_not_overflow(self):
        from repro.corpus import top_conditional_chain

        # A deep let-spine: _alpha_digest recursion must survive (it
        # raises the interpreter recursion limit for the walk).
        assert term_hash(top_conditional_chain(64).term)


class TestPaths:
    def test_resolve_path_roundtrip(self):
        term = anf(FACT)
        for path, node in iter_nodes(term):
            assert resolve_path(term, path) is node

    def test_replace_at_shares_siblings(self):
        term = anf("(let (a (+ 1 2)) (let (b (+ 3 4)) (+ a b)))")
        path = num_paths(term)[0]
        edited = replace_at(term, path, Num(9))
        assert resolve_path(edited, path) == Num(9)
        # Unchanged sub-trees are the same objects, not copies.
        old_children = node_children(term)
        new_children = node_children(edited)
        shared = sum(
            1 for a, b in zip(old_children, new_children) if a is b
        )
        assert shared == len(old_children) - 1

    def test_replace_at_bad_index(self):
        with pytest.raises(IndexError):
            replace_at(anf("(+ 1 2)"), (17,), Num(0))


class TestMerkleDiff:
    def test_identical_trees_are_clean(self):
        term = anf(FACT)
        assert merkle_diff(term, anf(FACT)) == []

    def test_single_edit_single_path(self):
        term = anf(FACT)
        for path in num_paths(term):
            edited = replace_at(term, path, Num(1234))
            assert merkle_diff(term, edited) == [path]

    def test_shape_change_reports_enclosing_node(self):
        old = anf("(let (x (+ 1 2)) x)")
        new = anf("(let (x (lambda (y) y)) x)")
        dirty = merkle_diff(old, new)
        assert len(dirty) == 1
        # The dirty path covers the whole rebound binding, not a leaf.
        assert resolve_path(new, dirty[0]).__class__.__name__ in (
            "Let",
            "Lam",
        )

    def test_multiple_edits(self):
        term = anf("(let (a (+ 1 2)) (let (b (+ 3 4)) (+ a b)))")
        paths = num_paths(term)[:2]
        edited = term
        for path in paths:
            edited = replace_at(edited, path, Num(77))
        assert merkle_diff(term, edited) == sorted(paths)
