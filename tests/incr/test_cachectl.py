"""Tests for the ``repro cachectl`` store-administration command."""

import json

import pytest

from repro.cli import main
from repro.incr.driver import STORE_ENV


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def store(tmp_path):
    return str(tmp_path / "incr.sqlite")


class TestPath:
    def test_explicit_store(self, capsys, store):
        code, out, _ = run_cli(capsys, "cachectl", "path", "--store", store)
        assert code == 0
        assert out.strip() == store

    def test_env_override(self, capsys, store, monkeypatch):
        monkeypatch.setenv(STORE_ENV, store)
        code, out, _ = run_cli(capsys, "cachectl", "path")
        assert code == 0
        assert out.strip() == store


class TestWarmStatsGc:
    def test_full_cycle(self, capsys, store):
        code, out, _ = run_cli(
            capsys,
            "cachectl", "warm", "--store", store,
            "--corpus", "factorial", "--analyzer", "semantic-cps",
        )
        assert code == 0
        assert "factorial" in out

        code, out, _ = run_cli(
            capsys, "cachectl", "stats", "--store", store, "--json"
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] > 0
        entries = stats["entries"]

        code, out, _ = run_cli(
            capsys,
            "cachectl", "gc", "--store", store, "--max-bytes", "0",
            "--json",
        )
        assert code == 0
        report = json.loads(out)
        assert report["evicted"] == entries
        assert report["bytes"] == 0

        code, out, _ = run_cli(
            capsys, "cachectl", "stats", "--store", store, "--json"
        )
        assert json.loads(out)["entries"] == 0

    def test_stats_human_readable(self, capsys, store):
        run_cli(capsys, "cachectl", "warm", "--store", store,
                "--corpus", "constants")
        code, out, _ = run_cli(capsys, "cachectl", "stats", "--store", store)
        assert code == 0
        assert "schema" in out and "entries" in out

    def test_gc_requires_max_bytes(self, capsys, store):
        with pytest.raises(SystemExit):
            run_cli(capsys, "cachectl", "gc", "--store", store)

    def test_warm_rejects_unknown_corpus(self, capsys, store):
        with pytest.raises(SystemExit):
            run_cli(
                capsys,
                "cachectl", "warm", "--store", store,
                "--corpus", "no-such-program",
            )

    def test_warmed_store_serves_later_sessions(self, capsys, store):
        # The whole point of warm: a later analysis session over the
        # same program starts from the persisted summaries.
        from repro.corpus import PROGRAMS
        from repro.domains import ConstPropDomain, Lattice
        from repro.incr import IncrStore, run_analysis

        run_cli(capsys, "cachectl", "warm", "--store", store,
                "--corpus", "factorial", "--analyzer", "semantic-cps")
        program = PROGRAMS["factorial"]
        initial = program.initial_for(Lattice(ConstPropDomain()))
        with IncrStore(store) as handle:
            result, _ = run_analysis(
                "semantic-cps",
                program.term,
                initial=initial,
                store=handle,
                loop_mode="top",
            )
            assert handle.stats.hits > 0
        assert result.stats.visits == 1
