"""Tests for `repro.incr.plans`: the persistent ``kind=plan`` tier.

Covers the codec round trip (serialize → persist → load → field- and
run-identical plans), the defensive decode paths (schema drift and
corrupt rows fall through to the compiler, never to a wrong answer),
the `PlanCache` integration (a fresh cache over a warm store loads
instead of compiling), cross-process warm starts, and SIGKILL-mid-
write recovery of the underlying store.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro import incr
from repro.corpus import PROGRAMS
from repro.cps import cps_transform
from repro.incr.plans import (
    PlanPersistTier,
    attach_plan_store,
    decode_anf_plan,
    decode_cps_plan,
    encode_anf_plan,
    encode_cps_plan,
    plan_cfg,
)
from repro.incr.store import KIND_PLAN, IncrStore
from repro.machine.absplan import (
    AnfPlan,
    CpsPlan,
    PlanCache,
    compile_anf_plan,
    compile_cps_plan,
    optimize_anf_plan,
)

TERM = PROGRAMS["factorial"].term
CTERM = cps_transform(TERM)


def plans_equal(left, right) -> bool:
    return type(left) is type(right) and all(
        getattr(left, slot) == getattr(right, slot)
        for slot in type(left).__slots__
    )


class TestCodec:
    def test_anf_round_trip_is_field_identical(self):
        plan = compile_anf_plan(TERM)
        payload = encode_anf_plan(plan, TERM)
        assert payload is not None
        loaded = decode_anf_plan(payload, TERM)
        assert plans_equal(loaded, plan)

    def test_cps_round_trip_is_field_identical(self):
        plan = compile_cps_plan(CTERM)
        payload = encode_cps_plan(plan, CTERM)
        assert payload is not None
        loaded = decode_cps_plan(payload, CTERM)
        assert plans_equal(loaded, plan)

    def test_round_trip_over_whole_corpus(self):
        for program in PROGRAMS.values():
            plan = compile_anf_plan(program.term)
            loaded = decode_anf_plan(
                encode_anf_plan(plan, program.term), program.term
            )
            assert plans_equal(loaded, plan), program.name
            cterm = cps_transform(program.term)
            cplan = compile_cps_plan(cterm)
            cloaded = decode_cps_plan(encode_cps_plan(cplan, cterm), cterm)
            assert plans_equal(cloaded, cplan), program.name

    def test_optimized_plans_are_not_serializable(self):
        # Only base plans persist: the optimized tier is derived
        # in-process (its interning is against live entry tables).
        plan = optimize_anf_plan(compile_anf_plan(TERM))
        assert encode_anf_plan(plan, TERM) is None

    def test_decode_against_wrong_term_is_none(self):
        # A digest collision cannot happen, but a shape mismatch must
        # still fail closed: indices past the smaller tree are a miss.
        payload = encode_anf_plan(compile_anf_plan(TERM), TERM)
        other = PROGRAMS["constants"].term
        assert decode_anf_plan(payload, other) is None

    def test_decode_garbage_is_none(self):
        assert decode_anf_plan("not json", TERM) is None
        assert decode_anf_plan('{"schema": 1}', TERM) is None
        assert decode_cps_plan("[]", CTERM) is None

    def test_wrong_kind_is_none(self):
        # An anf row must never decode as a cps plan or vice versa.
        anf_payload = encode_anf_plan(compile_anf_plan(TERM), TERM)
        assert decode_cps_plan(anf_payload, CTERM) is None
        cps_payload = encode_cps_plan(compile_cps_plan(CTERM), CTERM)
        assert decode_anf_plan(cps_payload, TERM) is None


class TestTier:
    def test_miss_then_save_then_load(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            tier = PlanPersistTier(store)
            assert tier.load("anf", TERM) is None
            assert tier.snapshot()["misses"] == 1
            assert tier.save("anf", TERM, compile_anf_plan(TERM))
            loaded = tier.load("anf", TERM)
            assert plans_equal(loaded, compile_anf_plan(TERM))
            assert tier.snapshot()["loads"] == 1
            assert tier.snapshot()["saves"] == 1

    def test_rows_survive_reopen(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            PlanPersistTier(store).save("anf", TERM, compile_anf_plan(TERM))
        with IncrStore(path) as store:
            loaded = PlanPersistTier(store).load("anf", TERM)
            assert plans_equal(loaded, compile_anf_plan(TERM))

    def test_codec_schema_bump_is_a_clean_miss(self, tmp_path, monkeypatch):
        # A schema bump changes the cfg string, so old rows become
        # unreachable — a miss and a recompile, never a decode of a
        # stale layout.
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            tier = PlanPersistTier(store)
            tier.save("anf", TERM, compile_anf_plan(TERM))
            monkeypatch.setattr(incr.plans, "PLAN_CODEC_SCHEMA", 999)
            fresh = PlanPersistTier(store)
            assert fresh.load("anf", TERM) is None
            snap = fresh.snapshot()
            assert snap["misses"] == 1
            assert snap["rejects"] == 0
            assert snap["cfg"].startswith("plan/999/")

    def test_engine_drift_inside_payload_is_rejected(self, tmp_path):
        # Belt and braces below the cfg key: a payload whose embedded
        # engine stamp disagrees is dropped (reject), not decoded.
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            tier = PlanPersistTier(store)
            tier.save("anf", TERM, compile_anf_plan(TERM))
            subject = tier._subject(TERM)
            payload = store.get(plan_cfg(), KIND_PLAN, subject, "anf")
            store.put(
                plan_cfg(),
                KIND_PLAN,
                subject,
                "anf",
                payload.replace('"engine":', '"engine":9'),
            )
            assert tier.load("anf", TERM) is None
            assert tier.snapshot()["rejects"] == 1

    def test_corrupt_row_is_rejected_and_counted(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            tier = PlanPersistTier(store)
            store.put(
                plan_cfg(), KIND_PLAN, tier._subject(TERM), "anf", "garbage"
            )
            assert tier.load("anf", TERM) is None
            snap = tier.snapshot()
            assert snap["rejects"] == 1
            assert snap["misses"] == 1

    def test_store_summary_breaks_out_plan_kind(self, tmp_path):
        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            tier = PlanPersistTier(store)
            tier.save("anf", TERM, compile_anf_plan(TERM))
            tier.save("cps", CTERM, compile_cps_plan(CTERM))
            by_kind = store.summary()["by_kind"]
            assert by_kind[KIND_PLAN]["entries"] == 2
            assert by_kind[KIND_PLAN]["payload_bytes"] > 0


class TestPlanCacheIntegration:
    def test_fresh_cache_loads_instead_of_compiling(self, tmp_path):
        # Two PlanCache instances over one store file model a process
        # restart: the second must serve every plan from disk.
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            cold = PlanCache()
            cold.attach_persist(PlanPersistTier(store))
            first_anf = cold.anf_plan(TERM, "base")
            first_cps = cold.cps_plan(CTERM, "base")
            snap = cold.snapshot()
            assert snap["compiles"] == 2
            assert snap["persisted"] == 2
        with IncrStore(path) as store:
            warm = PlanCache()
            warm.attach_persist(PlanPersistTier(store))
            again_anf = warm.anf_plan(TERM, "base")
            again_cps = warm.cps_plan(CTERM, "base")
            snap = warm.snapshot()
            assert snap["compiles"] == 0
            assert snap["disk_loads"] == 2
            assert plans_equal(again_anf, first_anf)
            assert plans_equal(again_cps, first_cps)

    def test_opt_tier_is_derived_from_the_loaded_base(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with IncrStore(path) as store:
            cold = PlanCache()
            cold.attach_persist(PlanPersistTier(store))
            cold.anf_plan(TERM, "base")
        with IncrStore(path) as store:
            warm = PlanCache()
            tier = PlanPersistTier(store)
            warm.attach_persist(tier)
            opt = warm.anf_plan(TERM, "opt")
            assert opt.optimized
            snap = warm.snapshot()
            assert snap["compiles"] == 0
            assert snap["disk_loads"] == 1
            # Only the base plan touched disk; the optimized plan was
            # derived in-process.
            assert tier.snapshot()["loads"] == 1

    def test_attach_plan_store_points_the_global_cache(self, tmp_path):
        from repro.machine.absplan import PLAN_CACHE

        with IncrStore(str(tmp_path / "s.sqlite")) as store:
            tier = attach_plan_store(store)
            try:
                assert PLAN_CACHE.persist is tier
            finally:
                attach_plan_store(None)
            assert PLAN_CACHE.persist is None


WARM_RUN_SCRIPT = """
import sys
from repro.analysis.direct import analyze_direct
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.corpus import PROGRAMS
from repro.cps import cps_transform
from repro.domains import ConstPropDomain, Lattice
from repro.incr.plans import attach_plan_store
from repro.incr.store import IncrStore
from repro.machine.absplan import PLAN_CACHE

program = PROGRAMS["factorial"]
initial = program.initial_for(Lattice(ConstPropDomain()))
with IncrStore(sys.argv[1]) as store:
    attach_plan_store(store)
    result = analyze_direct(program.term, initial=initial, engine="plan")
    cps_result = analyze_syntactic_cps(
        cps_transform(program.term), loop_mode="top", engine="plan"
    )
    attach_plan_store(None)
snap = PLAN_CACHE.snapshot()
print(snap["compiles"], snap["disk_loads"], flush=True)
print(repr((result.value, dict(result.store.items()))), flush=True)
print(repr(cps_result.value), flush=True)
"""


class TestCrossProcess:
    def _run(self, path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", WARM_RUN_SCRIPT, path],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        counters, answer, cps_answer = out.stdout.splitlines()
        compiles, disk_loads = map(int, counters.split())
        return compiles, disk_loads, answer, cps_answer

    def test_second_process_runs_warm_and_identical(self, tmp_path):
        # The tentpole end to end: process one compiles and persists,
        # process two loads every plan from disk (zero compiles) and
        # produces byte-identical answers.
        path = str(tmp_path / "s.sqlite")
        compiles1, loads1, answer1, cps1 = self._run(path)
        assert compiles1 == 2
        assert loads1 == 0
        compiles2, loads2, answer2, cps2 = self._run(path)
        assert compiles2 == 0
        assert loads2 == 2
        assert answer2 == answer1
        assert cps2 == cps1


CRASH_SCRIPT = """
import sys
from repro.corpus import PROGRAMS, top_conditional_chain
from repro.incr.plans import PlanPersistTier
from repro.incr.store import IncrStore
from repro.machine.absplan import compile_anf_plan

term = PROGRAMS["factorial"].term
store = IncrStore(sys.argv[1])
tier = PlanPersistTier(store)
tier.save("anf", term, compile_anf_plan(term))
print("ready", flush=True)
for k in range(2, 10_000):
    chain = top_conditional_chain(k).term
    tier.save("anf", chain, compile_anf_plan(chain))
"""


class TestCrashRecovery:
    def test_sigkill_mid_write_keeps_persisted_plans_loadable(
        self, tmp_path
    ):
        # Kill a writer mid-save-stream: the WAL rolls back the torn
        # transaction and every committed plan still decodes.
        path = str(tmp_path / "s.sqlite")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", CRASH_SCRIPT, path],
            stdout=subprocess.PIPE,
            env=env,
        )
        assert proc.stdout.readline().strip() == b"ready"
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        with IncrStore(path) as store:
            tier = PlanPersistTier(store)
            loaded = tier.load("anf", TERM)
            assert plans_equal(loaded, compile_anf_plan(TERM))
            # The handle still accepts writes after recovery.
            assert tier.save("cps", CTERM, compile_cps_plan(CTERM))
            assert plans_equal(
                tier.load("cps", CTERM), compile_cps_plan(CTERM)
            )
