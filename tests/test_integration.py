"""End-to-end integration tests across the whole pipeline.

Each test drives several subsystems in sequence — parse → normalize →
(transform) → interpret/analyze/compile/optimize — on the corpus, and
checks the cross-subsystem invariants hold together, not just in each
unit's own suite.
"""

import pytest

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct
from repro.anf import validate_anf
from repro.corpus import PROGRAMS
from repro.cps import TOP_KVAR, cps_pretty, cps_transform, parse_cps, uncps
from repro.domains import ConstPropDomain
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.syntax import free_variables
from repro.machine import compile_cps, compile_direct, run_code
from repro.opt import optimize

DOM = ConstPropDomain()

CLOSED_LIGHT = [
    name
    for name in sorted(PROGRAMS)
    if not PROGRAMS[name].heavy and not free_variables(PROGRAMS[name].term)
]


class TestFullPipelinePerProgram:
    @pytest.mark.parametrize("name", CLOSED_LIGHT)
    def test_parse_print_round_trip(self, name):
        term = PROGRAMS[name].term
        assert parse(pretty(term)) == term

    @pytest.mark.parametrize("name", CLOSED_LIGHT)
    def test_cps_round_trips_three_ways(self, name):
        term = PROGRAMS[name].term
        cps_term = cps_transform(term)
        # text round trip
        assert parse_cps(cps_pretty(cps_term)) == cps_term
        # inverse transformation round trip
        assert uncps(cps_term) == term

    @pytest.mark.parametrize("name", CLOSED_LIGHT)
    def test_interpreters_machines_and_analyzers_cohere(self, name):
        term = PROGRAMS[name].term
        concrete = run_direct(term, fuel=2_000_000)
        report = run_comparison(PROGRAMS[name], analyzers=THREE_WAY_ANALYZERS)
        # machine back ends agree with the interpreter
        if isinstance(concrete.value, int):
            direct_value, _ = run_code(compile_direct(term), fuel=10_000_000)
            cps_value, _ = run_code(
                compile_cps(report.cps_term),
                halt_kvar=TOP_KVAR,
                fuel=10_000_000,
            )
            assert direct_value == concrete.value
            assert cps_value == concrete.value
            # and every analyzer's answer describes the result
            for result in (report.direct, report.semantic):
                assert DOM.abstracts(result.value.num, concrete.value)
            assert DOM.abstracts(report.syntactic.value.num, concrete.value)

    @pytest.mark.parametrize("name", CLOSED_LIGHT)
    def test_optimizer_preserves_concrete_semantics(self, name):
        term = PROGRAMS[name].term
        before = run_direct(term, fuel=2_000_000)
        optimized = optimize(term, DOM, max_rounds=3)
        validate_anf(optimized.term)
        after = run_direct(optimized.term, fuel=2_000_000)
        if isinstance(before.value, int):
            assert after.value == before.value

    @pytest.mark.parametrize("name", CLOSED_LIGHT)
    def test_optimizer_never_grows_the_answer(self, name):
        term = PROGRAMS[name].term
        baseline = analyze_direct(term, DOM)
        optimized = optimize(term, DOM, max_rounds=3)
        lattice = baseline.lattice
        # the optimized program's analyzed value is at least as precise
        assert lattice.domain.leq(
            optimized.analysis.value.num, baseline.value.num
        ) or lattice.domain.leq(
            baseline.value.num, optimized.analysis.value.num
        )
