"""Cross-module property tests: invariants that tie the pipeline
together, checked on randomly generated programs.

Each property here involves at least two subsystems (parser ↔ printer,
normalizer ↔ interpreter, transformer ↔ validator ↔ analyzer), so they
live at the top level rather than in a per-package test module.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_direct, analyze_semantic_cps
from repro.analysis.delta import delta_value
from repro.anf import is_anf, normalize, validate_anf
from repro.cps import (
    TOP_KVAR,
    cps_transform,
    validate_cps,
)
from repro.domains import ConstPropDomain, Lattice
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty, pretty_flat
from repro.lang.rename import uniquify
from repro.lang.syntax import (
    free_variables,
    has_unique_binders,
    term_size,
)

DOM = ConstPropDomain()
LAT = Lattice(DOM)

seeds = st.integers(0, 2**32 - 1)
depths = st.integers(1, 5)


def gen(seed: int, depth: int):
    return random_closed_term(random.Random(seed), depth)


class TestParserPrinterRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_pretty_parse_identity(self, seed, depth):
        term = gen(seed, depth)
        assert parse(pretty(term)) == term
        assert parse(pretty_flat(term)) == term

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=depths, width=st.integers(8, 120))
    def test_round_trip_at_any_width(self, seed, depth, width):
        term = gen(seed, depth)
        assert parse(pretty(term, width=width)) == term


class TestUniquify:
    @settings(max_examples=80, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_establishes_invariant_and_preserves_shape(self, seed, depth):
        term = gen(seed, depth)
        renamed = uniquify(term)
        assert has_unique_binders(renamed)
        assert term_size(renamed) == term_size(term)
        assert free_variables(renamed) == free_variables(term)

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 4))
    def test_preserves_semantics(self, seed, depth):
        term = gen(seed, depth)
        before = run_direct(normalize(term), fuel=500_000)
        after = run_direct(normalize(uniquify(term)), fuel=500_000)
        if isinstance(before.value, int):
            assert after.value == before.value

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_idempotent_after_first_pass(self, seed, depth):
        renamed = uniquify(gen(seed, depth))
        assert uniquify(renamed) == renamed


class TestNormalization:
    @settings(max_examples=100, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_produces_valid_anf(self, seed, depth):
        term = normalize(gen(seed, depth))
        assert is_anf(term)
        validate_anf(term)

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_idempotent(self, seed, depth):
        term = normalize(gen(seed, depth))
        assert normalize(term) == term

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_preserves_free_variables(self, seed, depth):
        term = gen(seed, depth)
        assert free_variables(normalize(term)) == free_variables(term)


class TestTransformWellFormedness:
    @settings(max_examples=100, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_cps_image_validates(self, seed, depth):
        term = normalize(gen(seed, depth))
        validate_cps(cps_transform(term), frozenset((TOP_KVAR,)))

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=depths)
    def test_transform_deterministic(self, seed, depth):
        term = normalize(gen(seed, depth))
        assert cps_transform(term) == cps_transform(term)


class TestAnalysisInvariants:
    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 4))
    def test_analysis_deterministic(self, seed, depth):
        term = normalize(gen(seed, depth))
        first = analyze_direct(term, DOM)
        second = analyze_direct(term, DOM)
        assert first.answer == second.answer

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, depth=st.integers(1, 4))
    def test_semantic_analysis_deterministic(self, seed, depth):
        term = normalize(gen(seed, depth))
        first = analyze_semantic_cps(term, DOM)
        second = analyze_semantic_cps(term, DOM)
        assert first.answer == second.answer

    @settings(max_examples=80, deadline=None)
    @given(a=st.integers(0, 11), b=st.integers(0, 11))
    def test_delta_value_is_monotone(self, a, b):
        from repro.analysis.common import A_DEC, A_INC, AbsClo
        from repro.domains.absval import AbsVal
        from repro.domains.constprop import BOT, TOP
        from repro.lang.ast import Var

        clo = AbsClo("x", Var("x"))

        def val(seed: int) -> AbsVal:
            num = [BOT, 0, 1, TOP][seed % 4]
            clos = [frozenset(), frozenset({A_INC}), frozenset({clo, A_DEC})][
                (seed // 4) % 3
            ]
            return AbsVal(num, clos)

        x, y = val(a), val(b)
        if LAT.leq(x, y):
            assert LAT.leq(delta_value(x), delta_value(y))
