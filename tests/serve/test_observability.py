"""End-to-end observability: trace propagation across the HTTP
handler, worker pool, and plan engine; the access log; server timing;
the Prometheus endpoint; and the enriched health body."""

import io
import json
import os
import urllib.request

import pytest

from repro import __version__
from repro.serve.accesslog import (
    ACCESS_SCHEMA,
    AccessLog,
    validate_record,
)
from repro.serve.jobs import ServiceDefaults
from repro.serve.server import AnalysisService


@pytest.fixture()
def log_buffer():
    return io.StringIO()


@pytest.fixture()
def service(log_buffer):
    svc = AnalysisService(
        port=0,
        workers=2,
        queue_size=8,
        defaults=ServiceDefaults(debug_hooks=True),
        access_log=AccessLog(log_buffer, slow_threshold_s=0.0),
    )
    yield svc
    svc.drain(timeout=10)


def post(service, route, payload, traceparent=None):
    headers = {"Content-Type": "application/json"}
    if traceparent is not None:
        headers["traceparent"] = traceparent
    request = urllib.request.Request(
        f"{service.url}{route}",
        data=json.dumps(payload).encode("utf-8"),
        headers=headers,
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return (
            response.status,
            json.loads(response.read()),
            dict(response.headers),
        )


def log_records(log_buffer):
    return [
        json.loads(line)
        for line in log_buffer.getvalue().splitlines()
        if line
    ]


def unique_program(tag):
    # a fresh binder name defeats both the result cache and the
    # global plan cache, so plan.compile really fires
    return f"(let ({tag} 1) (+ {tag} 2))"


class TestTracePropagation:
    def test_one_trace_id_spans_handler_worker_and_plan_engine(
        self, service, log_buffer
    ):
        status, _, _ = post(service, "/v1/analyze", {
            "program": unique_program("obs_prop_a"),
            "analyzer": "direct",
            "engine": "plan",
        })
        assert status == 200
        (record,) = log_records(log_buffer)
        names = {span["name"] for span in record["spans"]}
        # handler-side: cache lookup; pool-side: queue wait; worker:
        # execute + serialize; plan engine: the compile itself
        assert {
            "cache.lookup", "queue.wait", "execute", "serialize",
            "plan.compile",
        } <= names
        assert {
            span["trace_id"] for span in record["spans"]
        } == {record["trace_id"]}

    def test_inbound_traceparent_continues_the_trace(
        self, service, log_buffer
    ):
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        _, _, headers = post(
            service, "/v1/analyze",
            {"corpus": "constants", "analyzer": "direct"},
            traceparent=header,
        )
        (record,) = log_records(log_buffer)
        assert record["trace_id"] == trace_id
        assert headers["traceparent"].startswith(f"00-{trace_id}-")

    def test_fresh_trace_minted_without_header(
        self, service, log_buffer
    ):
        _, _, headers = post(
            service, "/v1/run",
            {"corpus": "constants", "interpreter": "direct"},
        )
        (record,) = log_records(log_buffer)
        assert len(record["trace_id"]) == 32
        assert record["trace_id"] in headers["traceparent"]


class TestAccessLog:
    def test_one_valid_record_per_request(self, service, log_buffer):
        post(service, "/v1/analyze", {
            "corpus": "constants", "analyzer": "direct",
        })
        post(service, "/v1/lint", {"corpus": "branchy"})
        records = log_records(log_buffer)
        assert len(records) == 2
        for record in records:
            validate_record(record)
            assert record["schema"] == ACCESS_SCHEMA
            assert record["ok"] is True
            assert record["status"] == 200

    def test_record_carries_request_shape(self, service, log_buffer):
        post(service, "/v1/analyze", {
            "corpus": "factorial", "analyzer": "semantic-cps",
        })
        (record,) = log_records(log_buffer)
        assert record["route"] == "/v1/analyze"
        assert record["kind"] == "analyze"
        assert record["analyzer"] == "semantic-cps"
        assert record["domain"] == "constprop"
        assert record["corpus"] == "factorial"
        assert record["cache"] == "miss"
        assert record["queue_wait_s"] >= 0.0
        assert record["exec_s"] > 0.0
        assert record["total_s"] >= record["exec_s"]

    def test_replay_payload_reproduces_the_request(
        self, service, log_buffer
    ):
        post(service, "/v1/analyze", {
            "corpus": "factorial", "analyzer": "direct",
        })
        (first,) = log_records(log_buffer)
        # replaying the logged payload must be a cache hit: same key
        status, _, _ = post(service, "/v1/analyze", first["request"])
        assert status == 200
        second = log_records(log_buffer)[1]
        assert second["cache"] == "hit"

    def test_cache_hit_skips_the_pool(self, service, log_buffer):
        payload = {"corpus": "constants", "analyzer": "direct"}
        post(service, "/v1/analyze", payload)
        post(service, "/v1/analyze", payload)
        miss, hit = log_records(log_buffer)
        assert miss["cache"] == "miss"
        assert hit["cache"] == "hit"
        assert hit["queue_wait_s"] is None
        assert hit["exec_s"] is None

    def test_errors_carry_their_code(self, service, log_buffer):
        request = urllib.request.Request(
            f"{service.url}/v1/analyze",
            data=json.dumps({"corpus": "no-such-program"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        info.value.read()
        (record,) = log_records(log_buffer)
        assert record["ok"] is False
        assert record["error"] == "not_found"
        assert record["request"] is None

    def test_threshold_gates_span_capture(self):
        buffer = io.StringIO()
        svc = AnalysisService(
            port=0,
            workers=1,
            access_log=AccessLog(buffer, slow_threshold_s=3600.0),
        )
        try:
            post(svc, "/v1/analyze", {
                "corpus": "constants", "analyzer": "direct",
            })
        finally:
            svc.drain(timeout=10)
        (record,) = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
        ]
        assert "spans" not in record  # fast request, high threshold


class TestServerTiming:
    def test_breakdown_present_on_request(self, service):
        _, body, _ = post(service, "/v1/analyze", {
            "program": unique_program("obs_timing_a"),
            "analyzer": "direct",
            "engine": "plan",
            "server_timing": True,
        })
        timing = body["server_timing"]
        assert set(timing) == {
            "trace_id", "cache", "total_s", "queue_wait_s",
            "plan_compile_s", "analyze_s", "serialize_s",
        }
        assert timing["cache"] == "miss"
        assert timing["queue_wait_s"] >= 0.0
        assert timing["plan_compile_s"] > 0.0
        assert timing["analyze_s"] > 0.0
        assert timing["total_s"] >= timing["analyze_s"]

    def test_absent_by_default(self, service):
        _, body, _ = post(service, "/v1/analyze", {
            "corpus": "constants", "analyzer": "direct",
        })
        assert "server_timing" not in body

    def test_timing_request_shares_cache_with_plain_request(
        self, service, log_buffer
    ):
        payload = {"corpus": "higher-order", "analyzer": "direct"}
        _, plain, _ = post(service, "/v1/analyze", payload)
        _, timed, _ = post(service, "/v1/analyze", {
            **payload, "server_timing": True,
        })
        records = log_records(log_buffer)
        assert records[1]["cache"] == "hit"
        assert timed["server_timing"]["cache"] == "hit"
        stripped = {
            key: value
            for key, value in timed.items()
            if key != "server_timing"
        }
        assert stripped == plain

    def test_timing_excluded_from_trace_spans_pollution(self, service):
        # a cache-hit timing response reports no worker stages
        payload = {"corpus": "even-odd", "analyzer": "direct"}
        post(service, "/v1/analyze", payload)
        _, timed, _ = post(service, "/v1/analyze", {
            **payload, "server_timing": True,
        })
        timing = timed["server_timing"]
        assert timing["queue_wait_s"] is None
        assert timing["analyze_s"] is None


class TestPrometheusEndpoint:
    def test_text_exposition(self, service):
        post(service, "/v1/analyze", {
            "corpus": "constants", "analyzer": "direct",
        })
        with urllib.request.urlopen(
            f"{service.url}/metricsz?format=prom"
        ) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain"
            )
            text = response.read().decode("utf-8")
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"}' in text
        assert "repro_serve_request_seconds_count" in text
        assert "repro_serve_queue_depth" in text
        # every non-comment line is `name{labels} value` or `name value`
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part.startswith("repro_")
            if value not in ("+Inf", "NaN"):
                float(value)

    def test_json_metricsz_carries_quantiles(self, service):
        post(service, "/v1/analyze", {
            "corpus": "constants", "analyzer": "direct",
        })
        with urllib.request.urlopen(f"{service.url}/metricsz") as r:
            body = json.loads(r.read())
        hist = body["metrics"]["histograms"]["serve.request.seconds"]
        assert "p50" in hist and "p99" in hist


class TestHealthz:
    def test_version_pid_uptime(self, service):
        with urllib.request.urlopen(f"{service.url}/healthz") as r:
            health = json.loads(r.read())
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["pid"] == os.getpid()
        assert health["uptime_s"] >= 0.0
        assert health["workers"] == 2
