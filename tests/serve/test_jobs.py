"""Request validation and in-process execution.

The acceptance bar: the service's ``analyze`` responses are
bit-identical to the in-process `repro.analysis` API for every
analyzer × every corpus program (heavy programs run under a work
budget on both sides, and must fail identically).
"""

import json

import pytest

from repro.analysis import (
    analyze_direct,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.analysis.common import BudgetExceeded
from repro.analysis.delta import delta_store
from repro.corpus.programs import PROGRAMS
from repro.cps import cps_transform
from repro.domains import ConstPropDomain, Lattice
from repro.domains.store import AbsStore
from repro.serve.codes import ServeError
from repro.serve.jobs import (
    Deadline,
    ServiceDefaults,
    execute_request,
    prepare_request,
)

HEAVY_BUDGET = 20_000
ANALYZERS = ("direct", "semantic-cps", "syntactic-cps")


def _in_process(program, analyzer, max_visits):
    """The local-API result the service must reproduce exactly."""
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = program.initial_for(lattice)
    if analyzer == "direct":
        return analyze_direct(
            program.term, domain, initial=initial, max_visits=max_visits
        )
    if analyzer == "semantic-cps":
        return analyze_semantic_cps(
            program.term, domain, initial=initial, max_visits=max_visits
        )
    cps_initial = dict(
        delta_store(AbsStore(lattice, initial)).items()
    )
    return analyze_syntactic_cps(
        cps_transform(program.term),
        domain,
        initial=cps_initial,
        max_visits=max_visits,
    )


class TestAnalyzeBitIdentical:
    @pytest.mark.parametrize(
        "name", sorted(PROGRAMS), ids=sorted(PROGRAMS)
    )
    @pytest.mark.parametrize("analyzer", ANALYZERS)
    def test_every_analyzer_every_corpus_program(self, name, analyzer):
        program = PROGRAMS[name]
        budget = HEAVY_BUDGET if program.heavy else None
        payload = {"corpus": name, "analyzer": analyzer}
        if budget is not None:
            payload["max_visits"] = budget
        try:
            expected = _in_process(program, analyzer, budget)
        except BudgetExceeded:
            with pytest.raises(ServeError) as info:
                execute_request("analyze", payload)
            assert info.value.code == "budget_exceeded"
            return
        response = execute_request("analyze", payload)
        assert response["ok"] is True
        assert response["analyzer"] == analyzer
        # byte-level identity of the serialized result
        assert json.dumps(response["result"], sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        )

    def test_polyvariant_matches_collapse(self):
        from repro.analysis import analyze_polyvariant

        program = PROGRAMS["shivers-p33"]
        response = execute_request(
            "analyze",
            {"corpus": "shivers-p33", "analyzer": "polyvariant", "k": 1},
        )
        expected = analyze_polyvariant(
            program.term,
            ConstPropDomain(),
            k=1,
            initial={},
            max_visits=ServiceDefaults().max_visits,
        ).collapse()
        assert response["result"] == expected.to_dict()


class TestRun:
    def test_closed_program(self):
        response = execute_request("run", {"program": "(add1 41)"})
        assert response["value"] == 42

    @pytest.mark.parametrize(
        "interpreter", ("direct", "semantic", "syntactic")
    )
    def test_interpreters_agree(self, interpreter):
        response = execute_request(
            "run",
            {"program": "(* (+ 1 2) 4)", "interpreter": interpreter},
        )
        assert response["value"] == 12

    def test_assume(self):
        response = execute_request(
            "run", {"program": "(+ n 2)", "assume": {"n": 40}}
        )
        assert response["value"] == 42

    def test_unbound_variable_is_bad_request(self):
        with pytest.raises(ServeError) as info:
            execute_request("run", {"program": "(+ n 2)"})
        assert info.value.code == "bad_request"

    def test_syntactic_rejects_assume(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "run",
                {
                    "program": "(+ n 2)",
                    "interpreter": "syntactic",
                    "assume": {"n": 1},
                },
            )
        assert info.value.code == "bad_request"

    def test_fuel_exhausted(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "run",
                {
                    "program": "(let (f (lambda (s) (s s))) (f f))",
                    "fuel": 100,
                },
            )
        assert info.value.code == "fuel_exhausted"

    def test_diverged(self):
        with pytest.raises(ServeError) as info:
            execute_request("run", {"program": "(let (d (loop)) d)"})
        assert info.value.code == "diverged"


class TestValidation:
    def test_parse_error(self):
        with pytest.raises(ServeError) as info:
            execute_request("analyze", {"program": "((("})
        assert info.value.code == "parse_error"

    def test_unknown_corpus_is_not_found(self):
        with pytest.raises(ServeError) as info:
            execute_request("analyze", {"corpus": "no-such-program"})
        assert info.value.code == "not_found"

    def test_program_and_corpus_conflict(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "analyze", {"program": "(add1 1)", "corpus": "constants"}
            )
        assert info.value.code == "bad_request"

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError) as info:
            execute_request("analyze", {"program": "(add1 1)", "frob": 1})
        assert info.value.code == "bad_request"

    def test_bad_enum_rejected(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "analyze", {"program": "(add1 1)", "analyzer": "magic"}
            )
        assert info.value.code == "bad_request"

    def test_non_computable_loop(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "analyze",
                {
                    "program": "(let (d (loop)) d)",
                    "analyzer": "semantic-cps",
                },
            )
        assert info.value.code == "non_computable"

    def test_debug_sleep_requires_hooks(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "run", {"program": "(add1 1)", "debug_sleep_ms": 5}
            )
        assert info.value.code == "bad_request"
        # and with hooks enabled it is accepted but uncacheable
        prep = prepare_request(
            "run",
            {"program": "(add1 1)", "debug_sleep_ms": 5},
            ServiceDefaults(debug_hooks=True),
        )
        assert not prep.cacheable

    def test_server_budget_caps_request(self):
        defaults = ServiceDefaults(max_visits=50)
        prep = prepare_request(
            "analyze",
            {"program": "(add1 1)", "max_visits": 10_000_000},
            defaults,
        )
        assert prep.spec["max_visits"] == 50


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        deadline.check()

    def test_expiry_raises_timeout(self):
        clock = iter([0.0, 10.0, 20.0])
        deadline = Deadline(5.0, clock=lambda: next(clock))
        with pytest.raises(ServeError) as info:
            deadline.check()
        assert info.value.code == "timeout"

    def test_sleep_respects_deadline(self):
        defaults = ServiceDefaults(debug_hooks=True)
        with pytest.raises(ServeError) as info:
            execute_request(
                "run",
                {"program": "(add1 1)", "debug_sleep_ms": 2_000},
                defaults,
                deadline=Deadline(0.05),
            )
        assert info.value.code == "timeout"
