"""The multi-process sharded serve layer (`repro.serve.shard`).

The contracts under test: process-mode responses are byte-identical
to thread-mode ones (the shard runs the same prepare → cache →
execute → serialize pipeline), consistent-hash routing is stable,
``/v1/batch`` preserves order and isolates failures, a SIGKILLed
shard fails in-flight work with the retryable ``worker_crashed`` code
and respawns, and a process-mode server drains cleanly on SIGTERM.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import RetryPolicy, ServiceClient, ServiceError
from repro.serve.jobs import ServiceDefaults
from repro.serve.server import AnalysisService
from repro.serve.shard import ShardedExecutor, shard_index


@pytest.fixture(scope="module")
def process_service():
    svc = AnalysisService(
        port=0, workers=2, worker_model="process", queue_size=16
    )
    yield svc
    svc.drain(timeout=15)


@pytest.fixture()
def client(process_service):
    return ServiceClient(
        process_service.url,
        policy=RetryPolicy(retries=3, base_delay=0.02),
    )


class TestShardIndex:
    def test_consistent_and_in_range(self):
        key = "deadbeefcafebabe" + "0" * 48
        assert shard_index(key, 4, 0) == shard_index(key, 4, 3)
        for shards in (1, 2, 4, 7):
            assert 0 <= shard_index(key, shards, 0) < shards

    def test_uncacheable_round_robins(self):
        assert shard_index(None, 4, 0) == 0
        assert shard_index(None, 4, 1) == 1
        assert shard_index(None, 4, 5) == 1

    def test_keys_spread(self):
        # sha256 keys should not all land on one shard
        indexes = {
            shard_index(f"{seed:016x}" + "0" * 48, 4, 0)
            for seed in range(64)
        }
        assert len(indexes) > 1


# -- byte identity vs thread mode --------------------------------------

IDENTITY_REQUESTS = [
    ("analyze", {"corpus": "even-odd", "analyzer": "direct"}),
    ("analyze", {"corpus": "even-odd", "analyzer": "semantic-cps"}),
    ("analyze", {"corpus": "factorial", "analyzer": "polyvariant", "k": 1}),
    ("analyze", {"corpus": "theorem-5.1", "analyzer": "pushdown"}),
    ("analyze", {"corpus": "higher-order", "engine": "plan"}),
    ("run", {"program": "(+ 1 2)"}),
    ("compare", {"corpus": "constants"}),
    ("lint", {"corpus": "branchy"}),
    # error paths must be identical too
    ("analyze", {"program": "(oops"}),
    ("analyze", {"corpus": "constants", "analyzer": "pushdown",
                 "engine": "plan"}),  # engine_unsupported
    ("analyze", {"corpus": "no-such-program"}),
    ("run", {}),
]


class TestByteIdentity:
    def test_sharded_bodies_match_thread_mode(self, process_service):
        thread_svc = AnalysisService(port=0, workers=2)
        try:
            for kind, payload in IDENTITY_REQUESTS:
                t_status, t_body = thread_svc.process(kind, dict(payload))
                p_status, p_body = process_service.process(
                    kind, dict(payload)
                )
                assert (t_status, t_body) == (p_status, p_body), (
                    f"{kind} {payload} diverged between worker models"
                )
        finally:
            thread_svc.drain(timeout=10)

    def test_repeat_hits_the_shard_cache(self, process_service, client):
        before = client.metricsz()["cache"]["hits"]
        first = client.analyze(corpus="even-odd", analyzer="direct")
        second = client.analyze(corpus="even-odd", analyzer="direct")
        assert first == second
        assert client.metricsz()["cache"]["hits"] > before


class TestBatch:
    def test_order_and_isolation(self, client):
        batch = client.batch([
            {"kind": "analyze", "body": {"corpus": "even-odd"}},
            {"kind": "run", "body": {"program": "(* 3 4)"}},
            {"kind": "analyze", "body": {"program": "(broken"}},
            {"kind": "lint", "body": {"corpus": "branchy"}},
        ])
        assert batch["ok"] is True
        assert batch["kind"] == "batch"
        assert batch["count"] == 4
        statuses = [item["status"] for item in batch["results"]]
        assert statuses == [200, 200, 400, 200]
        # results are positional: item 1 is the run of (* 3 4)
        assert batch["results"][1]["body"]["value"] == 12
        error = batch["results"][2]["body"]["error"]
        assert error["code"] == "parse_error"

    def test_empty_batch_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.batch([])
        assert info.value.code == "bad_request"

    def test_unknown_kind_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.batch([{"kind": "frobnicate", "body": {}}])
        assert info.value.code == "bad_request"

    def test_oversized_batch_rejected(self, client):
        items = [
            {"kind": "run", "body": {"program": "(+ 1 1)"}}
        ] * 65
        with pytest.raises(ServiceError) as info:
            client.batch(items)
        assert info.value.code == "bad_request"

    def test_batch_works_in_thread_mode_too(self):
        svc = AnalysisService(port=0, workers=2)
        try:
            client = ServiceClient(
                svc.url, policy=RetryPolicy(retries=0)
            )
            batch = client.batch([
                {"kind": "run", "body": {"program": "(+ 2 2)"}},
            ])
            assert batch["results"][0]["status"] == 200
        finally:
            svc.drain(timeout=10)


class TestAggregation:
    def test_healthz_lists_live_shards(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["worker_model"] == "process"
        assert health["workers"] == 2
        shards = health["shards"]
        assert len(shards) == 2
        assert [s["index"] for s in shards] == [0, 1]
        for shard in shards:
            assert shard["alive"] is True
            assert isinstance(shard["pid"], int)
            assert shard["pid"] != os.getpid()

    def test_metricsz_aggregates_shard_caches(self, client):
        client.analyze(corpus="even-odd")  # ensure some cache traffic
        metrics = client.metricsz()
        assert metrics["worker_model"] == "process"
        cache = metrics["cache"]
        for key in ("hits", "misses", "size", "capacity", "evictions"):
            assert isinstance(cache[key], int)
        assert cache["hits"] + cache["misses"] > 0
        shards = metrics["shards"]
        assert len(shards) == 2
        for shard in shards:
            assert shard["alive"] is True
            # per-shard cache + plan-cache stats came over the pipe
            assert "cache" in shard
            assert "plan_cache" in shard
        assert metrics["queue"]["draining"] is False


class TestCrashRecovery:
    def test_mid_request_sigkill_returns_worker_crashed(self):
        svc = AnalysisService(
            port=0,
            workers=1,
            worker_model="process",
            defaults=ServiceDefaults(debug_hooks=True),
        )
        try:
            no_retry = ServiceClient(
                svc.url, policy=RetryPolicy(retries=0)
            )
            pid = svc.health()["shards"][0]["pid"]
            error: dict = {}

            import threading

            def slow_request():
                try:
                    no_retry.run(
                        program="(add1 1)", debug_sleep_ms=3_000
                    )
                except ServiceError as exc:
                    error["code"] = exc.code
                    error["status"] = exc.status

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.5)  # request is in flight on the shard
            os.kill(pid, signal.SIGKILL)
            thread.join(timeout=10)
            assert error == {"code": "worker_crashed", "status": 503}
            # worker_crashed is retryable by contract
            from repro.serve.codes import CODES

            assert CODES["worker_crashed"].retryable is True
        finally:
            svc.drain(timeout=10)

    def test_respawned_shard_keeps_serving(self):
        svc = AnalysisService(port=0, workers=2, worker_model="process")
        try:
            retrying = ServiceClient(
                svc.url, policy=RetryPolicy(retries=4, base_delay=0.05)
            )
            reference = retrying.analyze(corpus="even-odd")
            pids = [s["pid"] for s in svc.health()["shards"]]
            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                health = svc.health()
                if (
                    health["shard_respawns"] >= 1
                    and all(s["alive"] for s in health["shards"])
                ):
                    break
                time.sleep(0.05)
            health = svc.health()
            assert health["shard_respawns"] >= 1
            assert all(s["alive"] for s in health["shards"])
            after = [s["pid"] for s in health["shards"]]
            assert after[0] != pids[0]
            assert after[1] == pids[1]  # only the dead shard respawned
            # identical request, identical answer, fresh shard
            assert retrying.analyze(corpus="even-odd") == reference
        finally:
            svc.drain(timeout=10)


class TestDrain:
    def test_executor_drain_stops_shards(self):
        executor = ShardedExecutor(shards=2, queue_size=4)
        pids = [h.pid for h in executor._handles]
        assert executor.drain(timeout=10) is True
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert executor.drain(timeout=10) is True  # idempotent

    def test_submit_while_draining_is_overloaded(self):
        executor = ShardedExecutor(shards=1, queue_size=4)
        executor.drain(timeout=10)
        from repro.serve.codes import ServeError

        with pytest.raises(ServeError) as info:
            executor.submit(None, "run", {"program": "(+ 1 1)"}, None, None)
        assert info.value.code == "overloaded"

    def test_spawned_process_server_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (os.path.abspath(src_root), env.get("PYTHONPATH"))
            if p
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--worker-model", "process",
                "--workers", "2",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            url = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                match = re.search(r"listening on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, "server never announced its port"
            client = ServiceClient(url, policy=RetryPolicy(retries=2))
            health = client.healthz()
            assert health["worker_model"] == "process"
            shard_pids = [s["pid"] for s in health["shards"]]
            assert client.run(program="(+ 20 22)")["value"] == 42
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            # the drain took the shard processes down with it
            for pid in shard_pids:
                with pytest.raises(ProcessLookupError):
                    os.kill(pid, 0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            if process.stderr is not None:
                process.stderr.close()


class TestAccessLogRemoteSpans:
    def test_access_log_carries_shard_spans(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        svc = AnalysisService(
            port=0,
            workers=2,
            worker_model="process",
            access_log=str(log_path),
            slow_threshold_s=0.0,
        )
        try:
            client = ServiceClient(
                svc.url, policy=RetryPolicy(retries=2)
            )
            client.analyze(corpus="even-odd")
        finally:
            svc.drain(timeout=10)
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(records) == 1
        record = records[0]
        assert record["status"] == 200
        assert record["cache"] in ("hit", "miss")
        # spans crossed the process hop: the shard's trace is in the
        # dispatcher's access log
        names = {span["name"] for span in record["spans"]}
        assert "queue.wait" in names
        assert "execute" in names
