"""POST /v1/lint: validation, parity with run_lints, live server."""

import pytest

from repro.corpus.programs import PROGRAMS
from repro.lint import run_lints
from repro.serve.client import RetryPolicy, ServiceClient
from repro.serve.codes import ServeError
from repro.serve.jobs import ServiceDefaults, execute_request
from repro.serve.server import AnalysisService


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "lint", {"program": "(add1 1)", "frobnicate": True}
            )
        assert info.value.code == "bad_request"

    def test_unknown_analyzer_rejected(self):
        with pytest.raises(ServeError) as info:
            execute_request(
                "lint", {"program": "(add1 1)", "analyzer": "magic"}
            )
        assert info.value.code == "bad_request"

    def test_parse_error_classified(self):
        with pytest.raises(ServeError) as info:
            execute_request("lint", {"program": "((("})
        assert info.value.code == "parse_error"


class TestInProcess:
    def test_report_matches_run_lints(self):
        body = execute_request(
            "lint",
            {"corpus": "theorem-5.2-conditional", "analyzer": "syntactic-cps"},
        )
        assert body["ok"] and body["kind"] == "lint"
        expected = run_lints(
            PROGRAMS["theorem-5.2-conditional"], analyzer="syntactic-cps"
        )
        assert body["report"] == expected.as_dict()

    def test_raw_source_keeps_syntactic_findings(self):
        # the lint kind must see the program *as written*: free
        # variables are not topped up with ⊤ (unlike /v1/analyze), so
        # S102 still fires through the service
        body = execute_request("lint", {"program": "(let (x (f 1)) x)"})
        codes = [d["code"] for d in body["report"]["diagnostics"]]
        assert "S102" in codes

    def test_fix_flag_round_trips(self):
        body = execute_request(
            "lint", {"program": "(let (dead 1) 2)", "fix": True}
        )
        assert "dead" not in body["report"]["fixed_source"]

    def test_syntactic_only_skips_analysis(self):
        body = execute_request(
            "lint", {"corpus": "constants", "syntactic_only": True}
        )
        codes = {d["code"] for d in body["report"]["diagnostics"]}
        assert not any(code.startswith("L") for code in codes)


@pytest.fixture(scope="module")
def service():
    svc = AnalysisService(
        port=0,
        workers=2,
        queue_size=8,
        defaults=ServiceDefaults(debug_hooks=True),
    )
    yield svc
    svc.drain(timeout=10)


@pytest.fixture()
def client(service):
    return ServiceClient(
        service.url, policy=RetryPolicy(retries=3, base_delay=0.02)
    )


class TestLiveServer:
    def test_lint_route(self, client):
        body = client.lint(corpus="constants", analyzer="direct")
        assert body["ok"] and body["kind"] == "lint"
        assert body["analyzer"] == "direct"
        codes = {d["code"] for d in body["report"]["diagnostics"]}
        assert {"L002", "L003"} <= codes

    def test_analyzer_choice_changes_findings_over_http(self, client):
        direct = client.lint(
            corpus="theorem-5.2-conditional", analyzer="direct"
        )
        cps = client.lint(
            corpus="theorem-5.2-conditional", analyzer="semantic-cps"
        )
        direct_codes = {
            d["code"] for d in direct["report"]["diagnostics"]
        }
        cps_codes = {d["code"] for d in cps["report"]["diagnostics"]}
        assert "L003" in cps_codes - direct_codes
