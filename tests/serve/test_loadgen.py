"""The load generator: mixes, closed/open loops, the BENCH_serve
schema, replay, and the spawned-server smoke path."""

import io
import json

import pytest

from repro.serve.accesslog import AccessLog
from repro.serve.jobs import ServiceDefaults, prepare_request
from repro.serve.loadgen import (
    LOADGEN_SCHEMA,
    LoadRequest,
    RequestResult,
    RunOutcome,
    build_payload,
    corpus_mix,
    exact_quantile,
    replay_mix,
    run_closed_loop,
    run_loadgen,
    run_open_loop,
    unique_mix,
    validate_loadgen,
    validate_loadgen_file,
)
from repro.serve.server import AnalysisService


@pytest.fixture(scope="module")
def service():
    svc = AnalysisService(port=0, workers=2, queue_size=16)
    yield svc
    svc.drain(timeout=10)


class TestMixes:
    def test_corpus_mix_covers_every_post_route(self):
        assert {request.path for request in corpus_mix()} == {
            "/v1/analyze", "/v1/run", "/v1/compare", "/v1/lint",
        }

    def test_corpus_mix_payloads_validate(self):
        defaults = ServiceDefaults()
        for request in corpus_mix():
            prepare_request(
                request.path.rsplit("/", 1)[1],
                request.payload,
                defaults,
            )

    def test_unique_mix_requests_have_distinct_cache_keys(self):
        defaults = ServiceDefaults()
        keys = {
            prepare_request(
                "analyze", request.payload, defaults
            ).key
            for request in unique_mix(16)
        }
        assert len(keys) == 16

    def test_replay_mix_reads_request_payloads(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        log = AccessLog(log_path, slow_threshold_s=None)
        log.record(
            trace_id="ab" * 16, route="/v1/analyze", kind="analyze",
            status=200, error=None, cache="miss", total_s=0.01,
            request={"corpus": "constants", "analyzer": "direct"},
        )
        log.record(  # failed validation: nothing to replay
            trace_id="cd" * 16, route="/v1/analyze", kind="analyze",
            status=400, error="bad_request", cache="bypass",
            total_s=0.001, request=None,
        )
        log.close()
        requests = replay_mix(log_path)
        assert requests == [LoadRequest(
            "/v1/analyze",
            {"corpus": "constants", "analyzer": "direct"},
        )]

    def test_replay_of_empty_log_fails(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="no replayable"):
            replay_mix(empty)


class TestExactQuantile:
    def test_picks_by_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 0.5) == 51.0
        assert exact_quantile(values, 1.0) == 100.0

    def test_single_value(self):
        assert exact_quantile([0.25], 0.99) == 0.25

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)


class TestClosedLoop:
    def test_drives_a_live_service(self, service):
        outcome = run_closed_loop(
            service.url,
            corpus_mix(),
            concurrency=2,
            total=16,
            retries=1,
        )
        assert len(outcome.results) == 16
        assert all(result.ok for result in outcome.results)
        assert outcome.wall_s > 0

    def test_requires_a_stop_condition(self, service):
        with pytest.raises(ValueError, match="total or a duration"):
            run_closed_loop(service.url, corpus_mix())

    def test_errors_are_counted_not_raised(self, service):
        outcome = run_closed_loop(
            service.url,
            [LoadRequest("/v1/analyze", {"corpus": "nope"})],
            concurrency=1,
            total=3,
            retries=0,
        )
        assert all(not result.ok for result in outcome.results)
        assert {result.code for result in outcome.results} == {
            "not_found"
        }


class TestOpenLoop:
    def test_latency_charged_from_scheduled_arrival(self, service):
        outcome = run_open_loop(
            service.url,
            corpus_mix(),
            rate=100.0,
            duration_s=0.2,
            concurrency=4,
            retries=1,
        )
        assert len(outcome.results) == 20
        assert all(result.ok for result in outcome.results)
        # arrivals are paced: the run cannot finish faster than the
        # last scheduled arrival
        assert outcome.wall_s >= 19 * (1.0 / 100.0)

    def test_rejects_bad_parameters(self, service):
        with pytest.raises(ValueError, match="rate"):
            run_open_loop(service.url, corpus_mix(), rate=0, duration_s=1)
        with pytest.raises(ValueError, match="duration"):
            run_open_loop(
                service.url, corpus_mix(), rate=1, duration_s=0
            )


def make_outcome():
    results = [
        RequestResult("/v1/analyze", True, None, 0.010),
        RequestResult("/v1/analyze", True, None, 0.020),
        RequestResult("/v1/run", False, "timeout", 0.500),
        RequestResult("/v1/run", True, None, 0.015),
    ]
    return RunOutcome(results=results, wall_s=0.5, retries=1)


class TestPayload:
    def test_shape_and_validation(self):
        payload = build_payload(
            make_outcome(),
            mode="closed",
            mix_name="corpus",
            concurrency=2,
            generated_at="2026-08-08T00:00:00Z",
        )
        validate_loadgen(payload)
        assert payload["schema"] == LOADGEN_SCHEMA
        assert payload["requests"] == 4
        assert payload["ok"] == 3
        assert payload["errors"] == 1
        assert payload["errors_by_code"] == {"timeout": 1}
        assert payload["throughput_rps"] == 8.0
        assert payload["generated_at"] == "2026-08-08T00:00:00Z"
        assert payload["meta"]["mode"] == "closed"
        assert set(payload["routes"]) == {"/v1/analyze", "/v1/run"}

    def test_latency_block_is_monotone(self):
        latency = build_payload(
            make_outcome(), mode="closed", mix_name="corpus",
            concurrency=2,
        )["latency_s"]
        assert (
            latency["min"] <= latency["p50"] <= latency["p95"]
            <= latency["p99"] <= latency["max"]
        )

    @pytest.mark.parametrize("mutate,match", [
        (lambda p: p.update(schema="nope"), "schema"),
        (lambda p: p.pop("throughput_rps"), "throughput_rps"),
        (lambda p: p.update(ok=99), "ok"),
        (lambda p: p["latency_s"].update(p50=9e9), "monotone"),
        (lambda p: p["meta"].pop("python"), "python"),
        (lambda p: p.pop("latency_s"), "latency_s"),
        (lambda p: p["meta"].pop("server"), "server"),
        (
            lambda p: p["meta"].update(server={"spawned": True}),
            "workers",
        ),
    ])
    def test_validator_rejects_broken_payloads(self, mutate, match):
        payload = build_payload(
            make_outcome(), mode="closed", mix_name="corpus",
            concurrency=2,
        )
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_loadgen(payload)

    def test_empty_run_is_valid_without_latency(self):
        payload = build_payload(
            RunOutcome(), mode="closed", mix_name="corpus",
            concurrency=1,
        )
        validate_loadgen(payload)

    def test_server_meta_defaults_to_external(self):
        payload = build_payload(
            make_outcome(), mode="closed", mix_name="corpus",
            concurrency=2,
        )
        assert payload["meta"]["server"] == {"spawned": False}


class TestRunLoadgen:
    def test_against_running_service_writes_valid_file(
        self, service, tmp_path
    ):
        out = tmp_path / "BENCH_serve.json"
        payload = run_loadgen(
            service.url,
            quick=True,
            total=8,
            out=out,
            generated_at="2026-08-08T00:00:00Z",
        )
        on_disk = validate_loadgen_file(out)
        assert on_disk == payload
        assert payload["requests"] == 8
        assert payload["errors"] == 0
        assert payload["generated_at"] == "2026-08-08T00:00:00Z"
        assert "access_log" not in payload  # no spawned server
        assert payload["meta"]["server"] == {"spawned": False}

    def test_unknown_mix_rejected(self, service):
        with pytest.raises(ValueError, match="unknown mix"):
            run_loadgen(service.url, mix="nope", total=1)

    def test_unknown_mode_rejected(self, service):
        with pytest.raises(ValueError, match="unknown mode"):
            run_loadgen(service.url, mode="sideways", total=1)

    def test_replay_against_service(self, service, tmp_path):
        log_path = tmp_path / "access.jsonl"
        log = AccessLog(log_path, slow_threshold_s=None)
        log.record(
            trace_id="ab" * 16, route="/v1/analyze", kind="analyze",
            status=200, error=None, cache="miss", total_s=0.01,
            request={"corpus": "factorial", "analyzer": "direct"},
        )
        log.close()
        payload = run_loadgen(
            service.url,
            replay=log_path,
            total=4,
            quick=True,
            out=None,
        )
        assert payload["meta"]["mix"] == "replay"
        assert payload["requests"] == 4
        assert payload["errors"] == 0


class TestSpawnedServer:
    def test_spawn_run_validates_access_log(self, tmp_path):
        # the CI loadgen-smoke path: boot a private server, drive it,
        # drain it, and cross-check the access log it wrote
        out = tmp_path / "BENCH_serve.json"
        access = tmp_path / "access.jsonl"
        payload = run_loadgen(
            None,
            quick=True,
            total=12,
            out=out,
            access_log_path=access,
        )
        validate_loadgen_file(out)
        assert payload["requests"] == 12
        assert payload["errors"] == 0
        summary = payload["access_log"]
        assert summary["records"] == 12
        assert summary["with_spans"] == 12
        assert (
            summary["cache"]["hit"]
            + summary["cache"]["miss"]
            + summary["cache"]["bypass"]
        ) == 12
        # the log survives for replay
        with open(access, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 12
        record = json.loads(lines[0])
        assert record["trace_id"]
        assert record["spans"]
        assert payload["meta"]["server"] == {
            "spawned": True, "workers": 4, "args": [],
        }

    def test_server_args_reach_the_spawned_server(self, tmp_path):
        # --server-args passthrough: the spawned server really runs
        # the sharded process model, and the payload records exactly
        # what was measured.
        out = tmp_path / "BENCH_serve.json"
        access = tmp_path / "access.jsonl"
        payload = run_loadgen(
            None,
            quick=True,
            total=8,
            out=out,
            access_log_path=access,
            workers=2,
            server_args=["--worker-model", "process"],
        )
        validate_loadgen_file(out)
        assert payload["errors"] == 0
        assert payload["meta"]["server"] == {
            "spawned": True,
            "workers": 2,
            "args": ["--worker-model", "process"],
        }
