"""The HTTP server: routes, caching, backpressure, timeouts, drain."""

import threading
import time

import pytest

from repro.serve.client import RetryPolicy, ServiceClient, ServiceError
from repro.serve.jobs import ServiceDefaults, execute_request
from repro.serve.server import AnalysisService


@pytest.fixture(scope="module")
def service():
    svc = AnalysisService(
        port=0,
        workers=2,
        queue_size=8,
        defaults=ServiceDefaults(debug_hooks=True),
    )
    yield svc
    svc.drain(timeout=10)


@pytest.fixture()
def client(service):
    return ServiceClient(
        service.url, policy=RetryPolicy(retries=3, base_delay=0.02)
    )


class TestRoutes:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_corpus_listing(self, client):
        listing = client.corpus()
        names = {entry["name"] for entry in listing["programs"]}
        assert "theorem-5.1" in names
        assert any(
            "conditional-chain" in entry["name"]
            for entry in listing["families"]
        )

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("/v1/frobnicate", {})
        assert info.value.code == "not_found"
        assert info.value.status == 404

    def test_malformed_json_400(self, service):
        import urllib.request

        request = urllib.request.Request(
            f"{service.url}/v1/analyze",
            data=b"{not json",
            method="POST",
        )
        try:
            urllib.request.urlopen(request)
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        else:  # pragma: no cover
            pytest.fail("expected HTTP 400")

    def test_analyze_matches_in_process(self, client):
        payload = {"corpus": "theorem-5.2-conditional", "analyzer": "semantic-cps"}
        assert client.analyze(**payload) == execute_request(
            "analyze", dict(payload)
        )

    def test_compare_route(self, client):
        body = client.compare(corpus="theorem-5.1")
        assert body["verdicts"]["direct_vs_syntactic"] == "left-more-precise"

    def test_run_route(self, client):
        assert client.run(program="(add1 41)")["value"] == 42

    def test_error_payload_carries_code(self, client):
        with pytest.raises(ServiceError) as info:
            client.analyze(program="(((")
        assert info.value.code == "parse_error"
        assert info.value.status == 400


class TestCache:
    def test_repeat_request_hits_cache_with_identical_payload(self, client):
        payload = {"corpus": "constants", "analyzer": "direct"}
        before = client.metricsz()["cache"]["hits"]
        first = client.analyze(**payload)
        second = client.analyze(**payload)
        assert first == second
        after = client.metricsz()["cache"]["hits"]
        assert after >= before + 1

    def test_metricsz_shape(self, client):
        body = client.metricsz()
        assert {"metrics", "cache", "queue"} <= set(body)
        assert "serve.requests.total" in body["metrics"]["counters"]
        assert "hit_rate" in body["cache"]


class TestBackpressure:
    def test_overloaded_then_recovery(self):
        svc = AnalysisService(
            port=0,
            workers=1,
            queue_size=1,
            defaults=ServiceDefaults(debug_hooks=True),
        )
        try:
            holders = [
                threading.Thread(
                    target=lambda: ServiceClient(svc.url).run(
                        program="(add1 1)", debug_sleep_ms=500
                    ),
                    daemon=True,
                )
                for _ in range(2)
            ]
            for holder in holders:
                holder.start()
            time.sleep(0.15)  # both sleepers hold worker + queue slot

            impatient = ServiceClient(svc.url, policy=RetryPolicy(retries=0))
            with pytest.raises(ServiceError) as info:
                impatient.run(program="(add1 2)")
            assert info.value.code == "overloaded"
            assert info.value.status == 503

            patient = ServiceClient(
                svc.url, policy=RetryPolicy(retries=8, base_delay=0.05)
            )
            response = patient.run(program="(add1 2)")
            assert response["value"] == 3
            assert patient.retries_performed >= 1
            for holder in holders:
                holder.join(timeout=10)
        finally:
            svc.drain(timeout=10)

    def test_request_timeout(self):
        svc = AnalysisService(
            port=0,
            workers=1,
            queue_size=4,
            defaults=ServiceDefaults(
                debug_hooks=True, timeout_seconds=0.2
            ),
        )
        try:
            client = ServiceClient(svc.url, policy=RetryPolicy(retries=0))
            with pytest.raises(ServiceError) as info:
                client.run(program="(add1 1)", debug_sleep_ms=5_000)
            assert info.value.code == "timeout"
            assert info.value.status == 504
        finally:
            svc.drain(timeout=10)


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self):
        svc = AnalysisService(
            port=0,
            workers=1,
            queue_size=4,
            defaults=ServiceDefaults(debug_hooks=True),
        )
        results = {}

        def inflight():
            results["inflight"] = ServiceClient(svc.url).run(
                program="(add1 41)", debug_sleep_ms=400
            )

        thread = threading.Thread(target=inflight, daemon=True)
        thread.start()
        time.sleep(0.1)
        assert svc.drain(timeout=10) is True
        thread.join(timeout=10)
        # the in-flight request completed during the drain
        assert results["inflight"]["value"] == 42
        # and the server is gone: new connections are refused
        with pytest.raises(ServiceError) as info:
            ServiceClient(
                svc.url, policy=RetryPolicy(retries=0)
            ).healthz()
        assert info.value.code == "unreachable"

    def test_drain_is_idempotent(self):
        svc = AnalysisService(port=0, workers=1, queue_size=1)
        assert svc.drain(timeout=10) is True
        assert svc.drain(timeout=10) is True

    def test_submissions_during_drain_are_overloaded(self):
        svc = AnalysisService(port=0, workers=1, queue_size=1)
        svc.pool._closed.set()  # simulate the drain flag flipping first
        status, body = svc.process("run", {"program": "(add1 1)"})
        assert status == 503
        assert "overloaded" in body
        svc.drain(timeout=10)
