"""The CI smoke harness, run as a test: real subprocess, real SIGTERM."""

import sys

import pytest

from repro.serve.smoke import main


@pytest.mark.skipif(
    sys.platform == "win32", reason="SIGTERM drain is POSIX-only"
)
def test_smoke_harness_end_to_end(capsys):
    assert main() == 0
    out = capsys.readouterr().out
    assert '"ok": true' in out
