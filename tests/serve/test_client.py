"""The retrying client: backoff schedule, retryability, give-up."""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import RetryPolicy, ServiceClient, ServiceError


def _fake_server(script):
    """A tiny HTTP server answering POSTs from a list of
    ``(status, body_dict)`` entries (the last entry repeats)."""
    served = []

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args):
            pass

        def do_POST(self):
            index = min(len(served), len(script) - 1)
            status, body = script[index]
            served.append(status)
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    return httpd, f"http://127.0.0.1:{httpd.server_address[1]}", served


OVERLOADED = {
    "ok": False,
    "error": {"code": "overloaded", "message": "queue full"},
}
OK = {"ok": True, "value": 42}


class TestRetries:
    def test_recovers_from_overloaded_burst(self):
        httpd, url, served = _fake_server(
            [(503, OVERLOADED), (503, OVERLOADED), (200, OK)]
        )
        try:
            sleeps = []
            client = ServiceClient(
                url,
                policy=RetryPolicy(
                    retries=5,
                    rng=random.Random(7),
                    sleep=sleeps.append,
                ),
            )
            assert client.request("/v1/run", {}) == OK
            assert served == [503, 503, 200]
            assert client.retries_performed == 2
            assert len(sleeps) == 2
        finally:
            httpd.shutdown()

    def test_gives_up_after_budget(self):
        httpd, url, served = _fake_server([(503, OVERLOADED)])
        try:
            client = ServiceClient(
                url,
                policy=RetryPolicy(retries=2, sleep=lambda _: None),
            )
            with pytest.raises(ServiceError) as info:
                client.request("/v1/run", {})
            assert info.value.code == "overloaded"
            assert info.value.attempts == 3
            assert info.value.exit_code == 9
            assert served == [503, 503, 503]
        finally:
            httpd.shutdown()

    def test_semantic_errors_fail_fast(self):
        body = {
            "ok": False,
            "error": {"code": "parse_error", "message": "bad"},
        }
        httpd, url, served = _fake_server([(400, body)])
        try:
            client = ServiceClient(
                url, policy=RetryPolicy(retries=5, sleep=lambda _: None)
            )
            with pytest.raises(ServiceError) as info:
                client.request("/v1/analyze", {})
            assert info.value.code == "parse_error"
            assert served == [400]  # no retries
        finally:
            httpd.shutdown()

    def test_connection_refused_is_unreachable(self):
        client = ServiceClient(
            "http://127.0.0.1:1",  # reserved port: nothing listens
            policy=RetryPolicy(retries=1, sleep=lambda _: None),
        )
        with pytest.raises(ServiceError) as info:
            client.healthz()
        assert info.value.code == "unreachable"


class TestBackoffSchedule:
    def test_exponential_with_jitter_bounds(self):
        policy = RetryPolicy(
            retries=6,
            base_delay=0.1,
            factor=2.0,
            max_delay=1.0,
            rng=random.Random(0),
        )
        delays = [policy.delay(attempt) for attempt in range(6)]
        ceilings = [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]
        for delay, ceiling in zip(delays, ceilings):
            assert ceiling / 2 <= delay <= ceiling

    def test_jitter_is_seeded(self):
        a = RetryPolicy(rng=random.Random(3)).delay(0)
        b = RetryPolicy(rng=random.Random(3)).delay(0)
        assert a == b
