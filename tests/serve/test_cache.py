"""The cross-request LRU cache and canonical request keys."""

from repro.obs import Metrics, RecordingSink
from repro.serve.cache import ResultCache
from repro.serve.jobs import cache_key


class TestLru:
    def test_hit_after_put(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "body-a")
        assert cache.get("a") == "body-a"
        assert cache.hits == 1

    def test_miss(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refresh a
        cache.put("c", "3")  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.put("a", "1")
        assert cache.get("a") is None

    def test_metrics_and_trace_on_hit(self):
        metrics, sink = Metrics(), RecordingSink()
        cache = ResultCache(capacity=4, metrics=metrics, trace=sink)
        cache.put("a", "1")
        cache.get("a")
        counters = metrics.snapshot()["counters"]
        assert counters["serve.cache.hits"] == 1
        events = sink.by_kind("cache.hit")
        assert len(events) == 1
        assert events[0].component == "serve.cache"

    def test_snapshot(self):
        cache = ResultCache(capacity=4)
        cache.put("a", "1")
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5


class TestCanonicalKeys:
    def test_whitespace_variants_share_a_key(self):
        assert cache_key(
            "analyze", {"program": "(let (a (+ 1 2)) a)"}
        ) == cache_key(
            "analyze", {"program": "(let  (a (+ 1    2))\n a)"}
        )

    def test_kind_distinguishes(self):
        payload = {"program": "(add1 1)"}
        assert cache_key("analyze", dict(payload)) != cache_key(
            "compare", dict(payload)
        )

    def test_options_distinguish(self):
        base = {"program": "(add1 1)"}
        assert cache_key("analyze", dict(base)) != cache_key(
            "analyze", {**base, "analyzer": "semantic-cps"}
        )
        assert cache_key("analyze", dict(base)) != cache_key(
            "analyze", {**base, "domain": "parity"}
        )

    def test_defaults_are_explicit(self):
        base = {"program": "(add1 1)"}
        assert cache_key("analyze", dict(base)) == cache_key(
            "analyze", {**base, "analyzer": "direct", "domain": "constprop"}
        )

    def test_assume_order_is_canonical(self):
        assert cache_key(
            "analyze", {"program": "(+ x y)", "assume": {"x": 1, "y": 2}}
        ) == cache_key(
            "analyze", {"program": "(+ x y)", "assume": {"y": 2, "x": 1}}
        )

    def test_corpus_and_source_do_not_collide(self):
        from repro.corpus.programs import PROGRAMS
        from repro.lang.pretty import pretty_flat

        name = "theorem-5.1"
        source = pretty_flat(PROGRAMS[name].term)
        # same term text, but the corpus entry carries closure
        # assumptions the source request lacks
        assert cache_key("analyze", {"corpus": name}) != cache_key(
            "analyze", {"program": source}
        )
