"""Differential smoke: random programs through ``/v1/compare``.

Feeds `repro.gen.random_program` terms through a live service and
checks the Lemma 3.1 agreement — the direct and semantic-CPS analyses
of the same term coincide — and that every verdict matches the
in-process `repro.api.run_comparison` on the same term.
"""

import pytest

from repro.api import run_comparison
from repro.gen import random_program
from repro.lang.pretty import pretty_flat
from repro.serve.client import RetryPolicy, ServiceClient
from repro.serve.server import AnalysisService

SEEDS = range(20)


@pytest.fixture(scope="module")
def service():
    svc = AnalysisService(port=0, workers=2, queue_size=16)
    yield svc
    svc.drain(timeout=10)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(
        service.url, policy=RetryPolicy(retries=5, base_delay=0.02)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_served_compare_matches_in_process(seed, client):
    term = random_program(seed, max_depth=4)
    source = pretty_flat(term)
    served = client.compare(program=source, loop_mode="top")
    report = run_comparison(source, loop_mode="top")
    expected_verdicts = {
        "direct_vs_syntactic": report.direct_vs_syntactic.value,
        "semantic_vs_direct": report.semantic_vs_direct.value,
        "semantic_vs_syntactic": report.semantic_vs_syntactic.value,
        "pushdown_vs_direct": report.pushdown_vs_direct.value,
    }
    assert served["verdicts"] == expected_verdicts
    assert served["direct"] == report.direct.to_dict()
    assert served["semantic_cps"] == report.semantic.to_dict()
    assert served["syntactic_cps"] == report.syntactic.to_dict()
    assert served["pushdown"] == report.pushdown.to_dict()
    # The Lemma 3.1-style agreement, abstractly (Theorem 5.4): the
    # semantic-CPS analysis of the same term is never worse than the
    # direct one — and the service reports exactly what the local
    # run_comparison proved.
    assert served["verdicts"]["semantic_vs_direct"] in (
        "equal",
        "left-more-precise",
    )
    # The tentpole claim at the transport layer: the pushdown analyzer
    # is never *less* precise than the direct one.
    assert served["verdicts"]["pushdown_vs_direct"] in (
        "equal",
        "left-more-precise",
    )
