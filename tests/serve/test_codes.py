"""The structured error vocabulary shared by service and CLI."""

import pytest

from repro.analysis.common import BudgetExceeded, NonComputableError
from repro.interp.errors import (
    Diverged,
    FuelExhausted,
    StackOverflow,
    StuckError,
)
from repro.lang.errors import ParseError
from repro.serve.codes import (
    CODES,
    ServeError,
    classify_exception,
    exit_code_for,
    exit_codes_help,
)


class TestVocabulary:
    def test_exit_codes_are_distinct_and_nonzero(self):
        exit_codes = [code.exit_code for code in CODES.values()]
        assert len(set(exit_codes)) == len(exit_codes)
        assert all(code > 0 for code in exit_codes)

    def test_issue_mandated_codes_exist(self):
        for name in (
            "fuel_exhausted",
            "timeout",
            "parse_error",
            "overloaded",
            "lint_error",
        ):
            assert name in CODES

    def test_http_statuses_are_errors(self):
        assert all(
            400 <= code.http_status < 600 for code in CODES.values()
        )

    def test_backpressure_codes_are_retryable(self):
        assert CODES["overloaded"].retryable
        assert CODES["timeout"].retryable
        assert not CODES["diverged"].retryable
        assert not CODES["parse_error"].retryable

    def test_help_lists_every_code(self):
        text = exit_codes_help()
        for name in CODES:
            assert name in text


class TestClassification:
    @pytest.mark.parametrize(
        "exc,code",
        [
            (FuelExhausted(10), "fuel_exhausted"),
            (Diverged(), "diverged"),
            (StuckError("no rule"), "stuck"),
            (StackOverflow(), "stuck"),
            (BudgetExceeded(100), "budget_exceeded"),
            (NonComputableError("loop"), "non_computable"),
            (ParseError("bad"), "parse_error"),
            (KeyError("x"), "bad_request"),
            (RuntimeError("boom"), "internal"),
        ],
    )
    def test_exception_mapping(self, exc, code):
        assert classify_exception(exc).code == code

    def test_serve_error_passes_through(self):
        original = ServeError("overloaded", "full")
        assert classify_exception(original) is original

    def test_exit_code_for_pairs_code_and_message(self):
        code, message = exit_code_for(Diverged())
        assert code == CODES["diverged"].exit_code
        assert message.startswith("diverged:")

    def test_payload_shape(self):
        payload = ServeError("timeout", "too slow").payload()
        assert payload == {
            "ok": False,
            "error": {"code": "timeout", "message": "too slow"},
        }

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServeError("no-such-code", "nope")
