"""The serve-layer wiring of `repro.incr`: term_hash echoing, the
If-None-Match-style ``not_modified`` fast path, the cross-process
persistent response tier, store stats in the observability endpoints,
and generation-keyed invalidation of the in-memory LRU."""

import json

import pytest

from repro.incr.hash import term_hash
from repro.serve.client import RetryPolicy, ServiceClient
from repro.serve.jobs import ServiceDefaults
from repro.serve.server import AnalysisService


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "incr.sqlite")


def make_service(store_path, **kwargs):
    return AnalysisService(
        port=0,
        workers=2,
        queue_size=8,
        incr_store=store_path,
        **kwargs,
    )


def make_client(service):
    return ServiceClient(
        service.url, policy=RetryPolicy(retries=3, base_delay=0.02)
    )


class TestTermHash:
    def test_analyze_echoes_term_hash(self, store_path):
        svc = make_service(store_path)
        try:
            client = make_client(svc)
            body = client.analyze(corpus="even-odd", analyzer="direct")
            assert body["ok"] is True
            from repro.corpus import PROGRAMS

            expected = term_hash(PROGRAMS["even-odd"].term)
            assert body["term_hash"] == expected
        finally:
            svc.drain(timeout=10)

    def test_not_modified_fast_path(self, store_path):
        svc = make_service(store_path)
        try:
            client = make_client(svc)
            first = client.analyze(corpus="even-odd", analyzer="direct")
            etag = first["term_hash"]
            second = client.analyze(
                corpus="even-odd", analyzer="direct", term_hash=etag
            )
            assert second == {
                "ok": True,
                "kind": "analyze",
                "analyzer": "direct",
                "not_modified": True,
                "term_hash": etag,
            }
        finally:
            svc.drain(timeout=10)

    def test_stale_term_hash_returns_full_body(self, store_path):
        svc = make_service(store_path)
        try:
            client = make_client(svc)
            reference = client.analyze(corpus="even-odd", analyzer="direct")
            body = client.analyze(
                corpus="even-odd", analyzer="direct", term_hash="0" * 40
            )
            assert "not_modified" not in body
            assert body == reference
        finally:
            svc.drain(timeout=10)

    def test_alpha_variant_program_matches(self, store_path):
        # The ETag is alpha-invariant: a renamed-binder source hits
        # the fast path against the original's hash.
        svc = make_service(store_path)
        try:
            client = make_client(svc)
            original = "(let (x 1) (+ x 2))"
            renamed = "(let (y 1) (+ y 2))"
            first = client.analyze(program=original, analyzer="direct")
            second = client.analyze(
                program=renamed,
                analyzer="direct",
                term_hash=first["term_hash"],
            )
            assert second["not_modified"] is True
        finally:
            svc.drain(timeout=10)


class TestPersistentTier:
    def test_cross_instance_response_hit(self, store_path):
        # Two sequential service instances share one store file: the
        # second serves the first's response byte-identically without
        # re-analysis.
        svc1 = make_service(store_path)
        try:
            client = make_client(svc1)
            reference = client.analyze(corpus="even-odd", analyzer="direct")
        finally:
            svc1.drain(timeout=10)
        svc2 = make_service(store_path)
        try:
            client = make_client(svc2)
            body = client.analyze(corpus="even-odd", analyzer="direct")
            assert body == reference
            metrics = client.metricsz()
            assert metrics["incr_store"]["hits"] > 0
        finally:
            svc2.drain(timeout=10)

    def test_summary_reuse_across_instances(self, store_path):
        # Not just whole responses: a *different* request over the
        # same program reuses persisted sub-term summaries.
        svc1 = make_service(store_path)
        try:
            make_client(svc1).analyze(
                corpus="factorial", analyzer="semantic-cps"
            )
        finally:
            svc1.drain(timeout=10)
        svc2 = make_service(store_path)
        try:
            client = make_client(svc2)
            client.analyze(corpus="factorial", analyzer="semantic-cps")
            assert client.metricsz()["incr_store"]["hits"] > 0
        finally:
            svc2.drain(timeout=10)


class TestObservability:
    def test_healthz_reports_store(self, store_path):
        svc = make_service(store_path)
        try:
            health = make_client(svc).healthz()
            assert health["incr_store"]["path"] == store_path
            assert health["incr_store"]["entries"] >= 0
        finally:
            svc.drain(timeout=10)

    def test_metricsz_reports_store_block(self, store_path):
        svc = make_service(store_path)
        try:
            client = make_client(svc)
            client.analyze(corpus="constants", analyzer="direct")
            block = client.metricsz()["incr_store"]
            for field in (
                "path", "entries", "bytes", "generation",
                "hits", "misses", "stale_rejections", "puts", "errors",
            ):
                assert field in block
            assert block["puts"] > 0
        finally:
            svc.drain(timeout=10)

    def test_no_store_reports_null(self):
        svc = AnalysisService(port=0, workers=1, queue_size=4)
        try:
            client = make_client(svc)
            assert client.healthz()["incr_store"] is None
            assert client.metricsz()["incr_store"] is None
        finally:
            svc.drain(timeout=10)

    def test_prometheus_store_gauges(self, store_path):
        import urllib.request

        svc = make_service(store_path)
        try:
            client = make_client(svc)
            client.analyze(corpus="constants", analyzer="direct")
            with urllib.request.urlopen(
                f"{svc.url}/metricsz?format=prom"
            ) as response:
                text = response.read().decode()
            assert "serve_incr_store_entries" in text
            assert "serve_incr_store_puts" in text
        finally:
            svc.drain(timeout=10)


class TestGenerationInvalidation:
    def test_gc_orphans_lru_entries(self, store_path):
        # A gc bumps the store generation; the in-memory response LRU
        # keys fold it in, so post-gc requests miss the LRU (and the
        # evicted persistent rows) and recompute.
        from repro.incr.store import IncrStore

        svc = make_service(store_path)
        try:
            client = make_client(svc)
            reference = client.analyze(corpus="even-odd", analyzer="direct")
            lru_hits = svc.cache.hits
            client.analyze(corpus="even-odd", analyzer="direct")
            assert svc.cache.hits == lru_hits + 1
            with IncrStore(store_path) as admin:
                admin.gc(max_bytes=0)
            body = client.analyze(corpus="even-odd", analyzer="direct")
            # Same bytes (recomputed), but not from the pre-gc LRU key.
            assert body == reference
            assert svc.cache.misses > 0
        finally:
            svc.drain(timeout=10)


class TestProcessModel:
    def test_sharded_store_stats_aggregate(self, store_path):
        svc = AnalysisService(
            port=0,
            workers=2,
            worker_model="process",
            queue_size=16,
            incr_store=store_path,
        )
        try:
            client = make_client(svc)
            client.analyze(corpus="even-odd", analyzer="semantic-cps")
            health = client.healthz()
            assert health["incr_store"]["path"] == store_path
            metrics = client.metricsz()
            block = metrics["incr_store"]
            assert block["puts"] > 0
            # Per-shard stats are exposed too.
            shard_blocks = [
                shard.get("incr_store")
                for shard in metrics["shards"]
            ]
            assert any(b and b["puts"] > 0 for b in shard_blocks)
        finally:
            svc.drain(timeout=15)
