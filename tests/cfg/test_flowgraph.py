"""Tests for flow-graph construction and exports."""

from repro.analysis import analyze_direct
from repro.anf import normalize
from repro.cfg import (
    build_call_graph,
    build_flow_graph,
    call_graph_to_dot,
    flow_graph_to_dot,
    to_networkx,
)
from repro.cfg.flowgraph import FlowEdge, enter, exit_
from repro.domains import ConstPropDomain
from repro.lang.parser import parse

DOM = ConstPropDomain()


def prepared(source: str):
    term = normalize(parse(source))
    result = analyze_direct(term, DOM)
    return term, result


class TestIntraprocedural:
    def test_straight_line_chain(self):
        term, _ = prepared("(let (a 1) (let (b (add1 a)) b))")
        graph = build_flow_graph(term)
        assert FlowEdge(enter("main"), "a", "seq") in graph.edges
        assert FlowEdge("a", "b", "seq") in graph.edges
        assert FlowEdge("b", exit_("main"), "seq") in graph.edges

    def test_branch_fork_and_join(self):
        term, _ = prepared(
            "(let (t (if0 x (let (u 1) u) (let (v 2) v))) t)"
        )
        graph = build_flow_graph(term)
        assert FlowEdge(enter("main"), "u", "branch-then") in graph.edges
        assert FlowEdge(enter("main"), "v", "branch-else") in graph.edges
        assert FlowEdge("u", "t", "join") in graph.edges
        assert FlowEdge("v", "t", "join") in graph.edges

    def test_value_branch_collapses_to_join(self):
        term, _ = prepared("(let (t (if0 x 1 2)) t)")
        graph = build_flow_graph(term)
        # both branches are bare values: the fork point joins directly
        assert FlowEdge(enter("main"), "t", "join") in graph.edges

    def test_lambda_bodies_get_own_procedures(self):
        term, _ = prepared("(let (f (lambda (p) (add1 p))) (f 1))")
        graph = build_flow_graph(term)
        assert enter("p") in graph.nodes
        assert exit_("p") in graph.nodes

    def test_successors_predecessors(self):
        term, _ = prepared("(let (a 1) (let (b 2) b))")
        graph = build_flow_graph(term)
        assert "b" in graph.successors("a")
        assert "a" in graph.predecessors("b")


class TestInterprocedural:
    def test_call_and_return_edges(self):
        term, result = prepared(
            "(let (f (lambda (p) (add1 p))) (let (r (f 1)) r))"
        )
        graph = build_flow_graph(term, build_call_graph(term, result))
        assert FlowEdge("r", enter("p"), "call") in graph.edges
        assert FlowEdge(exit_("p"), "r", "return") in graph.edges

    def test_primitive_calls_add_no_edges(self):
        term, result = prepared("(let (r (add1 1)) r)")
        graph = build_flow_graph(term, build_call_graph(term, result))
        assert not graph.edges_of_kind("call")


class TestExports:
    def test_flow_graph_dot(self):
        term, _ = prepared("(let (a 1) (let (b (if0 a 1 2)) b))")
        dot = flow_graph_to_dot(build_flow_graph(term))
        assert dot.startswith("digraph")
        assert '"a" -> "b"' in dot

    def test_call_graph_dot(self):
        term, result = prepared(
            "(let (f (lambda (x) x)) (let (r (f 1)) r))"
        )
        dot = call_graph_to_dot(build_call_graph(term, result))
        assert '"r" -> "λx"' in dot

    def test_networkx_flow(self):
        term, _ = prepared("(let (a 1) (let (b 2) b))")
        nx_graph = to_networkx(build_flow_graph(term))
        assert nx_graph.has_edge("a", "b")
        assert nx_graph.edges["a", "b"]["kind"] == "seq"

    def test_networkx_call(self):
        term, result = prepared(
            "(let (f (lambda (x) x)) (let (r (f 1)) r))"
        )
        nx_graph = to_networkx(build_call_graph(term, result))
        assert nx_graph.has_edge("r", "x")
