"""The source call graph recovered from the syntactic-CPS analysis.

"All analyzers compute the control flow graph of the source program"
(paper abstract) — here the claim is checked, and its fine print
exposed: the CPS-derived call graph always *covers* the direct one,
and false returns can make it strictly coarser (spurious call edges),
which is the control-flow face of Theorem 5.1.
"""

import pytest

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.anf import normalize
from repro.cfg import build_call_graph, build_call_graph_from_cps
from repro.corpus import PROGRAMS
from repro.lang.parser import parse
from repro.lang.syntax import free_variables


def graphs_of(program_or_source):
    report = run_comparison(program_or_source, analyzers=THREE_WAY_ANALYZERS)
    direct_graph = build_call_graph(report.term, report.direct)
    cps_graph = build_call_graph_from_cps(report.term, report.syntactic)
    return direct_graph, cps_graph


LIGHT_CLOSED = [
    name
    for name in sorted(PROGRAMS)
    if not PROGRAMS[name].heavy and not free_variables(PROGRAMS[name].term)
]


class TestAgreement:
    @pytest.mark.parametrize("name", LIGHT_CLOSED)
    def test_cps_graph_covers_direct_graph(self, name):
        direct_graph, cps_graph = graphs_of(PROGRAMS[name])
        assert direct_graph.sites == cps_graph.sites
        assert direct_graph.lambdas == cps_graph.lambdas
        assert direct_graph.edges <= cps_graph.edges

    def test_equal_on_first_order_flow(self):
        direct_graph, cps_graph = graphs_of(
            "(let (f (lambda (x) (add1 x))) (f (f 0)))"
        )
        assert direct_graph.edges == cps_graph.edges


class TestFalseReturnsCoarsenTheGraph:
    SOURCE = """
    (let (id (lambda (x) x))
      (let (g1 (id add1))
        (let (g2 (id sub1))
          (let (u (g1 0))
            u))))
    """

    def test_direct_graph_is_precise(self):
        direct_graph, _ = graphs_of(self.SOURCE)
        # the first call through id returns only add1
        assert direct_graph.callees_of("u") == frozenset({"<add1>"})

    def test_cps_graph_gains_a_spurious_edge(self):
        _, cps_graph = graphs_of(self.SOURCE)
        # id's continuation variable merges both returns, so both
        # primitives flow to g1: a call edge that no execution takes
        assert cps_graph.callees_of("u") == frozenset(
            {"<add1>", "<sub1>"}
        )

    def test_coarsening_is_strict(self):
        direct_graph, cps_graph = graphs_of(self.SOURCE)
        assert direct_graph.edges < cps_graph.edges
