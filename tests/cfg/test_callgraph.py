"""Tests for call-graph construction from 0CFA results."""

import pytest

from repro.analysis import analyze_direct
from repro.anf import normalize
from repro.cfg import build_call_graph
from repro.cfg.callgraph import DEC_LABEL, INC_LABEL, CallEdge
from repro.domains import ConstPropDomain
from repro.lang.parser import parse

DOM = ConstPropDomain()


def graph_of(source: str):
    term = normalize(parse(source))
    result = analyze_direct(term, DOM)
    return build_call_graph(term, result)


class TestResolution:
    def test_direct_call(self):
        graph = graph_of("(let (f (lambda (x) x)) (let (r (f 1)) r))")
        assert graph.callees_of("r") == frozenset({"x"})
        assert graph.is_monomorphic("r")

    def test_primitive_call(self):
        graph = graph_of("(let (r (add1 1)) r)")
        assert graph.callees_of("r") == frozenset({INC_LABEL})

    def test_both_primitives(self):
        graph = graph_of(
            "(let (p add1) (let (q sub1) (let (r (p (q 5))) r)))"
        )
        labels = {c for s in graph.sites for c in graph.callees_of(s)}
        assert labels == {INC_LABEL, DEC_LABEL}

    def test_higher_order_merges_callees(self):
        graph = graph_of(
            """(let (f (lambda (x) x))
                 (let (g (lambda (y) y))
                   (let (pick (lambda (h) (h 1)))
                     (let (u (pick f))
                       (let (v (pick g))
                         v)))))"""
        )
        # inside pick, h may be either identity: the single abstract
        # call site resolves to both
        inner_sites = [s for s in graph.sites if not graph.callees_of(s) <= {"h"}]
        merged = [s for s in graph.sites if graph.callees_of(s) == {"x", "y"}]
        assert merged, f"expected a polymorphic site in {graph}"

    def test_unreachable_lambda(self):
        graph = graph_of(
            "(let (dead (lambda (z) z)) (let (f (lambda (x) x)) (let (r (f 1)) r)))"
        )
        assert "z" in graph.unreachable_lambdas()
        assert "x" not in graph.unreachable_lambdas()

    def test_unresolved_call_has_no_edges(self):
        graph = graph_of("(let (r (g 1)) r)")  # g unbound
        assert graph.callees_of("r") == frozenset()
        assert not graph.is_monomorphic("r")


class TestStructure:
    def test_sites_in_program_order(self):
        graph = graph_of(
            "(let (f (lambda (x) x)) (let (a (f 1)) (let (b (f a)) b)))"
        )
        assert graph.sites == ("a", "b")

    def test_callers_of(self):
        graph = graph_of(
            "(let (f (lambda (x) x)) (let (a (f 1)) (let (b (f a)) b)))"
        )
        assert graph.callers_of("x") == frozenset({"a", "b"})

    def test_len_counts_edges(self):
        graph = graph_of("(let (f (lambda (x) x)) (let (r (f 1)) r))")
        assert len(graph) == 1
        assert CallEdge("r", "x") in graph.edges

    def test_recursive_call_edge(self):
        graph = graph_of(
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 5))"""
        )
        # some call site resolves back into the recursive lambda
        assert any(
            graph.callers_of(lam) for lam in ("self", "n")
        )
