"""Tests for continuation duplication and the optimization pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct
from repro.analysis.compare import compare_answers
from repro.anf import normalize, validate_anf
from repro.corpus import THEOREM_52_CONDITIONAL
from repro.domains import ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.opt import (
    duplicate_join_continuations,
    optimize,
)

DOM = ConstPropDomain()
LAT = Lattice(DOM)


class TestDuplication:
    def test_duplicates_continuation_into_branches(self):
        term = normalize(parse("(let (a (if0 x 0 1)) (add1 a))"))
        result = duplicate_join_continuations(term)
        validate_anf(result)
        text = pretty_flat(result)
        assert text.count("add1") == 2  # one copy per branch

    def test_bare_tail_not_duplicated(self):
        term = normalize(parse("(let (a (if0 x 0 1)) a)"))
        result = duplicate_join_continuations(term)
        assert pretty_flat(result) == pretty_flat(term)

    def test_size_budget_respected(self):
        term = normalize(
            parse("(let (a (if0 x 0 1)) (+ (+ a a) (+ a a)))")
        )
        untouched = duplicate_join_continuations(term, max_size=2)
        assert pretty_flat(untouched) == pretty_flat(term)

    def test_semantics_preserved(self):
        source = "(let (a (if0 x 0 1)) (let (b (if0 a (+ a 3) (+ a 2))) b))"
        term = normalize(parse(source))
        duplicated = duplicate_join_continuations(term)
        validate_anf(duplicated)
        for x in (0, 7):
            from repro.interp.values import Env, Store

            def run(t):
                env, store = Env(), Store()
                loc = store.new("x")
                store.bind(loc, x)
                return run_direct(t, env=env.bind("x", loc), store=store)

            assert run(term).value == run(duplicated).value


class TestAbstractClaim:
    """The abstract's closing sentence: a direct analysis with some
    duplication is as satisfactory as a CPS analysis."""

    def test_duplication_recovers_theorem52_precision(self):
        program = THEOREM_52_CONDITIONAL
        initial = program.initial_for(LAT)
        before = analyze_direct(program.term, DOM, initial=initial)
        assert before.value.num is TOP  # direct analysis loses a2

        duplicated = duplicate_join_continuations(program.term)
        after = analyze_direct(duplicated, DOM, initial=initial)
        assert after.value.num == 3  # CPS-level precision, direct style

    def test_duplicated_direct_matches_cps_result(self):
        program = THEOREM_52_CONDITIONAL
        initial = program.initial_for(LAT)
        report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
        duplicated = duplicate_join_continuations(program.term)
        after = analyze_direct(duplicated, DOM, initial=initial)
        assert after.value.num == report.syntactic.value.num == 3


class TestPipeline:
    def test_full_pipeline_folds_inline_example(self):
        term = normalize(
            parse(
                """(let (f (lambda (x) (add1 x)))
                     (let (u (f 1)) (let (v (f 2)) (+ u v))))"""
            )
        )
        report = optimize(term, DOM)
        assert report.analysis.value.num == 5
        assert pretty_flat(report.term) in ("(let (t%1 5) t%1)", "5")

    def test_pipeline_reaches_fixed_point(self):
        term = normalize(parse("(let (a (+ 1 2)) a)"))
        report = optimize(term, DOM, max_rounds=10)
        assert report.rounds <= 3

    def test_pipeline_rejects_unknown_pass(self):
        term = normalize(parse("42"))
        with pytest.raises(ValueError):
            optimize(term, DOM, passes=("bogus",))

    def test_pass_subset(self):
        term = normalize(parse("(let (dead 1) (let (a (+ 2 3)) a))"))
        report = optimize(term, DOM, passes=("dce",))
        assert "dead" not in pretty_flat(report.term)
        assert "(+ 2 3)" in pretty_flat(report.term)  # no folding ran

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_pipeline_preserves_semantics(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        report = optimize(term, DOM, max_rounds=3)
        validate_anf(report.term)
        before = run_direct(term, fuel=500_000)
        after = run_direct(report.term, fuel=500_000)
        if isinstance(before.value, int):
            assert after.value == before.value

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 4))
    def test_pipeline_never_loses_precision(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        report = optimize(term, DOM, max_rounds=3)
        before = analyze_direct(term, DOM)
        # final value of the optimized program is at least as precise
        assert (
            compare_answers(
                report.analysis.answer,
                before.answer,
                before.lattice,
                names=[],  # compare the answer values only
            )
            in (Precision.EQUAL, Precision.LEFT_MORE_PRECISE)
        )
