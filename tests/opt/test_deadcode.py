"""Tests for dead-binding elimination and the purity predicate."""

import pytest

from repro.anf import normalize, validate_anf
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.opt import eliminate_dead_code, is_pure


def dce(source: str):
    term = normalize(parse(source))
    result = eliminate_dead_code(term)
    validate_anf(result)
    return term, result


class TestPurity:
    @pytest.mark.parametrize(
        "source",
        ["42", "x", "(lambda (x) (f x))", "(+ 1 2)", "(let (a 1) (+ a a))"],
    )
    def test_pure(self, source):
        assert is_pure(normalize(parse(source)))

    @pytest.mark.parametrize(
        "source",
        [
            "(f 1)",
            "(loop)",
            "(let (a (f 1)) 2)",
            "(if0 x (f 1) 2)",
        ],
    )
    def test_impure(self, source):
        assert not is_pure(normalize(parse(source)))

    def test_pure_conditional(self):
        assert is_pure(normalize(parse("(if0 x (+ 1 2) 3)")))


class TestElimination:
    def test_removes_unused_pure_binding(self):
        _, result = dce("(let (unused (+ 1 2)) 9)")
        assert pretty_flat(result) == "9"

    def test_keeps_used_binding(self):
        term, result = dce("(let (a (+ 1 2)) a)")
        assert pretty_flat(result) == pretty_flat(term)

    def test_keeps_possibly_diverging_binding(self):
        term, result = dce("(let (unused (f 1)) 9)")
        assert pretty_flat(result) == pretty_flat(term)

    def test_keeps_loop(self):
        term, result = dce("(let (unused (loop)) 9)")
        assert pretty_flat(result) == pretty_flat(term)

    def test_cascading_removal(self):
        _, result = dce("(let (a 1) (let (b (+ a a)) (let (c 2) c)))")
        assert pretty_flat(result) == "(let (c 2) c)"

    def test_removes_inside_lambda(self):
        _, result = dce("(lambda (x) (let (dead 1) x))")
        assert pretty_flat(result) == "(lambda (x) x)"

    def test_removes_inside_branches(self):
        _, result = dce("(let (r (if0 x (let (d 1) 5) 6)) r)")
        assert "(d 1)" not in pretty_flat(result)

    def test_removes_unused_lambda_binding(self):
        _, result = dce("(let (f (lambda (x) x)) 3)")
        assert pretty_flat(result) == "3"

    def test_semantics_preserved(self):
        term, result = dce(
            "(let (a 5) (let (dead (* a a)) (let (b (add1 a)) b)))"
        )
        assert run_direct(term).value == run_direct(result).value == 6
