"""Tests for analysis-driven constant folding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import normalize, validate_anf
from repro.domains import ConstPropDomain, Lattice
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.lang.ast import Let, Num
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.opt import constant_fold

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def fold(source: str, initial=None):
    term = normalize(parse(source))
    return term, constant_fold(term, initial=initial)


class TestFolding:
    def test_folds_operator_binding(self):
        _, folded = fold("(let (a (+ 1 2)) a)")
        assert isinstance(folded, Let)
        assert folded.rhs == Num(3)

    def test_folds_chain(self):
        _, folded = fold("(let (a (+ 1 2)) (let (b (* a a)) b))")
        assert folded.rhs == Num(3)
        assert folded.body.rhs == Num(9)

    def test_folds_primitive_application(self):
        _, folded = fold("(add1 41)")
        assert folded.rhs == Num(42)

    def test_does_not_fold_unknown(self):
        term, folded = fold(
            "(let (a (+ x 1)) a)", initial={"x": LAT.of_num(DOM.top)}
        )
        assert folded == term  # nothing provable

    def test_does_not_fold_possibly_diverging_call(self):
        # f is a user closure: the call may diverge, keep it
        source = """(let (f (lambda (x) 7)) (let (r (f 0)) r))"""
        term, folded = fold(source)
        assert pretty_flat(folded) == pretty_flat(term)

    def test_folds_inside_lambda_bodies(self):
        _, folded = fold("(let (f (lambda (x) (+ 1 2))) (f 0))")
        lam = folded.rhs
        assert lam.body.rhs == Num(3)


class TestBranchCollapsing:
    def test_collapses_zero_test(self):
        _, folded = fold("(let (r (if0 0 (+ 1 2) (loop))) r)")
        assert "loop" not in pretty_flat(folded)
        assert "if0" not in pretty_flat(folded)

    def test_collapses_nonzero_test(self):
        _, folded = fold("(let (r (if0 9 (loop) (+ 1 2))) r)")
        assert "loop" not in pretty_flat(folded)

    def test_keeps_unknown_test(self):
        _, folded = fold(
            "(let (r (if0 x 1 2)) r)", initial={"x": LAT.of_num(DOM.top)}
        )
        assert "if0" in pretty_flat(folded)

    def test_collapse_preserves_bindings(self):
        _, folded = fold("(let (r (if0 0 (let (u (+ 1 1)) u) 9)) r)")
        result = run_direct(folded, check=True)
        assert result.value == 2

    def test_collapse_keeps_dead_conditional_on_bottom_test(self):
        # unreachable conditional (x unbound): neither branch provable,
        # term kept as-is
        term, folded = fold("(let (r (if0 x 1 2)) r)")
        assert pretty_flat(folded) == pretty_flat(term)


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "source",
        [
            "(let (a (+ 1 2)) (let (b (* a a)) (- b a)))",
            "(if0 (sub1 1) 10 20)",
            "(let (f (lambda (x) (add1 x))) (f (f 0)))",
            "((lambda (x) (if0 x 1 2)) 0)",
        ],
    )
    def test_value_unchanged(self, source):
        term = normalize(parse(source))
        folded = constant_fold(term)
        validate_anf(folded)
        assert run_direct(term).value == run_direct(folded).value

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        folded = constant_fold(term)
        validate_anf(folded)
        before = run_direct(term, fuel=500_000)
        after = run_direct(folded, fuel=500_000)
        if isinstance(before.value, int):
            assert after.value == before.value
