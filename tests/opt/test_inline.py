"""Tests for heuristic inlining (paper Section 6.3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_direct
from repro.anf import normalize, validate_anf
from repro.domains import ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.gen import random_closed_term
from repro.interp import run_direct
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.opt import inline_monomorphic_calls

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def inline(source: str, **kwargs):
    term = normalize(parse(source))
    result = inline_monomorphic_calls(term, **kwargs)
    validate_anf(result)
    return term, result


class TestInlining:
    def test_inlines_monomorphic_call(self):
        _, result = inline("(let (f (lambda (x) (add1 x))) (f 1))")
        # the call is gone; an alpha-renamed copy binds the argument
        assert "(f " not in pretty_flat(result).replace("(f (lambda", "")
        assert run_direct(result).value == 2

    def test_skips_polymorphic_call(self):
        source = """(let (f (lambda (x) x))
                     (let (g (lambda (y) y))
                       (let (h (if0 z f g))
                         (h 1))))"""
        lat = Lattice(DOM)
        term = normalize(parse(source))
        result = inline_monomorphic_calls(
            term, initial={"z": lat.of_num(TOP)}
        )
        assert "(h " in pretty_flat(result)

    def test_skips_recursive_call(self):
        source = """(let (fact (lambda (self)
                                 (lambda (n)
                                   (if0 n 1 (* n ((self self) (- n 1)))))))
                      ((fact fact) 5))"""
        term, result = inline(source)
        # the self-application resolves to the recursive lambda: kept
        assert run_direct(result).value == 120

    def test_respects_size_budget(self):
        source = "(let (f (lambda (x) (+ (+ x x) (+ x x)))) (f 1))"
        term, untouched = inline(source, max_size=2)
        assert pretty_flat(untouched) == pretty_flat(term)
        _, inlined = inline(source, max_size=100)
        assert pretty_flat(inlined) != pretty_flat(term)

    def test_skips_initial_store_closures(self):
        from repro.analysis import AbsClo
        from repro.lang.ast import Var

        term = normalize(parse("(let (r (f 1)) r)"))
        result = inline_monomorphic_calls(
            term, initial={"f": LAT.of_clos(AbsClo("x", Var("x")))}
        )
        assert pretty_flat(result) == pretty_flat(term)

    def test_inlined_copies_have_unique_binders(self):
        _, result = inline(
            """(let (f (lambda (x) (let (t (add1 x)) t)))
                 (let (u (f 1)) (let (v (f 2)) (+ u v))))"""
        )
        validate_anf(result)  # checks unique binders
        assert run_direct(result).value == 5


class TestSection63Claim:
    """Inlining + direct analysis recovers CPS-style precision."""

    def test_precision_gain_on_repeated_calls(self):
        source = """(let (f (lambda (x) (add1 x)))
                     (let (u (f 1)) (let (v (f 2)) (+ u v))))"""
        term = normalize(parse(source))
        before = analyze_direct(term, DOM)
        assert before.value.num is TOP  # v merged through x

        inlined = inline_monomorphic_calls(term)
        after = analyze_direct(inlined, DOM)
        assert after.value.num == 5  # each copy analyzed separately

    def test_semantics_preserved_on_samples(self):
        for source in [
            "(let (f (lambda (x) (* x x))) (f 7))",
            "(let (f (lambda (x) (add1 x))) (let (g (lambda (y) (f y))) (g 1)))",
            "(let (f (lambda (x) (if0 x 1 2))) (+ (f 0) (f 5)))",
        ]:
            term = normalize(parse(source))
            inlined = inline_monomorphic_calls(term)
            validate_anf(inlined)
            assert run_direct(term).value == run_direct(inlined).value

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), depth=st.integers(2, 5))
    def test_random_programs(self, seed, depth):
        term = normalize(random_closed_term(random.Random(seed), depth))
        inlined = inline_monomorphic_calls(term)
        validate_anf(inlined)
        before = run_direct(term, fuel=500_000)
        after = run_direct(inlined, fuel=500_000)
        if isinstance(before.value, int):
            assert after.value == before.value
