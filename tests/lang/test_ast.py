"""Unit tests for the A abstract syntax."""

import pytest

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Var,
    is_value,
)


class TestNodeConstruction:
    def test_num_holds_int(self):
        assert Num(42).value == 42

    def test_num_rejects_bool(self):
        with pytest.raises(TypeError):
            Num(True)

    def test_num_rejects_float(self):
        with pytest.raises(TypeError):
            Num(1.5)

    def test_num_negative(self):
        assert Num(-3).value == -3

    def test_var_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_prim_accepts_add1_and_sub1(self):
        assert Prim("add1").name == "add1"
        assert Prim("sub1").name == "sub1"

    def test_prim_rejects_unknown(self):
        with pytest.raises(ValueError):
            Prim("mul1")

    def test_lam_rejects_empty_param(self):
        with pytest.raises(ValueError):
            Lam("", Num(1))

    def test_let_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Let("", Num(1), Num(2))

    def test_primapp_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            PrimApp("/", (Num(1), Num(2)))

    def test_primapp_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            PrimApp("+", (Num(1),))

    def test_primapp_accepts_binary_ops(self):
        for op in ("+", "-", "*"):
            node = PrimApp(op, (Num(1), Num(2)))
            assert node.op == op


class TestStructuralEquality:
    def test_equal_nums(self):
        assert Num(1) == Num(1)
        assert Num(1) != Num(2)

    def test_equal_lams(self):
        assert Lam("x", Var("x")) == Lam("x", Var("x"))
        assert Lam("x", Var("x")) != Lam("y", Var("y"))

    def test_nodes_are_hashable(self):
        terms = {
            Num(1),
            Var("x"),
            Prim("add1"),
            Lam("x", Var("x")),
            App(Var("f"), Num(1)),
            Let("x", Num(1), Var("x")),
            If0(Num(0), Num(1), Num(2)),
            PrimApp("+", (Num(1), Num(2))),
            Loop(),
        }
        assert len(terms) == 9

    def test_nodes_are_immutable(self):
        with pytest.raises(AttributeError):
            Num(1).value = 2  # type: ignore[misc]


class TestIsValue:
    @pytest.mark.parametrize(
        "term",
        [Num(0), Var("x"), Prim("add1"), Lam("x", Var("x"))],
    )
    def test_values(self, term):
        assert is_value(term)

    @pytest.mark.parametrize(
        "term",
        [
            App(Var("f"), Num(1)),
            Let("x", Num(1), Var("x")),
            If0(Num(0), Num(1), Num(2)),
            PrimApp("+", (Num(1), Num(2))),
            Loop(),
        ],
    )
    def test_non_values(self, term):
        assert not is_value(term)
