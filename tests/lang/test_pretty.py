"""Round-trip and formatting tests for the pretty-printer."""

import pytest

from repro.lang.builder import add, add1, app, if0, lam, let, loop, num, var
from repro.lang.parser import parse
from repro.lang.pretty import pretty, pretty_flat

SAMPLES = [
    "42",
    "-3",
    "x",
    "add1",
    "sub1",
    "(loop)",
    "(lambda (x) x)",
    "(f x)",
    "(let (x 1) x)",
    "(if0 x 1 2)",
    "(+ 1 2)",
    "(- x y)",
    "(* x x)",
    "((lambda (x) (add1 x)) 5)",
    "(let (f (lambda (x) (if0 x 0 (f (- x 1))))) (f 10))",
    "(let (a (+ 1 2)) (let (b (* a a)) (if0 b a (loop))))",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", SAMPLES)
    def test_parse_pretty_parse(self, source):
        term = parse(source)
        assert parse(pretty(term)) == term

    @pytest.mark.parametrize("source", SAMPLES)
    def test_parse_flat_parse(self, source):
        term = parse(source)
        assert parse(pretty_flat(term)) == term

    @pytest.mark.parametrize("width", [10, 20, 40, 100])
    def test_roundtrip_at_any_width(self, width):
        term = parse(SAMPLES[-2])
        assert parse(pretty(term, width=width)) == term


class TestFormatting:
    def test_flat_output_has_no_newlines(self):
        term = parse(SAMPLES[-1])
        assert "\n" not in pretty_flat(term)

    def test_wide_budget_keeps_small_terms_flat(self):
        assert pretty(parse("(f x)")) == "(f x)"

    def test_narrow_budget_wraps(self):
        term = let("some_variable", num(1), app("function", "some_variable"))
        assert "\n" in pretty(term, width=20)

    def test_builder_and_parser_agree(self):
        built = let(
            "x",
            add(1, 2),
            if0("x", num(0), app(add1(), "x")),
        )
        assert built == parse("(let (x (+ 1 2)) (if0 x 0 (add1 x)))")

    def test_builder_loop_and_lam(self):
        built = let("d", loop(), lam("y", var("y")))
        assert built == parse("(let (d (loop)) (lambda (y) y))")
