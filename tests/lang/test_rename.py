"""Tests for the uniquify pass and fresh-name supplies."""

from repro.lang.parser import parse
from repro.lang.rename import NameSupply, fresh_name_supply, uniquify
from repro.lang.syntax import free_variables, has_unique_binders


class TestNameSupply:
    def test_prefers_base_name(self):
        supply = NameSupply()
        assert supply.fresh("x") == "x"

    def test_avoids_used_names(self):
        supply = NameSupply(["x"])
        assert supply.fresh("x") == "x%1"
        assert supply.fresh("x") == "x%2"

    def test_reserve_blocks_name(self):
        supply = NameSupply()
        supply.reserve("t")
        assert supply.fresh("t") == "t%1"

    def test_freshens_derived_names(self):
        supply = NameSupply(["x", "x%1"])
        assert supply.fresh("x%1") == "x%2"

    def test_fresh_name_supply_scans_terms(self):
        supply = fresh_name_supply(parse("(let (a 1) (b a))"))
        assert supply.fresh("a") == "a%1"
        assert supply.fresh("b") == "b%1"
        assert supply.fresh("c") == "c"


class TestUniquify:
    def test_establishes_invariant(self):
        term = parse("((lambda (x) x) (lambda (x) x))")
        assert not has_unique_binders(term)
        assert has_unique_binders(uniquify(term))

    def test_identity_on_already_unique(self):
        term = parse("(let (a 1) (lambda (b) (a b)))")
        assert uniquify(term) == term

    def test_preserves_free_variables(self):
        term = parse("(let (x g) ((lambda (x) (x g)) x))")
        renamed = uniquify(term)
        assert free_variables(renamed) == free_variables(term) == {"g"}
        assert has_unique_binders(renamed)

    def test_does_not_capture_free_variables(self):
        # free `x` must not be captured by any renamed binder
        term = parse("(x (lambda (x) x))")
        renamed = uniquify(term)
        assert has_unique_binders(renamed)
        assert free_variables(renamed) == {"x"}

    def test_shadowing_resolved_innermost_wins(self):
        term = parse("(lambda (x) (lambda (x) x))")
        renamed = uniquify(term)
        outer, inner = renamed, renamed.body
        assert inner.body.name == inner.param
        assert inner.param != outer.param

    def test_nested_lets(self):
        term = parse("(let (x 1) (let (x (add1 x)) (add1 x)))")
        renamed = uniquify(term)
        assert has_unique_binders(renamed)
        # semantics preserved: inner add1 sees the inner binding
        from repro.anf import normalize
        from repro.interp import run_direct

        assert run_direct(normalize(renamed)).value == 3
