"""Unit tests for the s-expression parser."""

import pytest

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Var,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse, tokenize


class TestTokenizer:
    def test_positions(self):
        tokens = list(tokenize("(f\n  x)"))
        assert [(t.text, t.line, t.column) for t in tokens] == [
            ("(", 1, 1),
            ("f", 1, 2),
            ("x", 2, 3),
            (")", 2, 4),
        ]

    def test_comments_are_skipped(self):
        tokens = list(tokenize("; hello\nx ; trailing\n"))
        assert [t.text for t in tokens] == ["x"]

    def test_adjacent_parens(self):
        tokens = list(tokenize("((x))"))
        assert [t.text for t in tokens] == ["(", "(", "x", ")", ")"]


class TestParseAtoms:
    def test_number(self):
        assert parse("42") == Num(42)

    def test_negative_number(self):
        assert parse("-7") == Num(-7)

    def test_variable(self):
        assert parse("foo") == Var("foo")

    def test_add1(self):
        assert parse("add1") == Prim("add1")

    def test_sub1(self):
        assert parse("sub1") == Prim("sub1")


class TestParseForms:
    def test_lambda(self):
        assert parse("(lambda (x) x)") == Lam("x", Var("x"))

    def test_application(self):
        assert parse("(f 1)") == App(Var("f"), Num(1))

    def test_nested_application(self):
        assert parse("((f 1) 2)") == App(App(Var("f"), Num(1)), Num(2))

    def test_let(self):
        assert parse("(let (x 1) x)") == Let("x", Num(1), Var("x"))

    def test_if0(self):
        assert parse("(if0 x 1 2)") == If0(Var("x"), Num(1), Num(2))

    def test_plus(self):
        assert parse("(+ 1 2)") == PrimApp("+", (Num(1), Num(2)))

    def test_minus_vs_negative_literal(self):
        assert parse("(- x 1)") == PrimApp("-", (Var("x"), Num(1)))
        assert parse("-1") == Num(-1)

    def test_loop(self):
        assert parse("(loop)") == Loop()

    def test_whitespace_and_comments(self):
        term = parse("""
            ; compute something
            (let (x 1)   ; bind x
              (add1 x))
        """)
        assert term == Let("x", Num(1), App(Prim("add1"), Var("x")))


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "(",
            ")",
            "()",
            "(f 1) extra",
            "(lambda x x)",
            "(lambda (x y) x)",
            "(lambda (1) x)",
            "(let x 1)",
            "(let (1 2) 3)",
            "(let (lambda 2) 3)",
            "(if0 1 2)",
            "(if0 1 2 3 4)",
            "(+ 1)",
            "(+ 1 2 3)",
            "(loop 1)",
            "lambda",
            "let",
            "(f 1 2)",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("(f\n))")
        assert excinfo.value.line == 2

    def test_reserved_word_cannot_be_bound(self):
        with pytest.raises(ParseError):
            parse("(let (if0 1) 2)")
