"""Tests for free variables, binders, sizes, and scope checks."""

import pytest

from repro.lang.errors import ScopeError
from repro.lang.parser import parse
from repro.lang.syntax import (
    binders,
    bound_variables,
    check_closed,
    free_variables,
    has_unique_binders,
    subterms,
    term_size,
)


class TestFreeVariables:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", set()),
            ("x", {"x"}),
            ("add1", set()),
            ("(loop)", set()),
            ("(lambda (x) x)", set()),
            ("(lambda (x) y)", {"y"}),
            ("(f x)", {"f", "x"}),
            ("(let (x 1) x)", set()),
            ("(let (x y) x)", {"y"}),
            ("(let (x x) x)", {"x"}),  # rhs is outside the binding
            ("(if0 a b c)", {"a", "b", "c"}),
            ("(+ x (- y z))", {"x", "y", "z"}),
            ("(lambda (x) (let (y x) (f y)))", {"f"}),
        ],
    )
    def test_cases(self, source, expected):
        assert free_variables(parse(source)) == expected


class TestBinders:
    def test_collects_duplicates(self):
        term = parse("((lambda (x) x) (lambda (x) x))")
        assert binders(term) == ["x", "x"]

    def test_let_and_lambda(self):
        term = parse("(let (a 1) (lambda (b) (let (c b) c)))")
        assert set(binders(term)) == {"a", "b", "c"}
        assert bound_variables(term) == {"a", "b", "c"}


class TestUniqueBinders:
    def test_unique(self):
        assert has_unique_binders(parse("(let (a 1) (lambda (b) (a b)))"))

    def test_duplicate_binder(self):
        assert not has_unique_binders(parse("((lambda (x) x) (lambda (x) x))"))

    def test_binder_shadowing_free_variable(self):
        assert not has_unique_binders(parse("(x (lambda (x) x))"))


class TestSubtermsAndSize:
    def test_size_counts_nodes(self):
        assert term_size(parse("x")) == 1
        assert term_size(parse("(f x)")) == 3
        assert term_size(parse("(if0 a b c)")) == 4
        assert term_size(parse("(+ 1 2)")) == 3

    def test_subterms_preorder_root_first(self):
        term = parse("(let (x 1) (f x))")
        first = next(iter(subterms(term)))
        assert first == term

    def test_subterms_count_matches_size(self):
        term = parse("(let (f (lambda (x) (if0 x 0 (f (- x 1))))) (f 10))")
        assert len(list(subterms(term))) == term_size(term)


class TestCheckClosed:
    def test_closed_term_passes(self):
        check_closed(parse("(lambda (x) x)"))

    def test_open_term_raises(self):
        with pytest.raises(ScopeError):
            check_closed(parse("(f x)"))

    def test_allowed_set(self):
        check_closed(parse("(f x)"), allowed=frozenset({"f", "x"}))
