"""Run-time values, environments, and stores (paper Figures 1-3 domains).

The concrete domains are::

    Ans = Val x Sto
    Env = Var -> Loc                  (finite table)
    Sto = Loc -> Val                  (finite table)
    Val = Num + Clo                   (direct / semantic-CPS)
    Clo = (Var x A x Env) + inc + dec

and, for the syntactic-CPS interpreter (Figure 3)::

    Val = Num + Clo + Con
    Clo = (Var x KVar x cps(A) x Env) + inck + deck
    Con = (Var x cps(A) x Env) + stop

Numbers are represented directly as Python ints.  Environments are
persistent (closures capture them); the store is single-threaded
through evaluation exactly as in the figures, so it is implemented as
a mutable table with an allocation counter.  ``new`` allocates
locations tagged with the variable they were created for, so that
``new⁻¹`` (recovering the variable from a location, which the
abstraction step of Section 4.1 uses) is trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Union

from repro.interp.errors import StuckError


@dataclass(frozen=True, slots=True)
class Loc:
    """A store location, tagged with the variable it was created for."""

    name: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.name}@{self.index}"


class Env:
    """A persistent finite map from variable names to locations."""

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[str, Loc] | None = None) -> None:
        self._table: dict[str, Loc] = dict(table) if table else {}

    def bind(self, name: str, loc: Loc) -> "Env":
        """Return a new environment extended with ``name -> loc``."""
        extended = dict(self._table)
        extended[name] = loc
        return Env(extended)

    def lookup(self, name: str) -> Loc:
        """Return the location of ``name``, or raise `StuckError`."""
        try:
            return self._table[name]
        except KeyError:
            raise StuckError(f"unbound variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in self._table.items())
        return f"Env({inner})"


class Store:
    """A single-threaded finite map from locations to values.

    The operational rules of Figures 1-3 thread the store linearly, so
    a mutable table is a faithful and efficient representation.  The
    allocation counter guarantees globally fresh locations.
    """

    __slots__ = ("_table", "_next")

    def __init__(self) -> None:
        self._table: dict[Loc, Any] = {}
        self._next = 0

    def new(self, name: str) -> Loc:
        """Allocate a fresh location for variable ``name``."""
        loc = Loc(name, self._next)
        self._next += 1
        return loc

    def bind(self, loc: Loc, value: Any) -> None:
        """Store ``value`` at ``loc``."""
        self._table[loc] = value

    def lookup(self, loc: Loc) -> Any:
        """Return the value at ``loc``, or raise `StuckError`."""
        try:
            return self._table[loc]
        except KeyError:
            raise StuckError(f"dangling location {loc}") from None

    def items(self) -> Iterator[tuple[Loc, Any]]:
        """Iterate over (location, value) pairs."""
        return iter(self._table.items())

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, loc: Loc) -> bool:
        return loc in self._table


@dataclass(frozen=True, slots=True)
class PrimVal:
    """A primitive-procedure tag: ``inc``/``dec`` (direct and
    semantic-CPS) or ``inck``/``deck`` (syntactic-CPS)."""

    tag: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.tag


#: The direct/semantic-CPS primitive values.
INC = PrimVal("inc")
DEC = PrimVal("dec")

#: The syntactic-CPS primitive values.
INCK = PrimVal("inck")
DECK = PrimVal("deck")


@dataclass(frozen=True, slots=True)
class Closure:
    """A user closure ``(cl x, M, rho)`` of the direct semantics."""

    param: str
    body: Any  # repro.lang.ast.Term
    env: Env


@dataclass(frozen=True, slots=True)
class CpsClosure:
    """A user closure ``(cl x k, P, rho)`` of the syntactic-CPS
    semantics; ``P`` is a cps(A) term."""

    param: str
    kparam: str
    body: Any  # repro.cps.ast.CTerm
    env: Env


@dataclass(frozen=True, slots=True)
class CoKont:
    """A reified continuation ``(co x, P, rho)`` of the syntactic-CPS
    semantics."""

    param: str
    body: Any  # repro.cps.ast.CTerm
    env: Env


@dataclass(frozen=True, slots=True)
class StopKont:
    """The initial continuation ``stop``."""


STOP = StopKont()


@dataclass(frozen=True, slots=True)
class Frame:
    """A semantic-CPS continuation frame ``((let (x []) M), rho)``."""

    name: str
    body: Any  # repro.lang.ast.Term
    env: Env


#: A semantic-CPS continuation: a stack of frames, innermost first
#: (``nil`` is the empty tuple).
Kont = tuple[Frame, ...]

#: Values of the direct and semantic-CPS interpreters.
DirectValue = Union[int, PrimVal, Closure]

#: Values of the syntactic-CPS interpreter.
CpsValue = Union[int, PrimVal, CpsClosure, CoKont, StopKont]


@dataclass(frozen=True, slots=True)
class Answer:
    """An answer: a run-time value paired with the final store."""

    value: Any
    store: Store = field(compare=False)


def expect_number(value: Any, context: str) -> int:
    """Return ``value`` as an int or raise `StuckError`."""
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise StuckError(f"{context}: expected a number, got {value!r}")
