"""Exceptions raised by the concrete interpreters."""

from __future__ import annotations


class InterpError(Exception):
    """Base class for interpreter errors."""


class StuckError(InterpError):
    """The program reached a state with no applicable rule.

    Examples: applying a number, incrementing a closure, referencing
    an unbound variable, or branching on a continuation where the
    semantics does not define one.
    """


class FuelExhausted(InterpError):
    """Evaluation exceeded the step budget.

    The source language is untyped and supports recursion through
    self-application, so evaluation may legitimately diverge; fuel
    makes divergence observable in tests.
    """

    def __init__(self, fuel: int) -> None:
        self.fuel = fuel
        super().__init__(f"evaluation exceeded {fuel} steps")


class StackOverflow(InterpError):
    """The evaluated program's control stack outgrew the host stack.

    Only the direct interpreter can raise this: Figure 1 is a big-step
    evaluator whose ``app`` rule is genuinely recursive, so deeply
    nested non-tail calls consume host stack frames.  The machines of
    Figures 2 and 3 never raise it — their continuations are explicit.
    """

    def __init__(self) -> None:
        super().__init__("interpreted control stack exceeded the host limit")


class Diverged(InterpError):
    """Evaluation reached the `loop` construct, which never returns.

    ``loop`` abbreviates ``x := 0; while true x := x + 1`` (paper
    Section 6.2); concretely it has no answer, so the interpreters
    raise instead of spinning down the fuel.
    """

    def __init__(self) -> None:
        super().__init__("(loop) diverges: it never produces a value")
