"""The direct (store) interpreter ``M`` — paper Figure 1.

A big-step evaluator for the restricted subset.  The let-spine of a
term is traversed iteratively (those transitions are tail calls in the
figure); genuine recursion happens only at procedure application and
conditional branches, so the Python stack depth tracks the evaluated
program's control stack, as in the figure.
"""

from __future__ import annotations

import sys

from repro.anf.validate import validate_anf
from repro.interp.errors import Diverged, FuelExhausted, StackOverflow, StuckError
from repro.interp.values import (
    DEC,
    INC,
    Answer,
    Closure,
    DirectValue,
    Env,
    Store,
    expect_number,
)
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.obs.events import InterpStep, term_label
from repro.obs.sinks import NULL_SINK, Sink

#: Default step budget for evaluation.
DEFAULT_FUEL = 100_000

#: Semantics of the second-class operators.
OPERATIONS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


class Fuel:
    """A mutable step budget shared across an evaluation.

    The fuel meter is threaded through every interpreter transition
    already, so it also carries the `repro.obs` trace sink: ``emit``
    is the sink's bound method when tracing is on, None otherwise —
    producers pay one attribute check per step on the disabled path.
    """

    __slots__ = ("remaining", "budget", "trace", "emit")

    def __init__(self, budget: int, trace: Sink = NULL_SINK) -> None:
        self.budget = budget
        self.remaining = budget
        self.trace = trace
        self.emit = trace.emit if trace.enabled else None

    def tick(self) -> None:
        """Consume one step, raising `FuelExhausted` at zero."""
        if self.remaining <= 0:
            raise FuelExhausted(self.budget)
        self.remaining -= 1


def evaluate_value(value: Term, env: Env, store: Store) -> DirectValue:
    """The auxiliary function ``phi`` of Figure 1: evaluate a syntactic
    value to a run-time value."""
    match value:
        case Num(n):
            return n
        case Var(name):
            return store.lookup(env.lookup(name))
        case Prim("add1"):
            return INC
        case Prim("sub1"):
            return DEC
        case Lam(param, body):
            return Closure(param, body, env)
    raise StuckError(f"not a syntactic value: {value!r}")


def apply_procedure(
    fun: DirectValue, arg: DirectValue, store: Store, fuel: Fuel
) -> DirectValue:
    """The ``app`` predicate of Figure 1: apply a run-time procedure."""
    if fun is INC:
        return expect_number(arg, "add1") + 1
    if fun is DEC:
        return expect_number(arg, "sub1") - 1
    if isinstance(fun, Closure):
        loc = store.new(fun.param)
        store.bind(loc, arg)
        return _eval(fun.body, fun.env.bind(fun.param, loc), store, fuel)
    raise StuckError(f"cannot apply non-procedure {fun!r}")


def _branch_index(test: DirectValue) -> bool:
    """True for the then-branch: the test evaluated to 0."""
    return isinstance(test, int) and not isinstance(test, bool) and test == 0


def _eval(term: Term, env: Env, store: Store, fuel: Fuel) -> DirectValue:
    while True:
        fuel.tick()
        if fuel.emit is not None:
            fuel.emit(InterpStep("direct", term_label(term), fuel.remaining))
        if is_value(term):
            return evaluate_value(term, env, store)
        if not isinstance(term, Let):
            raise StuckError(f"term is not in the restricted subset: {term!r}")
        rhs = term.rhs
        if is_value(rhs):
            result = evaluate_value(rhs, env, store)
        else:
            match rhs:
                case App(fun, arg):
                    fun_v = evaluate_value(fun, env, store)
                    arg_v = evaluate_value(arg, env, store)
                    result = apply_procedure(fun_v, arg_v, store, fuel)
                case If0(test, then, orelse):
                    test_v = evaluate_value(test, env, store)
                    branch = then if _branch_index(test_v) else orelse
                    result = _eval(branch, env, store, fuel)
                case PrimApp(op, args):
                    numbers = [
                        expect_number(evaluate_value(a, env, store), op)
                        for a in args
                    ]
                    result = OPERATIONS[op](*numbers)
                case Loop():
                    raise Diverged()
                case _:
                    raise StuckError(f"invalid let right-hand side: {rhs!r}")
        loc = store.new(term.name)
        store.bind(loc, result)
        env = env.bind(term.name, loc)
        term = term.body


def run_direct(
    term: Term,
    env: Env | None = None,
    store: Store | None = None,
    fuel: int = DEFAULT_FUEL,
    check: bool = True,
    trace: Sink = NULL_SINK,
) -> Answer:
    """Evaluate an A-normal form ``term`` with the direct interpreter.

    Args:
        term: a program of the restricted subset (use
            :func:`repro.anf.normalize` first for arbitrary terms).
        env, store: optional initial environment and store, for programs
            with free variables.
        fuel: step budget; `FuelExhausted` is raised when it runs out.
        check: validate that ``term`` is in the restricted subset.
        trace: optional `repro.obs` sink receiving one
            ``interp.step`` event per machine transition (default:
            disabled, zero overhead).

    Returns:
        The final `Answer` (value and store).
    """
    if check:
        validate_anf(term)
    env = env if env is not None else Env()
    store = store if store is not None else Store()
    # Figure 1's `app` rule is genuinely recursive; give the evaluated
    # program's control stack room proportional to the step budget.
    # (CPython >= 3.11 heap-allocates pure-Python frames, so a large
    # limit is safe.)
    previous_limit = sys.getrecursionlimit()
    wanted = min(3 * fuel + 1_000, 1_000_000)
    if wanted > previous_limit:
        sys.setrecursionlimit(wanted)
    try:
        value = _eval(term, env, store, Fuel(fuel, trace))
    except RecursionError:
        raise StackOverflow() from None
    finally:
        if wanted > previous_limit:
            sys.setrecursionlimit(previous_limit)
    return Answer(value, store)
