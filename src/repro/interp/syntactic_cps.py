"""The syntactic-CPS interpreter ``Mc`` — paper Figure 3.

A specialized direct interpreter for cps(A) programs.  Its run-time
values include reified continuations ``(co x, P, rho)`` and ``stop``:
the salient aspect of the CPS transformation is precisely that the
continuation becomes an object the program manipulates, and Figure 3
keeps those objects distinguishable from user closures (footnote 4:
representing continuations as procedures would be unrealistic and
confusing for the data flow analyzers).

Every rule of the figure is a tail transition (the program is in CPS),
so the machine is a single loop.
"""

from __future__ import annotations

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
)
from repro.cps.transform import TOP_KVAR
from repro.cps.validate import validate_cps
from repro.interp.direct import DEFAULT_FUEL, OPERATIONS, Fuel
from repro.obs.events import InterpStep, term_label
from repro.obs.sinks import NULL_SINK, Sink
from repro.interp.errors import Diverged, StuckError
from repro.interp.values import (
    DECK,
    INCK,
    STOP,
    Answer,
    CoKont,
    CpsClosure,
    CpsValue,
    Env,
    Store,
    StopKont,
    expect_number,
)


def evaluate_cps_value(value: CValue, env: Env, store: Store) -> CpsValue:
    """The auxiliary function ``phi_c`` of Figure 3."""
    match value:
        case CNum(n):
            return n
        case CVar(name):
            return store.lookup(env.lookup(name))
        case CPrim("add1k"):
            return INCK
        case CPrim("sub1k"):
            return DECK
        case CLam(param, kparam, body):
            return CpsClosure(param, kparam, body, env)
    raise StuckError(f"not a cps(A) value: {value!r}")


def run_syntactic_cps(
    term: CTerm,
    env: Env | None = None,
    store: Store | None = None,
    top_kvar: str = TOP_KVAR,
    fuel: int = DEFAULT_FUEL,
    check: bool = True,
    trace: Sink = NULL_SINK,
) -> Answer:
    """Evaluate a cps(A) program with the interpreter of Figure 3.

    The top continuation variable ``top_kvar`` is bound to ``stop`` in
    the initial environment and store, as in Lemma 3.3.  ``trace``
    receives one ``interp.step`` event per machine transition when
    enabled (``apply``/``return`` transitions are labelled by kind).
    """
    if check:
        validate_cps(term, frozenset((top_kvar,)))
    env = env if env is not None else Env()
    store = store if store is not None else Store()
    if top_kvar not in env:
        loc = store.new(top_kvar)
        store.bind(loc, STOP)
        env = env.bind(top_kvar, loc)
    meter = Fuel(fuel, trace)

    def bind(target_env: Env, name: str, value: CpsValue) -> Env:
        loc = store.new(name)
        store.bind(loc, value)
        return target_env.bind(name, loc)

    state: tuple = ("eval", term, env)
    while True:
        meter.tick()
        kind = state[0]
        if meter.emit is not None:
            label = term_label(state[1]) if kind == "eval" else kind
            meter.emit(
                InterpStep("syntactic-cps", label, meter.remaining)
            )
        if kind == "eval":
            _, term, env = state
            match term:
                case KApp(kvar, value):
                    target = store.lookup(env.lookup(kvar))
                    result = evaluate_cps_value(value, env, store)
                    state = ("return", target, result)
                case CLet(name, value, body):
                    env = bind(env, name, evaluate_cps_value(value, env, store))
                    state = ("eval", body, env)
                case CApp(fun, arg, klam):
                    fun_v = evaluate_cps_value(fun, env, store)
                    arg_v = evaluate_cps_value(arg, env, store)
                    reified = CoKont(klam.param, klam.body, env)
                    state = ("apply", fun_v, arg_v, reified)
                case CIf0(kvar, klam, test, then, orelse):
                    test_v = evaluate_cps_value(test, env, store)
                    env = bind(env, kvar, CoKont(klam.param, klam.body, env))
                    is_zero = (
                        isinstance(test_v, int)
                        and not isinstance(test_v, bool)
                        and test_v == 0
                    )
                    state = ("eval", then if is_zero else orelse, env)
                case CPrimLet(name, op, args, body):
                    numbers = [
                        expect_number(
                            evaluate_cps_value(a, env, store), op
                        )
                        for a in args
                    ]
                    env = bind(env, name, OPERATIONS[op](*numbers))
                    state = ("eval", body, env)
                case CLoop(_):
                    raise Diverged()
                case _:
                    raise StuckError(f"not a cps(A) term: {term!r}")
        elif kind == "apply":
            # --- app_c: apply a procedure to a value and a continuation
            _, fun_v, arg_v, kont = state
            if fun_v is INCK or fun_v is DECK:
                delta = 1 if fun_v is INCK else -1
                result = expect_number(arg_v, "add1k/sub1k") + delta
                state = ("return", kont, result)
            elif isinstance(fun_v, CpsClosure):
                env = bind(fun_v.env, fun_v.param, arg_v)
                env = bind(env, fun_v.kparam, kont)
                state = ("eval", fun_v.body, env)
            else:
                raise StuckError(f"cannot apply non-procedure {fun_v!r}")
        else:
            # --- appr_c: return a value through a continuation ---------
            _, target, result = state
            if isinstance(target, StopKont):
                return Answer(result, store)
            if isinstance(target, CoKont):
                env = bind(target.env, target.param, result)
                state = ("eval", target.body, env)
            else:
                raise StuckError(f"cannot return through {target!r}")
