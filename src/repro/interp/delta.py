"""The ``δ`` map relating direct and CPS run-time values (Section 3.3).

The paper defines::

    δ(n)              = n
    δ(inc)            = inck
    δ(dec)            = deck
    δ((cl x, M, rho)) = (cl x k_x, F_{k_x}[M], δ(rho))

and extends δ pointwise to stores and componentwise to answers.
Lemma 3.3 states that running ``F_k[M]`` under `Mc` yields the δ-image
of the semantic-CPS answer for ``M``, with the CPS store holding
additional continuation entries.

Two independent evaluations allocate locations in different orders, so
rather than comparing stores entry-by-entry we compare the *reachable
structure* of the answers: numbers must agree, primitive tags must be
δ-images, and closures must have δ-related bodies and δ-related
environments on the free variables of those bodies.  This captures
exactly the observable content of the lemma while being insensitive to
location naming.
"""

from __future__ import annotations

from repro.cps.transform import cps_transform, kvar_for
from repro.interp.values import (
    DEC,
    DECK,
    INC,
    INCK,
    Answer,
    Closure,
    CoKont,
    CpsClosure,
    Store,
    StopKont,
)
from repro.lang.syntax import free_variables

#: Default recursion guard for structural comparison.
MAX_DEPTH = 100


def values_delta_related(
    direct_value: object,
    direct_store: Store,
    cps_value: object,
    cps_store: Store,
    depth: int = MAX_DEPTH,
) -> bool:
    """True when ``cps_value`` is the δ-image of ``direct_value``.

    Closures are compared by transforming the direct closure's body on
    the fly (δ is defined in terms of ``F``) and recursively comparing
    the captured environments on the body's free variables.
    """
    if depth <= 0:
        raise RecursionError("delta comparison exceeded depth guard")
    if isinstance(direct_value, int) and not isinstance(direct_value, bool):
        return direct_value == cps_value
    if direct_value is INC:
        return cps_value is INCK
    if direct_value is DEC:
        return cps_value is DECK
    if isinstance(direct_value, Closure):
        if not isinstance(cps_value, CpsClosure):
            return False
        if cps_value.param != direct_value.param:
            return False
        if cps_value.kparam != kvar_for(direct_value.param):
            return False
        expected_body = cps_transform(
            direct_value.body, kvar_for(direct_value.param), check=False
        )
        if cps_value.body != expected_body:
            return False
        needed = free_variables(direct_value.body) - {direct_value.param}
        for name in needed:
            if name not in direct_value.env or name not in cps_value.env:
                return False
            direct_entry = direct_store.lookup(direct_value.env.lookup(name))
            cps_entry = cps_store.lookup(cps_value.env.lookup(name))
            if not values_delta_related(
                direct_entry, direct_store, cps_entry, cps_store, depth - 1
            ):
                return False
        return True
    if isinstance(direct_value, (CoKont, StopKont)):
        # Continuations are CPS-only values; δ has no direct preimage.
        return False
    return False


def answers_delta_related(
    direct_answer: Answer, cps_answer: Answer, depth: int = MAX_DEPTH
) -> bool:
    """True when the answers are related as in Lemma 3.3.

    The value components must be δ-related; the CPS store may contain
    extra continuation entries (they are ignored by the reachability
    comparison).
    """
    return values_delta_related(
        direct_answer.value,
        direct_answer.store,
        cps_answer.value,
        cps_answer.store,
        depth,
    )
