"""The semantic-CPS interpreter ``C`` — paper Figure 2.

An abstract machine over source (A-normal form) terms whose control
state is an explicit continuation: a stack of ``((let (x []) M), rho)``
frames.  Every rule of Figure 2 is a tail transition, so the machine
runs as a single loop with no Python recursion; ``appk`` is the CPS
counterpart of ``app`` and ``appr`` is the return operation (bind the
return value, restore the environment, pop the control stack).
"""

from __future__ import annotations

from repro.anf.validate import validate_anf
from repro.interp.direct import DEFAULT_FUEL, OPERATIONS, Fuel, evaluate_value
from repro.interp.errors import Diverged, StuckError
from repro.interp.values import (
    DEC,
    INC,
    Answer,
    Closure,
    DirectValue,
    Env,
    Frame,
    Kont,
    Store,
    expect_number,
)
from repro.lang.ast import App, If0, Let, Loop, PrimApp, Term, is_value
from repro.obs.events import InterpStep, term_label
from repro.obs.sinks import NULL_SINK, Sink


def run_semantic_cps(
    term: Term,
    env: Env | None = None,
    store: Store | None = None,
    kont: Kont = (),
    fuel: int = DEFAULT_FUEL,
    check: bool = True,
    trace: Sink = NULL_SINK,
) -> Answer:
    """Evaluate an A-normal form ``term`` with the semantic-CPS machine.

    By Lemma 3.1 the result coincides with
    :func:`repro.interp.direct.run_direct` (the test suite checks this
    on the corpus and on random programs).  ``trace`` receives one
    ``interp.step`` event per machine transition when enabled.
    """
    if check:
        validate_anf(term)
    env = env if env is not None else Env()
    store = store if store is not None else Store()
    meter = Fuel(fuel, trace)
    stack: list[Frame] = list(reversed(kont))  # top of stack = end of list

    def bind(target_env: Env, name: str, value: DirectValue) -> Env:
        loc = store.new(name)
        store.bind(loc, value)
        return target_env.bind(name, loc)

    while True:
        meter.tick()
        if meter.emit is not None:
            meter.emit(
                InterpStep("semantic-cps", term_label(term), meter.remaining)
            )
        # --- C: evaluate the current term ------------------------------
        if is_value(term):
            value = evaluate_value(term, env, store)
            # --- appr: return `value` to the continuation --------------
            if not stack:
                return Answer(value, store)
            frame = stack.pop()
            env = bind(frame.env, frame.name, value)
            term = frame.body
            continue
        if not isinstance(term, Let):
            raise StuckError(f"term is not in the restricted subset: {term!r}")
        name, rhs, body = term.name, term.rhs, term.body
        if is_value(rhs):
            env = bind(env, name, evaluate_value(rhs, env, store))
            term = body
            continue
        match rhs:
            case App(fun, arg):
                fun_v = evaluate_value(fun, env, store)
                arg_v = evaluate_value(arg, env, store)
                # --- appk: apply with an explicit continuation ---------
                if fun_v is INC or fun_v is DEC:
                    delta = 1 if fun_v is INC else -1
                    result = expect_number(arg_v, "add1/sub1") + delta
                    env = bind(env, name, result)
                    term = body
                elif isinstance(fun_v, Closure):
                    stack.append(Frame(name, body, env))
                    env = bind(fun_v.env, fun_v.param, arg_v)
                    term = fun_v.body
                else:
                    raise StuckError(f"cannot apply non-procedure {fun_v!r}")
            case If0(test, then, orelse):
                test_v = evaluate_value(test, env, store)
                is_zero = (
                    isinstance(test_v, int)
                    and not isinstance(test_v, bool)
                    and test_v == 0
                )
                stack.append(Frame(name, body, env))
                term = then if is_zero else orelse
            case PrimApp(op, args):
                numbers = [
                    expect_number(evaluate_value(a, env, store), op)
                    for a in args
                ]
                env = bind(env, name, OPERATIONS[op](*numbers))
                term = body
            case Loop():
                raise Diverged()
            case _:
                raise StuckError(f"invalid let right-hand side: {rhs!r}")
