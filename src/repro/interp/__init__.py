"""Concrete interpreters (paper Figures 1-3).

Three interpreters, all defined over the restricted (A-normal form)
subset:

- :mod:`repro.interp.direct` — the direct store interpreter ``M``
  (Figure 1), a big-step evaluator.
- :mod:`repro.interp.semantic_cps` — the semantic-CPS interpreter ``C``
  (Figure 2), an abstract machine whose continuations are lists of
  ``(let (x []) M)`` frames paired with environments.
- :mod:`repro.interp.syntactic_cps` — the interpreter ``Mc``
  (Figure 3) for programs in the image of the CPS transformation;
  its run-time values include reified continuations.

:mod:`repro.interp.delta` implements the ``δ`` map relating direct
run-time values to their CPS counterparts (Section 3.3), used to state
and test Lemma 3.3.
"""

from repro.interp.direct import run_direct
from repro.interp.delta import answers_delta_related, values_delta_related
from repro.interp.errors import (
    Diverged,
    FuelExhausted,
    InterpError,
    StuckError,
)
from repro.interp.semantic_cps import run_semantic_cps
from repro.interp.syntactic_cps import run_syntactic_cps
from repro.interp.values import (
    DEC,
    INC,
    Answer,
    Closure,
    Env,
    Loc,
    PrimVal,
    Store,
)

__all__ = [
    "run_direct",
    "run_semantic_cps",
    "run_syntactic_cps",
    "answers_delta_related",
    "values_delta_related",
    "InterpError",
    "StuckError",
    "FuelExhausted",
    "Diverged",
    "Answer",
    "Closure",
    "Env",
    "Loc",
    "Store",
    "PrimVal",
    "INC",
    "DEC",
]
