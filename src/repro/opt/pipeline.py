"""The iterated optimize/analyze loop.

Each round re-runs the direct analysis on the current program (the
transforms change program points, so facts must be recomputed) and
applies the selected passes.  The loop stops when a round leaves the
program unchanged or the round budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.direct import analyze_direct
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.domains.absval import AbsVal
from repro.domains.protocol import NumDomain
from repro.lang.ast import Term
from repro.opt.constfold import constant_fold
from repro.opt.deadcode import eliminate_dead_code
from repro.opt.dup import duplicate_join_continuations
from repro.opt.inline import inline_monomorphic_calls

#: Pass names accepted by :func:`optimize`, in their application order.
ALL_PASSES = ("inline", "dup", "fold", "dce")


@dataclass(frozen=True)
class OptimizationReport:
    """Outcome of an optimization run."""

    #: The input program.
    original: Term
    #: The optimized program.
    term: Term
    #: Number of full rounds executed (including the no-change round).
    rounds: int
    #: The direct analysis of the *final* program.
    analysis: AnalysisResult
    #: Pass names in the order applied each round.
    passes: tuple[str, ...] = field(default=ALL_PASSES)


def optimize(
    term: Term,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    passes: Sequence[str] = ALL_PASSES,
    max_rounds: int = 4,
    inline_size: int = 60,
    dup_size: int = 60,
) -> OptimizationReport:
    """Optimize a restricted-subset program to a fixed point (bounded).

    Args:
        term: the program (restricted subset, unique binders).
        domain: analysis domain (default constant propagation).
        initial: free-variable assumptions for the analysis.
        passes: which passes to run, in order; a subset of
            ``("inline", "dup", "fold", "dce")``.
        max_rounds: round budget.
        inline_size, dup_size: size budgets of the duplicating passes.

    Returns:
        An `OptimizationReport` with the final program and analysis.
    """
    unknown = set(passes) - set(ALL_PASSES)
    if unknown:
        raise ValueError(f"unknown passes: {sorted(unknown)}")
    original = term
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        result = analyze_direct(term, domain, initial=initial)
        previous = term
        for name in passes:
            if name == "inline":
                term = inline_monomorphic_calls(
                    term, domain=domain, initial=initial, max_size=inline_size
                )
            elif name == "dup":
                term = duplicate_join_continuations(term, max_size=dup_size)
            elif name == "fold":
                term = constant_fold(term, domain=domain, initial=initial)
            elif name == "dce":
                term = eliminate_dead_code(term)
            validate_anf(term)
        if term == previous:
            break
    final = analyze_direct(term, domain, initial=initial)
    return OptimizationReport(original, term, rounds, final, tuple(passes))
