"""Analysis-driven optimizations, including the paper's conclusion.

Section 6.3 argues that "a practical analysis based on the CPS
transformation should not perform any duplication when the analysis is
distributive ... a more practical alternative is to combine heuristic
in-lining with a direct-style analysis", and the abstract adds that "a
direct data flow analysis that relies on some amount of duplication
would be as satisfactory as a CPS analysis".  This package implements
those alternatives:

- :mod:`repro.opt.constfold` — constant folding and static branch
  collapsing driven by the direct analysis;
- :mod:`repro.opt.deadcode` — pure dead-binding elimination;
- :mod:`repro.opt.inline` — heuristic inlining of monomorphic,
  non-recursive calls (the Section 6.3 proposal);
- :mod:`repro.opt.dup` — bounded continuation duplication into
  conditional branches (the "some amount of duplication" of the
  abstract; recovers the Theorem 5.2 precision in direct style);
- :mod:`repro.opt.pipeline` — an iterated optimize/analyze loop.
"""

from repro.opt.constfold import constant_fold
from repro.opt.deadcode import eliminate_dead_code, is_pure
from repro.opt.dup import duplicate_join_continuations
from repro.opt.inline import inline_monomorphic_calls
from repro.opt.pipeline import OptimizationReport, optimize

__all__ = [
    "constant_fold",
    "eliminate_dead_code",
    "is_pure",
    "duplicate_join_continuations",
    "inline_monomorphic_calls",
    "OptimizationReport",
    "optimize",
]
