"""Dead-binding elimination.

A binding ``(let (x rhs) body)`` is removed when ``x`` is unused in
``body`` and ``rhs`` is *pure* — guaranteed to produce a value without
observable effects.  In this language the only effects are divergence
(applications may loop via self-application; ``loop`` always does), so
purity is a syntactic check: values and operator applications are
pure, conditionals are pure when both branches are, applications and
``loop`` are not.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    PrimApp,
    Term,
    is_value,
)
from repro.lang.syntax import free_variables


def is_pure(term: Term) -> bool:
    """True when evaluating ``term`` always terminates with a value."""
    if is_value(term):
        return True
    match term:
        case Let(_, rhs, body):
            return is_pure(rhs) and is_pure(body)
        case PrimApp(_, _):
            return True  # arguments are values in the restricted subset
        case If0(_, then, orelse):
            return is_pure(then) and is_pure(orelse)
        case App(_, _) | Loop():
            return False
    return False


def eliminate_dead_code(term: Term) -> Term:
    """Remove unused pure bindings, bottom-up, everywhere (including
    inside lambda bodies and conditional branches)."""
    match term:
        case Let(name, rhs, body):
            new_body = eliminate_dead_code(body)
            new_rhs = _clean_rhs(rhs)
            if name not in free_variables(new_body) and is_pure(new_rhs):
                return new_body
            return Let(name, new_rhs, new_body)
        case Lam(param, body):
            return Lam(param, eliminate_dead_code(body))
        case _:
            return term


def _clean_rhs(rhs: Term) -> Term:
    match rhs:
        case Lam(param, body):
            return Lam(param, eliminate_dead_code(body))
        case If0(test, then, orelse):
            return If0(
                test, eliminate_dead_code(then), eliminate_dead_code(orelse)
            )
        case _:
            return rhs
