"""Bounded continuation duplication at conditionals.

The paper's abstract closes with: "in practice, a direct data flow
analysis that relies on *some amount of duplication* would be as
satisfactory as a CPS analysis."  This pass performs that duplication
explicitly, in direct style: for a conditional binding

    (let (x (if0 V M1 M2)) M)

it clones the continuation ``M`` into both branches,

    (let (t (if0 V  [M1 ; x1 := result; M{x:=x1}]
                    [M2 ; x2 := result; M{x:=x2}]))
      t)

so a subsequent *direct* analysis (Figure 4) analyzes the continuation
once per path — recovering exactly the Theorem 5.2 precision that the
CPS analyses obtain implicitly, at the same (bounded) duplication
cost.  A size budget keeps the blow-up in check, mirroring the
Section 6.2 advice that practical CPS analyses must limit duplication.
"""

from __future__ import annotations

from repro.anf.splice import bind_anf
from repro.lang.ast import If0, Lam, Let, Term, Var
from repro.lang.rename import NameSupply, fresh_name_supply, uniquify
from repro.lang.syntax import term_size

#: Default size budget for duplicated continuations (AST nodes).
DEFAULT_MAX_SIZE = 60


def duplicate_join_continuations(
    term: Term, max_size: int = DEFAULT_MAX_SIZE
) -> Term:
    """Clone conditional continuations into both branches, bottom-up,
    wherever the continuation is within the size budget."""
    supply = fresh_name_supply(term)
    return _Duplicator(supply, max_size).rewrite(term)


class _Duplicator:
    def __init__(self, supply: NameSupply, max_size: int) -> None:
        self.supply = supply
        self.max_size = max_size
        self.duplicated_count = 0

    def rewrite(self, term: Term) -> Term:
        match term:
            case Let(name, If0(test, then, orelse), body):
                new_body = self.rewrite(body)
                then_r = self.rewrite(then)
                else_r = self.rewrite(orelse)
                if (
                    isinstance(new_body, Var)
                    or term_size(new_body) > self.max_size
                ):
                    # nothing to gain (bare tail) or over budget
                    return Let(name, If0(test, then_r, else_r), new_body)
                return self._duplicate(name, test, then_r, else_r, new_body)
            case Let(name, rhs, body):
                return Let(name, self._rewrite_rhs(rhs), self.rewrite(body))
            case Lam(param, body):
                return Lam(param, self.rewrite(body))
            case _:
                return term

    def _rewrite_rhs(self, rhs: Term) -> Term:
        if isinstance(rhs, Lam):
            return Lam(rhs.param, self.rewrite(rhs.body))
        return rhs

    def _duplicate(
        self, name: str, test: Term, then: Term, orelse: Term, body: Term
    ) -> Term:
        """Build the duplicated conditional."""
        self.duplicated_count += 1
        then_copy = uniquify(Lam(name, body), self.supply)
        else_copy = uniquify(Lam(name, body), self.supply)
        assert isinstance(then_copy, Lam) and isinstance(else_copy, Lam)
        then_branch = bind_anf(then, then_copy.param, then_copy.body)
        else_branch = bind_anf(orelse, else_copy.param, else_copy.body)
        result = self.supply.fresh("dup")
        return Let(
            result, If0(test, then_branch, else_branch), Var(result)
        )
