"""Heuristic inlining of monomorphic calls (paper Section 6.3).

The paper's conclusion proposes combining *heuristic in-lining* with a
direct-style analysis as the practical alternative to CPS-based
duplication.  This pass inlines a call site when:

- the direct analysis resolves the function position to exactly one
  abstract closure (the call is *monomorphic*),
- that closure's lambda is syntactically present in the program (not
  an initial-store assumption),
- the callee is not directly recursive through the same closure,
- the callee body is within the size budget, and
- every free variable of the callee body (other than its parameter)
  is bound by a *top-level straight-line* binder — a let on the
  program's outer spine, outside any lambda or branch, plus the
  program's assumed free variables.  Such binders execute exactly
  once, so the value the closure captured is the value in scope at
  the call site; abstract closures drop their environments (Section
  4.1), which makes this check the semantic safety condition for
  splicing a closure body into a different context.

The inlined copy is alpha-renamed, so the unique-binder invariant is
preserved; after inlining, re-running the direct analysis sees the
call's continuation specialized to this one call site, which is
exactly the duplication the CPS analyses perform implicitly.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import AbsClo, abstract_value
from repro.analysis.direct import analyze_direct
from repro.analysis.result import AnalysisResult
from repro.anf.splice import bind_anf
from repro.domains.absval import AbsVal
from repro.domains.protocol import NumDomain
from repro.lang.ast import App, If0, Lam, Let, Term
from repro.lang.rename import NameSupply, fresh_name_supply, uniquify
from repro.lang.syntax import free_variables, subterms, term_size

#: Default size budget for inlined callee bodies (AST nodes).
DEFAULT_MAX_SIZE = 60


def inline_monomorphic_calls(
    term: Term,
    result: AnalysisResult | None = None,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    max_size: int = DEFAULT_MAX_SIZE,
) -> Term:
    """Inline every monomorphic, non-recursive, small call in ``term``.

    Returns the rewritten program; run :func:`repro.analysis.direct.
    analyze_direct` on it again to see the precision gained.
    """
    if result is None:
        result = analyze_direct(term, domain, initial=initial)
    supply = fresh_name_supply(term)
    program_lambdas = {
        AbsClo(sub.param, sub.body)
        for sub in subterms(term)
        if isinstance(sub, Lam)
    }
    inliner = _Inliner(result, supply, program_lambdas, max_size)
    # Assumed free variables behave like once-bound globals.
    globals_ = frozenset(free_variables(term))
    inliner.linear_scope.update(globals_)
    return inliner.rewrite(term, linear=True, scope=globals_)


class _Inliner:
    def __init__(
        self,
        result: AnalysisResult,
        supply: NameSupply,
        program_lambdas: set[AbsClo],
        max_size: int,
    ) -> None:
        self.result = result
        self.supply = supply
        self.program_lambdas = program_lambdas
        self.max_size = max_size
        self.inlined_count = 0
        #: Binders on the outer straight-line spine (execute once).
        self.linear_scope: set[str] = set()

    def rewrite(self, term: Term, linear: bool, scope: frozenset) -> Term:
        match term:
            case Let(name, rhs, body):
                if linear:
                    self.linear_scope.add(name)
                new_body = self.rewrite(body, linear, scope | {name})
                if isinstance(rhs, App):
                    inlined = self._try_inline(name, rhs, new_body, scope)
                    if inlined is not None:
                        return inlined
                return Let(name, self._rewrite_rhs(rhs, scope), new_body)
            case Lam(param, body):
                return Lam(
                    param, self.rewrite(body, False, scope | {param})
                )
            case _:
                return term

    def _rewrite_rhs(self, rhs: Term, scope: frozenset) -> Term:
        match rhs:
            case Lam(param, body):
                return Lam(
                    param, self.rewrite(body, False, scope | {param})
                )
            case If0(test, then, orelse):
                return If0(
                    test,
                    self.rewrite(then, False, scope),
                    self.rewrite(orelse, False, scope),
                )
            case _:
                return rhs

    def _try_inline(
        self, name: str, rhs: App, body: Term, scope: frozenset
    ) -> Term | None:
        """Inline ``(let (name (f arg)) body)`` when the heuristic
        conditions hold; None when they do not."""
        fun = abstract_value(
            self.result.lattice, rhs.fun, self.result.answer.store
        )
        if len(fun.clos) != 1:
            return None  # polymorphic or unresolved call
        (callee,) = fun.clos
        if not isinstance(callee, AbsClo):
            return None  # primitive: nothing to inline
        if callee not in self.program_lambdas:
            return None  # closure assumed in the initial store
        if term_size(callee.body) > self.max_size:
            return None
        if self._directly_recursive(callee):
            return None
        captured = free_variables(callee.body) - {callee.param}
        if not captured <= self.linear_scope:
            return None  # captured bindings may differ at the site
        if not captured <= scope:
            return None  # captured bindings not visible at the site
        # alpha-rename a fresh copy of the callee
        renamed = uniquify(Lam(callee.param, callee.body), self.supply)
        assert isinstance(renamed, Lam)
        self.inlined_count += 1
        inlined_body = bind_anf(renamed.body, name, body)
        return Let(renamed.param, rhs.arg, inlined_body)

    def _directly_recursive(self, callee: AbsClo) -> bool:
        """Does any call inside the callee's body resolve back to the
        callee itself?"""
        for sub in subterms(callee.body):
            if isinstance(sub, Let) and isinstance(sub.rhs, App):
                fun = abstract_value(
                    self.result.lattice,
                    sub.rhs.fun,
                    self.result.answer.store,
                )
                if callee in fun.clos:
                    return True
        return False
