"""Constant folding and static branch collapsing.

Driven by an analysis result (any of the three analyzers): a binding
whose abstract value is a single integer constant is rewritten to bind
the literal, and a conditional whose test is statically decided
collapses to the taken branch.  Folding is restricted to right-hand
sides that provably terminate: folding a diverging computation into a
literal would change the program's behaviour.  Termination is
established either syntactically — `repro.opt.deadcode.is_pure`, sound
because the only effect in this language is divergence — or, for
applications, abstractly, when the operator can only be the ``add1``
or ``sub1`` primitive.

The two predicates deciding what fires, :func:`foldable_rhs` and
:func:`branch_decision`, are public: the `repro.lint` semantic passes
use exactly these to flag constant-foldable sites and unreachable
branches, which keeps every lint validated by this transformation by
construction.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import A_DEC, A_INC, abstract_value
from repro.analysis.direct import analyze_direct
from repro.analysis.result import AnalysisResult
from repro.anf.splice import bind_anf
from repro.domains.absval import AbsVal
from repro.domains.protocol import NumDomain
from repro.opt.deadcode import is_pure
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Num,
    PrimApp,
    Term,
    is_value,
)


def constant_fold(
    term: Term,
    result: AnalysisResult | None = None,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
) -> Term:
    """Fold constants and collapse decided branches in ``term``.

    Args:
        term: a program of the restricted subset (unique binders).
        result: a direct analysis result for ``term``; computed on the
            fly when omitted.
        domain, initial: forwarded to the analysis when it is computed
            here.

    Returns:
        The rewritten program (still in the restricted subset; binders
        unchanged, so the analysis facts remain valid for it).
    """
    if result is None:
        result = analyze_direct(term, domain, initial=initial)
    return _fold(term, result)


def foldable_rhs(rhs: Term, result: AnalysisResult) -> bool:
    """True when a constant-valued binding of ``rhs`` may be rewritten
    to the literal: the right-hand side provably terminates and is not
    already a value (nothing to gain)."""
    if is_value(rhs):
        return False
    if is_pure(rhs):
        return True
    if isinstance(rhs, App):
        # only primitive procedures terminate unconditionally
        fun = abstract_value(
            result.lattice, rhs.fun, result.answer.store
        )
        return bool(fun.clos) and fun.clos <= {A_INC, A_DEC}
    return False


def branch_decision(rhs: If0, result: AnalysisResult) -> str | None:
    """Which arm a conditional provably takes under ``result``:
    ``"then"`` when the test must be zero, ``"else"`` when it cannot
    be, ``None`` when the analysis leaves it undecided."""
    domain = result.lattice.domain
    test = abstract_value(result.lattice, rhs.test, result.answer.store)
    zero = domain.may_be_zero(test.num)
    nonzero = domain.may_be_nonzero(test.num) or bool(test.clos)
    if zero and not nonzero:
        return "then"
    if nonzero and not zero:
        return "else"
    return None


def _fold(term: Term, result: AnalysisResult) -> Term:
    match term:
        case Let(name, rhs, body):
            folded_body = _fold(body, result)
            constant = result.constant_of(name)
            if constant is not None and foldable_rhs(rhs, result):
                return Let(name, Num(constant), folded_body)
            if isinstance(rhs, If0):
                return _fold_branch(name, rhs, folded_body, result)
            return Let(name, _fold_value(rhs, result), folded_body)
        case Lam(param, body):
            return Lam(param, _fold(body, result))
        case _:
            return term


def _fold_value(rhs: Term, result: AnalysisResult) -> Term:
    """Fold inside lambda right-hand sides; leave the rest alone."""
    if isinstance(rhs, Lam):
        return Lam(rhs.param, _fold(rhs.body, result))
    return rhs


def _fold_branch(
    name: str, rhs: If0, body: Term, result: AnalysisResult
) -> Term:
    """Collapse a statically decided conditional to the taken branch,
    splicing it into the binding of the conditional's result."""
    then_branch = _fold(rhs.then, result)
    else_branch = _fold(rhs.orelse, result)
    match branch_decision(rhs, result):
        case "then":
            return bind_anf(then_branch, name, body)
        case "else":
            return bind_anf(else_branch, name, body)
    return Let(name, If0(rhs.test, then_branch, else_branch), body)
