"""Constant folding and static branch collapsing.

Driven by a direct analysis (Figure 4): a binding whose abstract value
is a single integer constant is rewritten to bind the literal, and a
conditional whose test is statically decided collapses to the taken
branch.  Folding is restricted to right-hand sides that provably
terminate (values, operator applications, applications of the
``add1``/``sub1`` primitives): folding a diverging computation into a
literal would change the program's behaviour.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import A_DEC, A_INC, abstract_value
from repro.analysis.direct import analyze_direct
from repro.analysis.result import AnalysisResult
from repro.anf.splice import bind_anf
from repro.domains.absval import AbsVal
from repro.domains.protocol import NumDomain
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Num,
    PrimApp,
    Term,
    is_value,
)


def constant_fold(
    term: Term,
    result: AnalysisResult | None = None,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
) -> Term:
    """Fold constants and collapse decided branches in ``term``.

    Args:
        term: a program of the restricted subset (unique binders).
        result: a direct analysis result for ``term``; computed on the
            fly when omitted.
        domain, initial: forwarded to the analysis when it is computed
            here.

    Returns:
        The rewritten program (still in the restricted subset; binders
        unchanged, so the analysis facts remain valid for it).
    """
    if result is None:
        result = analyze_direct(term, domain, initial=initial)
    return _fold(term, result)


def _terminating_rhs(rhs: Term, result: AnalysisResult) -> bool:
    """Right-hand sides that cannot diverge or get stuck-free-fold."""
    if is_value(rhs):
        return False  # already minimal; nothing to gain
    if isinstance(rhs, PrimApp):
        return True
    if isinstance(rhs, App):
        # only primitive procedures terminate unconditionally
        fun = abstract_value(
            result.lattice, rhs.fun, result.answer.store
        )
        return bool(fun.clos) and fun.clos <= {A_INC, A_DEC}
    return False


def _fold(term: Term, result: AnalysisResult) -> Term:
    match term:
        case Let(name, rhs, body):
            folded_body = _fold(body, result)
            constant = result.constant_of(name)
            if constant is not None and _terminating_rhs(rhs, result):
                return Let(name, Num(constant), folded_body)
            if isinstance(rhs, If0):
                return _fold_branch(name, rhs, folded_body, result)
            return Let(name, _fold_value(rhs, result), folded_body)
        case Lam(param, body):
            return Lam(param, _fold(body, result))
        case _:
            return term


def _fold_value(rhs: Term, result: AnalysisResult) -> Term:
    """Fold inside lambda right-hand sides; leave the rest alone."""
    if isinstance(rhs, Lam):
        return Lam(rhs.param, _fold(rhs.body, result))
    return rhs


def _fold_branch(
    name: str, rhs: If0, body: Term, result: AnalysisResult
) -> Term:
    """Collapse a statically decided conditional to the taken branch,
    splicing it into the binding of the conditional's result."""
    domain = result.lattice.domain
    test = abstract_value(result.lattice, rhs.test, result.answer.store)
    zero = domain.may_be_zero(test.num)
    nonzero = domain.may_be_nonzero(test.num) or bool(test.clos)
    then_branch = _fold(rhs.then, result)
    else_branch = _fold(rhs.orelse, result)
    if zero and not nonzero:
        return bind_anf(then_branch, name, body)
    if nonzero and not zero:
        return bind_anf(else_branch, name, body)
    return Let(name, If0(rhs.test, then_branch, else_branch), body)
