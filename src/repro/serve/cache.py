"""The cross-request LRU result cache.

Keys are the canonical request digests of :func:`repro.serve.jobs.
cache_key`; values are fully serialized response bodies, so a cache
hit returns a byte-identical payload without re-running (or even
re-touching) the analyzers.  Caching the serialized form follows the
same canonical-representative idea as `repro.perf` interning: one
stored object stands in for every structurally equal request.

Thread-safe: the server's handler threads probe it concurrently.
Hits emit a ``cache.hit`` trace event (component ``serve.cache``) and
bump the ``serve.cache.hits`` counter; misses and evictions have
counters too, so ``/metricsz`` exposes the hit rate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.events import CacheHit
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink


class ResultCache:
    """A bounded least-recently-used map from request digests to
    serialized response bodies."""

    def __init__(
        self,
        capacity: int = 256,
        metrics: Metrics | None = None,
        trace: Sink = NULL_SINK,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.metrics = metrics
        self.trace = trace
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> str | None:
        """The cached response body for ``key``, or None."""
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                self.misses += 1
                self._count("serve.cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("serve.cache.hits")
        if self.trace.enabled:
            self.trace.emit(CacheHit(component="serve.cache", key=key))
        return body

    def put(self, key: str, body: str) -> None:
        """Store a response body (no-op for a zero-capacity cache)."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("serve.cache.evictions")
            if self.metrics is not None:
                self.metrics.gauge("serve.cache.size").set(
                    len(self._entries)
                )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    @property
    def hit_rate(self) -> float:
        """Hits over probes (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def snapshot(self) -> dict:
        """The JSON view ``/metricsz`` embeds."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PersistentResponseTier:
    """Serialized response bodies persisted under the `repro.incr`
    store, below the in-memory `ResultCache`.

    A second server process (or the same one after a restart) pointed
    at the same store file serves these as fast-path hits without
    touching the analyzers.  Keys are the canonical request digests,
    config-scoped by the repro version (a release may change response
    bodies, so old rows must miss, not collide).  `lru_key` folds the
    store's generation counter into the in-memory cache key: a gc (or
    any schema reset) bumps the generation and orphans every LRU entry
    that was filled from — or alongside — the evicted rows.

    Compiled plans persist through the same store file under
    ``kind=plan`` (`repro.incr.plans.PlanPersistTier`): a response
    miss that must re-run an analyzer still skips plan compilation
    when a previous process already persisted the program's plan.
    """

    def __init__(self, store) -> None:
        from repro import __version__

        self.store = store
        self.cfg = f"resp/{__version__}"

    def lru_key(self, key: str) -> str:
        return f"{key}:g{self.store.generation(refresh=True)}"

    def get(self, key: str) -> "str | None":
        from repro.incr.store import KIND_RESPONSE

        return self.store.get(self.cfg, KIND_RESPONSE, key, "-")

    def put(self, key: str, body: str) -> None:
        from repro.incr.store import KIND_RESPONSE

        self.store.put(self.cfg, KIND_RESPONSE, key, "-", body)
