"""End-to-end smoke harness: ``python -m repro.serve.smoke``.

Starts a real server subprocess on an ephemeral port, then exercises
the acceptance path the CI ``serve-smoke`` job pins:

1. ``GET /healthz`` answers ``ok``;
2. one ``POST /v1/analyze`` matches the in-process analyzer
   byte-for-byte, and repeating it is served from the cross-request
   cache (visible in ``/metricsz``);
3. an induced ``overloaded`` burst (debug-sleep jobs saturating a
   1-worker/1-slot queue) is recovered by the client's backoff;
4. SIGTERM drains in-flight work and the process exits 0.

Exits nonzero with a message on the first failed check.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.serve.client import RetryPolicy, ServiceClient
from repro.serve.jobs import execute_request


def _fail(message: str) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    return 1


def start_server(extra_args: list[str] | None = None) -> tuple:
    """Spawn ``python -m repro serve --port 0 ...``; returns
    ``(process, base_url)`` once the listen line appears."""
    env = dict(os.environ)
    # make `python -m repro` resolve to this checkout regardless of
    # the caller's PYTHONPATH
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (
            str(Path(__file__).resolve().parents[2]),
            env.get("PYTHONPATH", ""),
        )
        if part
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--queue-size",
            "1",
            "--debug-hooks",
        ]
        + (extra_args or []),
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stderr.readline()
    if "listening on" not in line:
        process.kill()
        raise RuntimeError(f"server did not start: {line!r}")
    url = line.split("listening on", 1)[1].strip()
    return process, url


def main() -> int:
    process, url = start_server()
    drainer = None
    try:
        client = ServiceClient(
            url, policy=RetryPolicy(retries=8, base_delay=0.05)
        )

        health = client.healthz()
        if health.get("status") != "ok":
            return _fail(f"healthz says {health!r}")

        payload = {"corpus": "theorem-5.1", "analyzer": "direct"}
        served = client.analyze(**payload)
        local = execute_request("analyze", dict(payload))
        if served != local:
            return _fail("served analyze differs from in-process result")

        repeated = client.analyze(**payload)
        if repeated != served:
            return _fail("cached response differs from the first")
        cache = client.metricsz()["cache"]
        if cache["hits"] < 1:
            return _fail(f"expected a cache hit, got {cache!r}")

        # Saturate the 1-worker/1-slot server with sleeping jobs, then
        # watch the client's backoff ride out the `overloaded` burst.
        def occupy():
            ServiceClient(url).run(
                program="(add1 1)", debug_sleep_ms=700
            )

        holders = [
            threading.Thread(target=occupy, daemon=True) for _ in range(2)
        ]
        for holder in holders:
            holder.start()
        time.sleep(0.2)  # let the sleepers reach the worker + queue slot
        recovered = client.analyze(corpus="shivers-p33")
        if not recovered.get("ok"):
            return _fail(f"retry did not recover: {recovered!r}")
        if client.retries_performed < 1:
            return _fail("expected at least one overloaded retry")
        for holder in holders:
            holder.join(timeout=10)

        # SIGTERM while a request is in flight: the drain must finish
        # it and the process must exit 0.
        drainer = threading.Thread(
            target=lambda: ServiceClient(url).run(
                program="(add1 41)", debug_sleep_ms=300
            ),
            daemon=True,
        )
        drainer.start()
        time.sleep(0.1)
        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        if code != 0:
            return _fail(f"server exited {code} after SIGTERM")
        drainer.join(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    print(
        json.dumps(
            {
                "ok": True,
                "cache_hits": cache["hits"],
                "retries": client.retries_performed,
            }
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
