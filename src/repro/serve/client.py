"""A retrying service client (stdlib ``urllib`` only).

Retries are driven by the structured error codes: ``overloaded`` (the
server's backpressure signal), ``timeout``, and transport-level
connection failures are retryable; semantic failures
(``parse_error``, ``fuel_exhausted``, ...) are not — retrying a
program that diverges will not make it converge.

Backoff is exponential with full jitter::

    delay(n) = min(max_delay, base * factor**n) * (0.5 + rng.random()/2)

``rng`` and ``sleep`` are injectable so tests pin the exact schedule.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import trace as obs_trace
from repro.serve.codes import CODES, ServeError


class ServiceError(Exception):
    """A request that conclusively failed (after retries, if any).

    Carries the structured ``code`` from the server's error payload
    (or ``unreachable`` for transport failures), the HTTP status, and
    how many attempts were made.
    """

    def __init__(
        self, code: str, message: str, status: int | None = None,
        attempts: int = 1,
    ) -> None:
        self.code = code
        self.status = status
        self.attempts = attempts
        super().__init__(message)

    @property
    def exit_code(self) -> int:
        """The CLI exit code for this failure (shared vocabulary)."""
        record = CODES.get(self.code)
        return record.exit_code if record is not None else 1


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: ``retries`` extra attempts after the first."""

    retries: int = 5
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    rng: random.Random = field(default_factory=random.Random)
    sleep: Callable[[float], None] = time.sleep

    def delay(self, attempt: int) -> float:
        """The jittered backoff before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * self.factor**attempt)
        return ceiling * (0.5 + self.rng.random() / 2)


#: Codes worth retrying; everything else fails fast.
RETRYABLE_CODES = frozenset(
    code.name for code in CODES.values() if code.retryable
)


class ServiceClient:
    """A client for one service base URL."""

    def __init__(
        self,
        base_url: str,
        policy: RetryPolicy | None = None,
        request_timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.policy = policy or RetryPolicy()
        self.request_timeout = request_timeout
        #: total retries performed over this client's lifetime
        #: (observable by tests and the smoke harness)
        self.retries_performed = 0

    # -- transport -----------------------------------------------------

    def _attempt(self, path: str, payload: dict | None) -> tuple[int, dict]:
        url = f"{self.base_url}{path}"
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"}
        ctx = obs_trace.current()
        if ctx is not None:
            # continue the caller's trace server-side
            headers["traceparent"] = obs_trace.format_traceparent(
                ctx.trace_id, ctx.span_id or obs_trace.new_span_id()
            )
        request = urllib.request.Request(
            url,
            data=data,
            headers=headers,
            method="POST" if payload is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.request_timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = {
                    "ok": False,
                    "error": {"code": "internal", "message": str(exc)},
                }
            return exc.code, body
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            raise ServiceError(
                "unreachable", f"cannot reach {url}: {exc}"
            ) from exc

    def request(self, path: str, payload: dict | None = None) -> dict:
        """One logical request with retries; returns the decoded JSON
        body of the successful response, or raises `ServiceError`."""
        attempts = self.policy.retries + 1
        last: ServiceError | None = None
        for attempt in range(attempts):
            try:
                status, body = self._attempt(path, payload)
            except ServiceError as exc:
                last = exc
            else:
                if status < 400:
                    return body
                error = body.get("error") or {}
                code = error.get("code", "internal")
                last = ServiceError(
                    code,
                    error.get("message", f"HTTP {status}"),
                    status=status,
                    attempts=attempt + 1,
                )
                if code not in RETRYABLE_CODES:
                    raise last
            if attempt + 1 < attempts:
                self.retries_performed += 1
                self.policy.sleep(self.policy.delay(attempt))
        last.attempts = attempts
        raise last

    # -- endpoint helpers ----------------------------------------------

    def analyze(self, **payload) -> dict:
        """``POST /v1/analyze``."""
        return self.request("/v1/analyze", payload)

    def run(self, **payload) -> dict:
        """``POST /v1/run``."""
        return self.request("/v1/run", payload)

    def compare(self, **payload) -> dict:
        """``POST /v1/compare``."""
        return self.request("/v1/compare", payload)

    def lint(self, **payload) -> dict:
        """``POST /v1/lint``."""
        return self.request("/v1/lint", payload)

    def batch(self, requests: list[dict]) -> dict:
        """``POST /v1/batch``: ``requests`` is a list of
        ``{"kind": "analyze"|"run"|"compare"|"lint", "body": {...}}``
        items; results come back in the same order, each with its own
        ``status`` and decoded ``body``."""
        return self.request("/v1/batch", {"requests": requests})

    def corpus(self) -> dict:
        """``GET /v1/corpus``."""
        return self.request("/v1/corpus")

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self.request("/healthz")

    def metricsz(self) -> dict:
        """``GET /metricsz``."""
        return self.request("/metricsz")
