"""`repro loadgen` — the load-generation harness.

Throughput and tail latency are tracked numbers, not anecdotes: a run
writes ``BENCH_serve.json`` (schema `LOADGEN_SCHEMA`,
``repro.serve.loadgen/2``) with req/s, error rates, exact
p50/p95/p99/max latencies, overall and per route, and — so two
payloads are comparable — a ``meta.server`` block recording exactly
what was measured: whether the server was spawned, its worker count,
and any extra ``--server-args`` (e.g. ``--worker-model process``).

Two driving disciplines (stdlib threads + `ServiceClient` only):

- **closed loop** (``mode="closed"``): ``concurrency`` workers each
  fire the next request the moment the previous response lands.  This
  measures the service's saturated throughput; latency includes client
  retries, because that is what a caller experiences.
- **open loop** (``mode="open"``): arrivals are scheduled at a fixed
  ``rate`` (requests/second) regardless of how the service is doing,
  and latency is measured **from the scheduled arrival time** — a
  response that sat behind a backlog is charged for the wait.  That is
  the coordinated-omission-safe discipline: a closed loop slows its
  arrival rate exactly when the server struggles, hiding the worst
  latencies; an open loop does not.

Request mixes:

- ``corpus`` — analyze/run/compare/lint over corpus programs; repeats
  hit the server's result cache, so this measures the cached fast
  path after warm-up;
- ``unique`` — generated programs wrapped in per-request unique
  binders, so every request misses the cache and pays for analysis;
- ``--replay LOG`` — the ``request`` payloads of a JSONL access log
  (`repro.serve.accesslog`), replayed in order.

``spawn=True`` boots a private server subprocess (ephemeral port,
access log with full-trace capture), drains it with SIGTERM when the
run ends, then cross-checks the access log: every record must carry a
trace id consistent with its captured spans.
"""

from __future__ import annotations

import json
import os
import platform
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.accesslog import read_access_log, validate_record
from repro.serve.client import RetryPolicy, ServiceClient, ServiceError

LOADGEN_SCHEMA = "repro.serve.loadgen/2"

#: Percentiles reported in every latency block.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


# -- request mixes ----------------------------------------------------


@dataclass(frozen=True)
class LoadRequest:
    """One request template: a POST route and its body."""

    path: str
    payload: dict


def corpus_mix() -> list[LoadRequest]:
    """The default cache-friendly mix: every POST route, light corpus
    programs, both principal analyzers and both engines."""
    return [
        LoadRequest("/v1/analyze", {
            "corpus": "factorial", "analyzer": "direct",
        }),
        LoadRequest("/v1/analyze", {
            "corpus": "factorial", "analyzer": "semantic-cps",
        }),
        LoadRequest("/v1/analyze", {
            "corpus": "higher-order", "analyzer": "direct",
            "engine": "plan",
        }),
        LoadRequest("/v1/analyze", {
            "corpus": "branchy", "analyzer": "syntactic-cps",
        }),
        LoadRequest("/v1/analyze", {
            "corpus": "even-odd", "analyzer": "polyvariant", "k": 1,
        }),
        LoadRequest("/v1/run", {
            "corpus": "factorial", "interpreter": "direct",
        }),
        LoadRequest("/v1/compare", {"corpus": "constants"}),
        LoadRequest("/v1/lint", {"corpus": "branchy"}),
    ]


def unique_mix(count: int) -> list[LoadRequest]:
    """``count`` analyze requests over generated programs, each with a
    per-request unique binder so no two share a cache key — the
    cache-busting mix that makes every request pay for analysis."""
    analyzers = ("direct", "semantic-cps")
    requests = []
    for index in range(count):
        binder = f"u{index}"
        source = (
            f"(let ({binder} {index % 7}) "
            f"(let (b (* {binder} 3)) "
            f"(let (c (+ b {index % 5})) "
            f"(if0 c {binder} (- c {binder})))))"
        )
        requests.append(
            LoadRequest("/v1/analyze", {
                "program": source,
                "analyzer": analyzers[index % len(analyzers)],
            })
        )
    return requests


def replay_mix(log_path: "str | Path") -> list[LoadRequest]:
    """The replayable request bodies of an access log, in order.
    Records without one (failed validation) are skipped."""
    requests = []
    for record in read_access_log(log_path):
        payload = record.get("request")
        kind = record.get("kind")
        if payload is not None and kind is not None:
            requests.append(LoadRequest(f"/v1/{kind}", payload))
    if not requests:
        raise ValueError(
            f"access log {log_path} has no replayable requests"
        )
    return requests


MIXES = {"corpus": corpus_mix, "unique": lambda: unique_mix(64)}


# -- the generator ----------------------------------------------------


@dataclass
class RequestResult:
    """One completed (or conclusively failed) logical request."""

    path: str
    ok: bool
    code: str | None
    latency_s: float


@dataclass
class RunOutcome:
    results: list[RequestResult] = field(default_factory=list)
    wall_s: float = 0.0
    retries: int = 0


def _make_client(
    base_url: str, request_timeout: float, retries: int
) -> ServiceClient:
    return ServiceClient(
        base_url,
        policy=RetryPolicy(retries=retries),
        request_timeout=request_timeout,
    )


def run_closed_loop(
    base_url: str,
    mix: list[LoadRequest],
    concurrency: int = 4,
    total: int | None = None,
    duration_s: float | None = None,
    request_timeout: float = 30.0,
    retries: int = 2,
) -> RunOutcome:
    """``concurrency`` workers, each firing as soon as its previous
    response lands; stops after ``total`` requests or ``duration_s``
    seconds, whichever comes first (at least one must be set)."""
    if total is None and duration_s is None:
        raise ValueError("closed loop needs a total or a duration")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    outcome = RunOutcome()
    lock = threading.Lock()
    counter = [0]
    started = time.perf_counter()
    deadline = None if duration_s is None else started + duration_s

    def next_index() -> int | None:
        with lock:
            index = counter[0]
            if total is not None and index >= total:
                return None
            counter[0] = index + 1
        if deadline is not None and time.perf_counter() >= deadline:
            return None
        return index

    def worker() -> None:
        client = _make_client(base_url, request_timeout, retries)
        local: list[RequestResult] = []
        while True:
            index = next_index()
            if index is None:
                break
            request = mix[index % len(mix)]
            t0 = time.perf_counter()
            try:
                client.request(request.path, request.payload)
                ok, code = True, None
            except ServiceError as exc:
                ok, code = False, exc.code
            local.append(RequestResult(
                request.path, ok, code, time.perf_counter() - t0
            ))
        with lock:
            outcome.results.extend(local)
            outcome.retries += client.retries_performed

    threads = [
        threading.Thread(target=worker, name=f"loadgen-closed-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    outcome.wall_s = time.perf_counter() - started
    return outcome


def run_open_loop(
    base_url: str,
    mix: list[LoadRequest],
    rate: float,
    duration_s: float,
    concurrency: int = 8,
    request_timeout: float = 30.0,
    retries: int = 2,
) -> RunOutcome:
    """Arrivals every ``1/rate`` seconds for ``duration_s`` seconds.

    Latency is measured from each request's *scheduled arrival*, so a
    response delayed behind a backlog is charged for the time it spent
    waiting — the fix for coordinated omission.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    arrivals = max(1, int(rate * duration_s))
    interval = 1.0 / rate
    work: "queue.Queue[tuple[float, LoadRequest]]" = queue.Queue()
    for index in range(arrivals):
        work.put((index * interval, mix[index % len(mix)]))
    outcome = RunOutcome()
    lock = threading.Lock()
    started = time.perf_counter()

    def worker() -> None:
        client = _make_client(base_url, request_timeout, retries)
        local: list[RequestResult] = []
        while True:
            try:
                offset, request = work.get_nowait()
            except queue.Empty:
                break
            scheduled = started + offset
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                client.request(request.path, request.payload)
                ok, code = True, None
            except ServiceError as exc:
                ok, code = False, exc.code
            local.append(RequestResult(
                request.path, ok, code,
                time.perf_counter() - scheduled,
            ))
        with lock:
            outcome.results.extend(local)
            outcome.retries += client.retries_performed

    threads = [
        threading.Thread(target=worker, name=f"loadgen-open-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    outcome.wall_s = time.perf_counter() - started
    return outcome


# -- summarisation ----------------------------------------------------


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """The nearest-rank quantile of an ascending, non-empty list."""
    if not sorted_values:
        raise ValueError("no values")
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(q * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


def _latency_block(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    block = {
        "min": round(ordered[0], 6),
        "mean": round(sum(ordered) / len(ordered), 6),
        "max": round(ordered[-1], 6),
    }
    for name, q in QUANTILES:
        block[name] = round(exact_quantile(ordered, q), 6)
    return block


def _result_block(results: list[RequestResult], wall_s: float) -> dict:
    ok = [r for r in results if r.ok]
    errors: dict[str, int] = {}
    for result in results:
        if not result.ok:
            code = result.code or "internal"
            errors[code] = errors.get(code, 0) + 1
    block = {
        "requests": len(results),
        "ok": len(ok),
        "errors": len(results) - len(ok),
        "error_rate": round(
            (len(results) - len(ok)) / len(results), 6
        ) if results else 0.0,
        "errors_by_code": errors,
        "throughput_rps": round(len(results) / wall_s, 3)
        if wall_s > 0 else 0.0,
    }
    if results:
        block["latency_s"] = _latency_block(
            [r.latency_s for r in results]
        )
    return block


def build_payload(
    outcome: RunOutcome,
    *,
    mode: str,
    mix_name: str,
    concurrency: int,
    rate: float | None = None,
    generated_at: str | None = None,
    access_log_summary: dict | None = None,
    server: dict | None = None,
) -> dict:
    """The ``BENCH_serve.json`` document for one run.

    ``server`` describes what was measured (spawned or external,
    worker count, extra serve flags); ``{"spawned": False}`` when the
    run targeted a caller-provided URL whose configuration the
    harness cannot see.
    """
    payload = {
        "schema": LOADGEN_SCHEMA,
        "generated_at": generated_at,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "mode": mode,
            "mix": mix_name,
            "concurrency": concurrency,
            "rate_rps": rate,
            "client_retries": outcome.retries,
            "server": server or {"spawned": False},
        },
        "wall_s": round(outcome.wall_s, 6),
        **_result_block(outcome.results, outcome.wall_s),
        "routes": {
            path: _result_block(
                [r for r in outcome.results if r.path == path],
                outcome.wall_s,
            )
            for path in sorted({r.path for r in outcome.results})
        },
    }
    if access_log_summary is not None:
        payload["access_log"] = access_log_summary
    return payload


def validate_loadgen(payload: dict) -> None:
    """Raise ``ValueError`` on a malformed loadgen payload."""
    if payload.get("schema") != LOADGEN_SCHEMA:
        raise ValueError(
            f"schema must be {LOADGEN_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for key in (
        "meta", "wall_s", "requests", "ok", "errors", "error_rate",
        "errors_by_code", "throughput_rps", "routes",
    ):
        if key not in payload:
            raise ValueError(f"loadgen payload missing {key!r}")
    if payload["requests"] != payload["ok"] + payload["errors"]:
        raise ValueError("requests != ok + errors")
    if payload["requests"] > 0:
        latency = payload.get("latency_s")
        if not isinstance(latency, dict):
            raise ValueError("non-empty run must report latency_s")
        for key in ("min", "mean", "max", "p50", "p95", "p99"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"latency_s.{key} must be a number")
        if not (
            latency["min"] <= latency["p50"] <= latency["p95"]
            <= latency["p99"] <= latency["max"]
        ):
            raise ValueError("latency quantiles are not monotone")
        if payload["throughput_rps"] <= 0:
            raise ValueError("non-empty run must have throughput > 0")
    meta = payload["meta"]
    for key in ("python", "platform", "mode", "mix", "concurrency"):
        if key not in meta:
            raise ValueError(f"meta missing {key!r}")
    server = meta.get("server")
    if not isinstance(server, dict) or "spawned" not in server:
        raise ValueError("meta.server must describe the measured server")
    if server["spawned"]:
        for key in ("workers", "args"):
            if key not in server:
                raise ValueError(f"meta.server missing {key!r}")


def validate_loadgen_file(path: "str | Path") -> dict:
    """Load and validate a ``BENCH_serve.json``; returns the payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_loadgen(payload)
    return payload


# -- spawned-server mode ----------------------------------------------

_LISTEN_RE = re.compile(r"listening on (http://\S+)")


def spawn_server(
    access_log_path: "str | Path",
    workers: int = 4,
    boot_timeout_s: float = 30.0,
    server_args: "list[str] | None" = None,
) -> "tuple[subprocess.Popen, str]":
    """Boot ``python -m repro serve`` on an ephemeral port with an
    access log capturing every request's spans; returns
    ``(process, base_url)``.

    ``server_args`` are extra ``repro serve`` flags appended verbatim
    (after the harness's own), e.g. ``["--worker-model", "process"]``
    to measure the sharded multi-process server.
    """
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--workers", str(workers),
            "--access-log", str(access_log_path),
            "--slow-threshold", "0",
            *(server_args or ()),
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + boot_timeout_s
    line = ""
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(
                f"server exited during boot (rc={process.returncode})"
            )
        match = _LISTEN_RE.search(line)
        if match:
            return process, match.group(1)
    process.kill()
    raise RuntimeError("server did not announce its port in time")


def stop_server(
    process: "subprocess.Popen", timeout_s: float = 30.0
) -> int:
    """SIGTERM the spawned server and wait for its graceful drain."""
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
    if process.stderr is not None:
        process.stderr.close()
    return process.returncode


def summarize_access_log(path: "str | Path") -> dict:
    """Validate every record of a spawned run's access log and report
    aggregate counts; raises on trace/span inconsistency."""
    records = 0
    with_spans = 0
    cache = {"hit": 0, "miss": 0, "bypass": 0}
    for record in read_access_log(path):
        validate_record(record)
        records += 1
        if record.get("spans"):
            with_spans += 1
        status = record.get("cache")
        if status in cache:
            cache[status] += 1
    return {
        "records": records,
        "with_spans": with_spans,
        "cache": cache,
    }


# -- the entry point --------------------------------------------------


def run_loadgen(
    url: str | None = None,
    *,
    mode: str = "closed",
    mix: str = "corpus",
    replay: "str | Path | None" = None,
    concurrency: int = 4,
    total: int | None = None,
    duration_s: float | None = None,
    rate: float = 50.0,
    workers: int = 4,
    server_args: "list[str] | None" = None,
    out: "str | Path | None" = "BENCH_serve.json",
    generated_at: str | None = None,
    quick: bool = False,
    request_timeout: float = 30.0,
    retries: int = 2,
    access_log_path: "str | Path | None" = None,
) -> dict:
    """One complete loadgen run; returns (and optionally writes) the
    validated ``BENCH_serve.json`` payload.

    With no ``url``, spawns a private server (and tears it down);
    ``server_args`` are extra ``repro serve`` flags for it, e.g.
    ``["--worker-model", "process"]`` — ignored with a ``url``.
    ``quick`` pins a small closed-loop run for CI smoke.
    """
    if quick:
        mode = "closed"
        total = total or 48
        duration_s = None
        concurrency = min(concurrency, 4)
    elif mode == "closed" and total is None and duration_s is None:
        duration_s = 10.0
    if replay is not None:
        requests = replay_mix(replay)
        mix_name = "replay"
    else:
        try:
            requests = MIXES[mix]()
        except KeyError:
            raise ValueError(
                f"unknown mix {mix!r}; choose from {sorted(MIXES)}"
            ) from None
        mix_name = mix
    process = None
    own_log = None
    server_meta: dict = {"spawned": False}
    try:
        if url is None:
            if access_log_path is None:
                own_log = Path(
                    f"BENCH_serve.access.{os.getpid()}.jsonl"
                )
                access_log_path = own_log
            process, url = spawn_server(
                access_log_path,
                workers=workers,
                server_args=server_args,
            )
            server_meta = {
                "spawned": True,
                "workers": workers,
                "args": list(server_args or ()),
            }
        if mode == "closed":
            outcome = run_closed_loop(
                url, requests,
                concurrency=concurrency,
                total=total,
                duration_s=duration_s,
                request_timeout=request_timeout,
                retries=retries,
            )
        elif mode == "open":
            outcome = run_open_loop(
                url, requests,
                rate=rate,
                duration_s=duration_s or 10.0,
                concurrency=max(concurrency, 8),
                request_timeout=request_timeout,
                retries=retries,
            )
        else:
            raise ValueError(
                f"unknown mode {mode!r}; use 'closed' or 'open'"
            )
    finally:
        access_summary = None
        if process is not None:
            stop_server(process)
            access_summary = summarize_access_log(access_log_path)
        if own_log is not None:
            try:
                own_log.unlink()
            except OSError:
                pass
    payload = build_payload(
        outcome,
        mode=mode,
        mix_name=mix_name,
        concurrency=concurrency,
        rate=rate if mode == "open" else None,
        generated_at=generated_at,
        access_log_summary=access_summary,
        server=server_meta,
    )
    validate_loadgen(payload)
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
    return payload


def summarize(payload: dict) -> str:
    """A one-paragraph human summary of a loadgen payload."""
    latency = payload.get("latency_s", {})
    server = payload["meta"].get("server") or {}
    server_part = (
        "server spawned workers={} {}".format(
            server.get("workers"), " ".join(server.get("args") or ())
        ).rstrip()
        if server.get("spawned")
        else "server external"
    )
    parts = [
        f"{payload['meta']['mode']} loop",
        f"mix={payload['meta']['mix']}",
        server_part,
        f"{payload['requests']} requests in {payload['wall_s']:.2f}s",
        f"{payload['throughput_rps']:.1f} req/s",
        f"errors={payload['errors']}",
    ]
    if latency:
        parts.append(
            "latency p50={p50:.4f}s p95={p95:.4f}s "
            "p99={p99:.4f}s max={max:.4f}s".format(**latency)
        )
    return "; ".join(parts)
