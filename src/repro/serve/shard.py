"""Multi-process analysis shards for the serve layer.

The thread-mode service executes analysis on worker *threads*, so the
GIL caps CPU-bound throughput at roughly one core.  `ShardedExecutor`
promotes execution to N long-lived worker *processes* on the
`repro.perf.pool` warm-fork substrate:

- **Consistent-hash sharding.**  The dispatcher routes each request by
  its canonical cache key (`repro.serve.jobs.prepare_request` — the
  sha256 of the sorted spec): ``int(key[:16], 16) % shards``.  The
  same program × options always lands on the same shard, so that
  shard's response LRU and `PLAN_CACHE` stay hot; uncacheable
  requests (debug hooks) round-robin.
- **Shard-local state.**  Each shard owns its own `ResultCache`,
  `Metrics` registry, and (fork-inherited, then privately growing)
  `PLAN_CACHE`.  Responses are produced by the exact same
  ``prepare → cache → execute → serialize`` pipeline as thread mode,
  so sharded bodies are byte-identical to single-process ones
  (test-enforced).
- **One duplex pipe per shard.**  Handler threads submit under a send
  lock; a per-shard reader thread routes replies back to per-request
  waiters by request id.  Backpressure is per shard: more than
  ``queue_size`` outstanding requests on one shard raises the
  structured ``overloaded`` error.
- **Crash recovery.**  A dying shard (EOF on its pipe) fails its
  in-flight requests with the retryable ``worker_crashed`` code and is
  respawned immediately — the retrying client's next attempt lands on
  a fresh, warmed shard.
- **Graceful drain.**  Stop accepting, wait for in-flight replies,
  send each shard its sentinel, join; stragglers are terminated.

Per-request tracing crosses the process hop the same way it crosses
the thread hop: the dispatcher forwards its ``traceparent``, the shard
begins a trace from it, and the shard's spans (queue wait, cache
lookup, plan compile, execute, serialize) come back in the reply
metadata for the dispatcher's access log and ``server_timing``.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import signal
import threading
import time

from repro.obs import trace as obs_trace
from repro.obs.metrics import Metrics
from repro.incr.plans import attach_plan_store
from repro.incr.store import open_store
from repro.perf.pool import warm_analysis_caches
from repro.serve.cache import PersistentResponseTier, ResultCache
from repro.serve.codes import ServeError, classify_exception
from repro.serve.jobs import (
    Deadline,
    ServiceDefaults,
    execute_prepared,
    prepare_request,
    splice_server_timing,
)


def _dumps(payload: dict) -> str:
    return json.dumps(payload, ensure_ascii=False)


def shard_index(key: str | None, shards: int, fallback: int) -> int:
    """The shard owning cache key ``key`` (consistent hashing on the
    sha256 hex key); uncacheable requests take the ``fallback``
    (round-robin) slot."""
    if key is None:
        return fallback % shards
    return int(key[:16], 16) % shards


# -- the shard (child process) side ------------------------------------


def _shard_request(
    kind: str,
    payload: dict,
    traceparent: str | None,
    enqueued_at: float,
    deadline_at: float | None,
    defaults: ServiceDefaults,
    cache: ResultCache,
    metrics: Metrics,
    incr_store=None,
) -> tuple[int, str, dict]:
    """One request through the shard-local prepare → cache → execute →
    serialize pipeline; returns ``(status, body, meta)``."""
    ctx = obs_trace.begin_trace(traceparent)
    cache_status = "bypass"
    prep = None
    with obs_trace.activate(ctx):
        started = time.perf_counter()
        # CLOCK_MONOTONIC is shared across processes on Linux, so the
        # dispatcher's enqueue stamp prices the pipe+queue wait here.
        wait = max(0.0, time.monotonic() - enqueued_at)
        obs_trace.record_span("queue.wait", wait)
        try:
            prep = prepare_request(kind, payload, defaults)
        except ServeError as error:
            status = error.error_code.http_status
            body = _dumps(error.payload())
        except Exception as exc:  # defensive: validation must not 500
            error = classify_exception(exc)
            status = error.error_code.http_status
            body = _dumps(error.payload())
        else:
            cache_status = "miss" if prep.cacheable else "bypass"
            tier = (
                PersistentResponseTier(incr_store)
                if incr_store is not None
                else None
            )
            lru_key = prep.key
            if prep.cacheable and tier is not None:
                # A gc bumps the store generation; folding it into the
                # LRU key orphans entries filled before the sweep.
                lru_key = tier.lru_key(prep.key)
            cached = None
            if prep.cacheable:
                with obs_trace.span("cache.lookup", kind=prep.kind):
                    cached = cache.get(lru_key)
                    if cached is None and tier is not None:
                        cached = tier.get(prep.key)
                        if cached is not None:
                            cache.put(lru_key, cached)
            if cached is not None:
                status, body, cache_status = 200, cached, "hit"
            else:
                remaining = (
                    None
                    if deadline_at is None
                    else deadline_at - time.monotonic()
                )
                deadline = Deadline(remaining)
                try:
                    deadline.check()
                    response = execute_prepared(
                        prep, deadline=deadline, metrics=metrics,
                        incr_store=incr_store,
                    )
                    with obs_trace.span("serialize"):
                        body = _dumps(response)
                    if prep.cacheable:
                        cache.put(lru_key, body)
                        if tier is not None:
                            tier.put(prep.key, body)
                    status = 200
                except BaseException as exc:
                    error = classify_exception(exc)
                    status = error.error_code.http_status
                    body = _dumps(error.payload())
        total_s = time.perf_counter() - started
        if prep is not None and prep.server_timing and status == 200:
            body = splice_server_timing(body, ctx, cache_status, total_s)
    trace = ctx.trace
    metrics.histogram("serve.request.seconds").observe(total_s)
    meta = {
        "cache": cache_status,
        "queue_wait_s": trace.duration_of("queue.wait"),
        "exec_s": trace.duration_of("execute"),
        "total_s": round(total_s, 6),
        "spans": trace.as_dicts(),
    }
    return status, body, meta


def _shard_main(
    conn,
    index: int,
    defaults: ServiceDefaults,
    cache_size: int,
    incr_store_path: "str | None" = None,
) -> None:
    """The shard process: warm once, then serve requests off the pipe
    until the sentinel (or a dead dispatcher) says stop."""
    # The dispatcher owns signal-driven shutdown; shards stop on the
    # drain sentinel or on pipe EOF.  Ignoring the signals keeps a
    # terminal Ctrl-C (delivered group-wide) from killing shards
    # mid-request while the dispatcher is still draining.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # Opened after the fork: sqlite connections must not cross it.
    # WAL + busy timeout keep concurrent shard writers safe on the
    # one shared file.
    incr_store = open_store(incr_store_path)
    # Attach the persistent plan tier BEFORE warming so a respawned
    # shard loads corpus plans from disk instead of recompiling.
    plan_tier = (
        attach_plan_store(incr_store) if incr_store is not None else None
    )
    warm_analysis_caches()
    metrics = Metrics()
    cache = ResultCache(cache_size, metrics=metrics)
    processed = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        tag = message[0]
        if tag == "stats":
            from repro.machine.absplan import PLAN_CACHE

            reply = (
                "stats",
                message[1],
                {
                    "index": index,
                    "pid": os.getpid(),
                    "processed": processed,
                    "cache": cache.snapshot(),
                    "plan_cache": PLAN_CACHE.snapshot(),
                    "plan_store": (
                        None if plan_tier is None else plan_tier.snapshot()
                    ),
                    "incr_store": (
                        None
                        if incr_store is None
                        else incr_store.summary()
                    ),
                },
            )
        else:
            _, req_id, kind, payload, traceparent, t_enq, t_dead = message
            status, body, meta = _shard_request(
                kind, payload, traceparent, t_enq, t_dead,
                defaults, cache, metrics, incr_store,
            )
            processed += 1
            reply = ("res", req_id, status, body, meta)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    if incr_store is not None:
        incr_store.close()
    conn.close()


# -- the dispatcher (parent process) side ------------------------------


class ShardReply:
    """A per-request completion slot the handler thread waits on."""

    __slots__ = ("done", "status", "body", "meta")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.status: int | None = None
        self.body: str | None = None
        self.meta: dict | None = None

    def finish(self, status: int, body: str, meta: dict | None) -> None:
        self.status = status
        self.body = body
        self.meta = meta
        self.done.set()


class _ShardHandle:
    """Parent-side state for one shard process."""

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending_lock = threading.Lock()
        self.pending: dict[int, ShardReply] = {}
        self.processed = 0
        self.reader: threading.Thread | None = None

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def pop_pending(self, req_id: int) -> ShardReply | None:
        with self.pending_lock:
            return self.pending.pop(req_id, None)

    def take_all_pending(self) -> list[ShardReply]:
        with self.pending_lock:
            waiters = list(self.pending.values())
            self.pending.clear()
        return waiters

    @property
    def depth(self) -> int:
        with self.pending_lock:
            return len(self.pending)


class ShardedExecutor:
    """``shards`` analysis worker processes behind one dispatcher."""

    def __init__(
        self,
        shards: int = 4,
        queue_size: int = 64,
        cache_size: int = 256,
        defaults: ServiceDefaults | None = None,
        metrics: Metrics | None = None,
        start_method: str | None = None,
        incr_store: "str | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if queue_size < 1:
            raise ValueError("queue size must be >= 1")
        self.defaults = defaults or ServiceDefaults()
        self.metrics = metrics
        self.queue_size = queue_size
        self.cache_size = cache_size
        self.incr_store_path = incr_store
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        if start_method == "fork":
            # Warm the dispatcher before forking: every shard inherits
            # the analyzer stack, corpus, and compiled plans
            # copy-on-write instead of re-importing them.  With a
            # store configured, the warm itself loads persisted plans
            # from disk; the tier is detached again before forking
            # (sqlite connections must not cross the fork — each shard
            # attaches its own in `_shard_main`).
            warm_store = open_store(incr_store)
            if warm_store is not None:
                attach_plan_store(warm_store)
            try:
                warm_analysis_caches()
            finally:
                if warm_store is not None:
                    attach_plan_store(None)
                    warm_store.close()
        self._ctx = multiprocessing.get_context(start_method)
        self.shards = shards
        self.respawns = 0
        self._draining = False
        self._lock = threading.Lock()  # guards respawn + req ids
        self._req_ids = itertools.count(1)
        self._round_robin = itertools.count()
        self._handles: list[_ShardHandle] = [
            self._spawn(index) for index in range(shards)
        ]

    # -- lifecycle of one shard ---------------------------------------

    def _spawn(self, index: int) -> _ShardHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_main,
            args=(child_conn, index, self.defaults, self.cache_size,
                  self.incr_store_path),
            name=f"repro-serve-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _ShardHandle(index, process, parent_conn)
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"repro-serve-shard-reader-{index}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    def _read_loop(self, handle: _ShardHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            if tag == "res":
                _, req_id, status, body, meta = message
                handle.processed += 1
                waiter = handle.pop_pending(req_id)
                if waiter is not None:  # None: handler gave up (timeout)
                    waiter.finish(status, body, meta)
            elif tag == "stats":
                waiter = handle.pop_pending(message[1])
                if waiter is not None:
                    waiter.finish(200, "", message[2])
        if not self._draining:
            self._heal(handle)

    def _heal(self, handle: _ShardHandle) -> None:
        """The shard died: fail its in-flight requests with the
        retryable ``worker_crashed`` code and respawn it."""
        error = ServeError(
            "worker_crashed",
            f"analysis worker for shard {handle.index} died mid-request",
        )
        body = _dumps(error.payload())
        for waiter in handle.take_all_pending():
            waiter.finish(
                error.error_code.http_status,
                body,
                {"cache": "bypass", "spans": []},
            )
        with self._lock:
            if self._draining or self._handles[handle.index] is not handle:
                return  # already replaced (or shutting down)
            handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            self._handles[handle.index] = self._spawn(handle.index)
            self.respawns += 1
        if self.metrics is not None:
            self.metrics.counter("serve.shard.respawns").inc()

    # -- submission ----------------------------------------------------

    def shard_for(self, key: str | None) -> int:
        return shard_index(key, self.shards, next(self._round_robin))

    def submit(
        self,
        key: str | None,
        kind: str,
        payload: dict,
        traceparent: str | None,
        deadline_at: float | None,
    ) -> ShardReply:
        """Route one request to its shard; returns the reply slot to
        wait on.  Raises ``overloaded`` when draining or when the
        target shard's outstanding window is full."""
        if self._draining:
            raise ServeError("overloaded", "server is draining")
        handle = self._handles[self.shard_for(key)]
        waiter = ShardReply()
        with self._lock:
            req_id = next(self._req_ids)
        with handle.pending_lock:
            if len(handle.pending) >= self.queue_size:
                if self.metrics is not None:
                    self.metrics.counter(
                        "serve.rejected.overloaded"
                    ).inc()
                raise ServeError(
                    "overloaded",
                    f"shard {handle.index} has {self.queue_size} "
                    "requests outstanding",
                )
            handle.pending[req_id] = waiter
        message = (
            "req", req_id, kind, payload, traceparent,
            time.monotonic(), deadline_at,
        )
        try:
            with handle.send_lock:
                handle.conn.send(message)
        except (BrokenPipeError, OSError):
            # The reader loop notices the same death and heals; this
            # request just fails fast as a crash.
            handle.pop_pending(req_id)
            raise ServeError(
                "worker_crashed",
                f"analysis worker for shard {handle.index} is down",
            ) from None
        return waiter

    # -- introspection -------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return sum(handle.depth for handle in self._handles)

    def describe(self) -> list[dict]:
        """Cheap parent-side shard facts for ``/healthz``."""
        return [
            {
                "index": handle.index,
                "pid": handle.pid,
                "alive": handle.process.is_alive(),
                "pending": handle.depth,
                "processed": handle.processed,
            }
            for handle in self._handles
        ]

    def stats(self, timeout_s: float = 1.0) -> list[dict]:
        """Per-shard cache/plan-cache statistics for ``/metricsz``.

        Each shard answers over its pipe; a shard that is busy with a
        long analysis past ``timeout_s`` reports its parent-side view
        flagged ``"stale": true`` instead of blocking the scrape.
        """
        waiters: list[tuple[_ShardHandle, ShardReply | None]] = []
        for handle in self._handles:
            waiter = ShardReply()
            with self._lock:
                req_id = next(self._req_ids)
            with handle.pending_lock:
                handle.pending[req_id] = waiter
            try:
                with handle.send_lock:
                    handle.conn.send(("stats", req_id))
            except (BrokenPipeError, OSError):
                handle.pop_pending(req_id)
                waiter = None
            waiters.append((handle, waiter))
        results = []
        deadline = time.monotonic() + timeout_s
        for handle, waiter in waiters:
            if waiter is not None and waiter.done.wait(
                max(0.0, deadline - time.monotonic())
            ):
                stats = dict(waiter.meta or {})
            else:
                stats = {"index": handle.index, "pid": handle.pid,
                         "stale": True}
            stats["pending"] = handle.depth
            stats["alive"] = handle.process.is_alive()
            results.append(stats)
        return results

    # -- shutdown ------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, wait for in-flight
        replies, send each shard its sentinel, join.  Returns True
        when every shard exited within ``timeout``."""
        with self._lock:
            # Under the same lock `_heal` holds while replacing a dead
            # shard: after this block no respawn can slip in, and any
            # replacement that already happened is visible in
            # `_handles` below (else the fresh shard would miss its
            # sentinel and outlive the drain).
            if self._draining:
                return True
            self._draining = True
            handles = list(self._handles)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and any(
            handle.depth for handle in handles
        ):
            time.sleep(0.02)
        for handle in handles:
            try:
                with handle.send_lock:
                    handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        clean = True
        for handle in handles:
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if handle.process.is_alive():
                clean = False
                # shards ignore SIGTERM (drain is sentinel-driven), so
                # a straggler needs SIGKILL
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        return clean
