"""Request validation and execution for the service endpoints.

A request is validated and resolved against the server defaults into a
`PreparedRequest` whose ``spec`` is fully canonical: the program is
re-printed from its normalized term (so whitespace/comment variants of
the same program collide), options carry their resolved values, and
the sha256 of the sorted-JSON spec is the cross-request cache key.

Execution then runs the exact in-process API (`repro.analysis`,
`repro.interp`, `repro.api.run_comparison`) — the service's responses
are byte-identical to what a local caller gets, which the differential
tests pin.

Analyzer and interpreter names come from the canonical registry
(`repro.analysis.registry`); the historical short spellings
(``semantic``/``syntactic``) are folded to their canonical names
*before* the spec is hashed, so alias requests share cache entries
with canonically-spelled ones.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.analysis import (
    analyze_direct,
    analyze_polyvariant,
    analyze_pushdown,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.analysis.delta import delta_store
from repro.analysis.registry import (
    ALIASES,
    ANALYZERS,
    INTERPRETERS,
)
from repro.anf import normalize
from repro.api import run_comparison
from repro.corpus.programs import PROGRAMS, CorpusProgram
from repro.cps import cps_transform
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.domains.store import AbsStore
from repro.incr.hash import term_hash
from repro.interp import run_direct, run_semantic_cps, run_syntactic_cps
from repro.interp.values import Env, Store
from repro.lang.ast import Term
from repro.lang.parser import parse
from repro.lang.pretty import pretty_flat
from repro.lang.syntax import free_variables
from repro.lint import LINT_ANALYZERS, run_lints
from repro.machine.absplan import PLAN_TIERS
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink
from repro.serve.codes import ServeError, classify_exception

DOMAINS = {
    "constprop": ConstPropDomain,
    "unit": UnitDomain,
    "parity": ParityDomain,
    "sign": SignDomain,
    "interval": IntervalDomain,
}

LOOP_MODES = ("reject", "top", "unroll")
ENGINES = ("tree", "plan")

_COMMON_FIELDS = {
    "program", "corpus", "domain", "assume", "debug_sleep_ms",
    "server_timing",
}
_FIELDS_BY_KIND = {
    "analyze": _COMMON_FIELDS
    | {
        "analyzer",
        "k",
        "loop_mode",
        "unroll_bound",
        "max_visits",
        "cache",
        "engine",
        "plan_tier",
        "term_hash",
    },
    "run": _COMMON_FIELDS | {"interpreter", "fuel"},
    "compare": _COMMON_FIELDS
    | {
        "loop_mode", "unroll_bound", "max_visits", "cache", "engine",
        "plan_tier",
    },
    "lint": _COMMON_FIELDS
    | {
        "analyzer",
        "loop_mode",
        "unroll_bound",
        "max_visits",
        "fix",
        "syntactic_only",
    },
}


@dataclass(frozen=True)
class ServiceDefaults:
    """Server-side budgets applied when a request leaves them out.

    ``max_visits`` bounds each analyzer run (the CPS analyzers are
    worst-case exponential, Section 6.2); ``fuel`` bounds interpreter
    steps; ``timeout_seconds`` is the per-request wall-clock budget.
    ``debug_hooks`` gates the ``debug_sleep_ms`` request field used by
    the smoke tests to hold a worker busy.
    """

    max_visits: int = 250_000
    fuel: int = 1_000_000
    timeout_seconds: float = 30.0
    debug_hooks: bool = False


class Deadline:
    """A cooperative wall-clock budget.

    Checked between execution stages (the analyzers themselves are
    bounded by ``max_visits``/``fuel``); expiry raises the structured
    ``timeout`` error.
    """

    def __init__(self, seconds: float | None, clock=time.monotonic) -> None:
        self._clock = clock
        self.expires_at = None if seconds is None else clock() + seconds

    def remaining(self) -> float | None:
        """Seconds left, or None for an unbounded deadline."""
        if self.expires_at is None:
            return None
        return self.expires_at - self._clock()

    def check(self) -> None:
        """Raise ``timeout`` if the budget is spent."""
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise ServeError(
                "timeout", "request exceeded its wall-clock budget"
            )


@dataclass(frozen=True)
class PreparedRequest:
    """A validated request, resolved against the server defaults."""

    kind: str
    term: Term
    corpus: CorpusProgram | None
    spec: dict
    debug_sleep_ms: int = 0
    key: str | None = field(default=None)
    #: Transport-level option: when True the response body gains a
    #: per-request ``server_timing`` breakdown and ``trace_id``.  Not
    #: part of ``spec`` (and hence the cache key): the cached body is
    #: the timing-free payload and the breakdown is spliced in per
    #: request, so timing requests share cache entries with plain ones.
    server_timing: bool = False
    #: ``If-None-Match``-style conditional analysis: when the client's
    #: ``term_hash`` matches the canonical program's alpha-invariant
    #: hash, execution short-circuits to ``{"not_modified": true}``.
    #: Such requests never hit or fill the response cache (their body
    #: differs from the full response under the same spec key).
    not_modified: bool = False

    @property
    def cacheable(self) -> bool:
        """Debug-hook requests never hit or fill the cache."""
        return self.key is not None

    def replay_payload(self) -> dict:
        """A request body that reproduces this request exactly.

        Round-trips through `prepare_request` to the same cache key;
        this is what the access log stores and what ``repro loadgen
        --replay`` feeds back at a live server.
        """
        spec = self.spec
        payload: dict = {"domain": spec["domain"]}
        if spec["corpus"] is not None:
            payload["corpus"] = spec["corpus"]
        elif self.kind == "lint" and spec.get("source") is not None:
            # lint findings depend on the program as written, so the
            # raw source (not the canonical term) must replay.
            payload["program"] = spec["source"]
        else:
            payload["program"] = spec["term"]
        if spec["assume"]:
            payload["assume"] = dict(spec["assume"])
        if self.kind in ("analyze", "compare", "lint"):
            payload["loop_mode"] = spec["loop_mode"]
            payload["unroll_bound"] = spec["unroll_bound"]
            payload["max_visits"] = spec["max_visits"]
        if self.kind in ("analyze", "compare"):
            payload["cache"] = spec["cache"]
            payload["engine"] = spec["engine"]
            payload["plan_tier"] = spec["plan_tier"]
        if self.kind == "analyze":
            payload["analyzer"] = spec["analyzer"]
            if spec["analyzer"] == "polyvariant":
                payload["k"] = spec["k"]
        if self.kind == "lint":
            payload["analyzer"] = spec["analyzer"]
            payload["fix"] = spec["fix"]
            payload["syntactic_only"] = spec["syntactic_only"]
        if self.kind == "run":
            payload["interpreter"] = spec["interpreter"]
            payload["fuel"] = spec["fuel"]
        return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServeError("bad_request", message)


def _validate_fields(kind: str, payload: dict) -> None:
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - _FIELDS_BY_KIND[kind]
    _require(
        not unknown,
        f"unknown field(s) for {kind!r}: {sorted(unknown)}",
    )


def _resolve_term(payload: dict) -> tuple[Term, CorpusProgram | None]:
    source = payload.get("program")
    corpus_name = payload.get("corpus")
    _require(
        (source is None) != (corpus_name is None),
        "provide exactly one of 'program' (source text) or 'corpus' (name)",
    )
    if corpus_name is not None:
        _require(isinstance(corpus_name, str), "'corpus' must be a string")
        program = PROGRAMS.get(corpus_name)
        if program is None:
            raise ServeError(
                "not_found",
                f"unknown corpus program {corpus_name!r}; "
                f"see GET /v1/corpus or `python -m repro corpus`",
            )
        return program.term, program
    _require(isinstance(source, str), "'program' must be source text")
    return normalize(parse(source)), None


def _resolve_assume(payload: dict) -> dict[str, int]:
    assume = payload.get("assume") or {}
    _require(
        isinstance(assume, dict)
        and all(
            isinstance(name, str)
            and isinstance(value, int)
            and not isinstance(value, bool)
            for name, value in assume.items()
        ),
        "'assume' must map variable names to integers",
    )
    return dict(assume)


def _resolve_enum(payload: dict, name: str, allowed, default):
    value = payload.get(name, default)
    _require(
        value in allowed,
        f"{name!r} must be one of {sorted(allowed)}, got {value!r}",
    )
    return value


def _resolve_name(payload: dict, name: str, allowed, default):
    """Like `_resolve_enum` but folds registry aliases first, so e.g.
    ``"semantic"`` and ``"semantic-cps"`` canonicalize to one spec (and
    hence one cache key)."""
    value = payload.get(name, default)
    value = ALIASES.get(value, value) if isinstance(value, str) else value
    _require(
        value in allowed,
        f"{name!r} must be one of {sorted(allowed)} "
        f"(aliases: {sorted(ALIASES)}), got {value!r}",
    )
    return value


def _resolve_int(payload: dict, name: str, default, minimum=1, cap=None):
    value = payload.get(name, default)
    if value is None:
        return None
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name!r} must be an integer",
    )
    _require(value >= minimum, f"{name!r} must be >= {minimum}")
    if cap is not None and value > cap:
        value = cap
    return value


def prepare_request(
    kind: str,
    payload: dict,
    defaults: ServiceDefaults | None = None,
) -> PreparedRequest:
    """Validate ``payload`` for endpoint ``kind`` and canonicalize it.

    Raises `ServeError` (``bad_request``/``not_found``/``parse_error``)
    on invalid input.
    """
    defaults = defaults or ServiceDefaults()
    _require(kind in _FIELDS_BY_KIND, f"unknown request kind {kind!r}")
    _validate_fields(kind, payload)
    try:
        term, corpus = _resolve_term(payload)
    except ServeError:
        raise
    except Exception as exc:  # ParseError and friends
        raise classify_exception(exc) from exc
    spec: dict = {
        "kind": kind,
        "term": pretty_flat(term),
        "corpus": corpus.name if corpus is not None else None,
        "domain": _resolve_enum(
            payload, "domain", tuple(DOMAINS), "constprop"
        ),
        "assume": dict(sorted(_resolve_assume(payload).items())),
    }
    if kind in ("analyze", "compare", "lint"):
        spec["loop_mode"] = _resolve_enum(
            payload, "loop_mode", LOOP_MODES,
            "top" if kind == "lint" else "reject",
        )
        spec["unroll_bound"] = _resolve_int(payload, "unroll_bound", 32)
        spec["max_visits"] = _resolve_int(
            payload, "max_visits", defaults.max_visits,
            cap=defaults.max_visits,
        )
    if kind in ("analyze", "compare"):
        cache = payload.get("cache", False)
        _require(isinstance(cache, bool), "'cache' must be a boolean")
        spec["cache"] = cache
        # The engine is semantically invisible (differentially tested)
        # but still part of the cache key, so a differential client can
        # force both implementations to actually run.
        spec["engine"] = _resolve_enum(payload, "engine", ENGINES, "tree")
        # Like the engine: answer-invisible, cache-key-visible.
        spec["plan_tier"] = _resolve_enum(
            payload, "plan_tier", PLAN_TIERS, "opt"
        )
    if kind == "analyze":
        spec["analyzer"] = _resolve_name(
            payload, "analyzer", ANALYZERS, "direct"
        )
        spec["k"] = _resolve_int(payload, "k", 1, minimum=0)
        _require(
            "k" not in payload or spec["analyzer"] == "polyvariant",
            "'k' only applies to the polyvariant analyzer",
        )
    if kind == "lint":
        spec["analyzer"] = _resolve_name(
            payload, "analyzer", LINT_ANALYZERS, "direct"
        )
        for flag in ("fix", "syntactic_only"):
            value = payload.get(flag, False)
            _require(isinstance(value, bool), f"{flag!r} must be a boolean")
            spec[flag] = value
        # Lint findings depend on the program *as written* (spans,
        # structural rules), so the raw source joins the canonical
        # term in the spec and hence in the cache key.
        spec["source"] = payload.get("program")
    if kind == "run":
        spec["interpreter"] = _resolve_name(
            payload, "interpreter", INTERPRETERS, "direct"
        )
        spec["fuel"] = _resolve_int(
            payload, "fuel", defaults.fuel, cap=defaults.fuel
        )
        _require(
            spec["interpreter"] != "syntactic-cps" or not spec["assume"],
            "'assume' is not supported with the syntactic interpreter",
        )
    sleep_ms = _resolve_int(payload, "debug_sleep_ms", 0, minimum=0)
    _require(
        sleep_ms == 0 or defaults.debug_hooks,
        "'debug_sleep_ms' requires a server started with --debug-hooks",
    )
    server_timing = payload.get("server_timing", False)
    _require(
        isinstance(server_timing, bool), "'server_timing' must be a boolean"
    )
    not_modified = False
    if kind == "analyze":
        client_hash = payload.get("term_hash")
        _require(
            client_hash is None or isinstance(client_hash, str),
            "'term_hash' must be a string",
        )
        if client_hash is not None:
            not_modified = client_hash == term_hash(term)
    key = None
    if sleep_ms == 0 and not not_modified:
        digest = hashlib.sha256(
            json.dumps(spec, sort_keys=True).encode("utf-8")
        )
        key = digest.hexdigest()
    return PreparedRequest(
        kind=kind,
        term=term,
        corpus=corpus,
        spec=spec,
        debug_sleep_ms=sleep_ms,
        key=key,
        server_timing=server_timing,
        not_modified=not_modified,
    )


def cache_key(kind: str, payload: dict,
              defaults: ServiceDefaults | None = None) -> str | None:
    """The canonical cache key for a request (None = uncacheable)."""
    return prepare_request(kind, payload, defaults).key


def splice_server_timing(
    body: str, ctx, cache_status: str, total_s: float
) -> str:
    """Embed the per-request stage breakdown into a success body.

    Cached bodies are stored *without* timings (they are per-request,
    the result is not), so the splice happens after the cache — hit
    and miss responses share one entry and the no-timing response
    stays byte-identical to the in-process API.  Shared by the
    thread-mode server and the multi-process shards, so both spell
    ``server_timing`` identically.
    """
    trace = ctx.trace
    timing = {
        "trace_id": ctx.trace_id,
        "cache": cache_status,
        "total_s": round(total_s, 6),
    }
    for field_name, span_name in (
        ("queue_wait_s", "queue.wait"),
        ("plan_compile_s", "plan.compile"),
        ("analyze_s", "execute"),
        ("serialize_s", "serialize"),
    ):
        duration = trace.duration_of(span_name)
        timing[field_name] = (
            None if duration is None else round(duration, 6)
        )
    try:
        payload = json.loads(body)
        payload["server_timing"] = timing
        return json.dumps(payload, ensure_ascii=False)
    except (ValueError, TypeError):  # body must never be lost
        return body


def _analysis_initial(prep: PreparedRequest, lattice: Lattice) -> dict:
    """The initial abstract store: corpus assumptions, overridden by
    request constants, topped up with ⊤ for uncovered free variables
    (the CLI's convention)."""
    initial = (
        dict(prep.corpus.initial_for(lattice))
        if prep.corpus is not None
        else {}
    )
    assume = prep.spec["assume"]
    for name in sorted(free_variables(prep.term)):
        if name in assume:
            initial[name] = lattice.of_const(assume[name])
        elif name not in initial:
            initial[name] = lattice.of_num(lattice.domain.top)
    return initial


def _debug_sleep(prep: PreparedRequest, deadline: Deadline) -> None:
    remaining_ms = prep.debug_sleep_ms
    while remaining_ms > 0:
        deadline.check()
        slice_ms = min(remaining_ms, 20)
        time.sleep(slice_ms / 1000.0)
        remaining_ms -= slice_ms


def _execute_analyze(
    prep: PreparedRequest,
    deadline: Deadline,
    trace: Sink,
    metrics: Metrics | None,
    incr_store=None,
) -> dict:
    spec = prep.spec
    program_hash = term_hash(prep.term)
    if prep.not_modified:
        return {
            "ok": True,
            "kind": "analyze",
            "analyzer": spec["analyzer"],
            "not_modified": True,
            "term_hash": program_hash,
        }
    domain = DOMAINS[spec["domain"]]()
    initial = _analysis_initial(prep, Lattice(domain))
    analyzer = spec["analyzer"]
    common = dict(
        initial=initial,
        max_visits=spec["max_visits"],
        trace=trace,
        metrics=metrics,
        cache=True if spec["cache"] else None,
        engine=spec["engine"],
    )
    deadline.check()
    if (
        incr_store is not None
        and spec["engine"] == "tree"
        and spec["cache"]
    ):
        # Persist (and reuse) sub-term summaries through the store.
        # Results are bit-identical to the plain paths below — the
        # serve differential tests pin it — so the response body does
        # not depend on whether persistence was on.
        from repro.incr.driver import run_analysis

        result, _ = run_analysis(
            analyzer,
            prep.term,
            domain=domain,
            initial=initial,
            store=incr_store,
            k=spec["k"],
            loop_mode=spec["loop_mode"],
            unroll_bound=spec["unroll_bound"],
            max_visits=spec["max_visits"],
            trace=trace,
            metrics=metrics,
            cache=True,
        )
        if analyzer == "polyvariant":
            result = result.collapse()
        return {
            "ok": True,
            "kind": "analyze",
            "analyzer": analyzer,
            "program": spec["term"],
            "term_hash": program_hash,
            "result": result.to_dict(),
        }
    tier = spec["plan_tier"]
    if analyzer == "direct":
        result = analyze_direct(prep.term, domain, plan_tier=tier, **common)
    elif analyzer == "semantic-cps":
        result = analyze_semantic_cps(
            prep.term,
            domain,
            loop_mode=spec["loop_mode"],
            unroll_bound=spec["unroll_bound"],
            plan_tier=tier,
            **common,
        )
    elif analyzer == "syntactic-cps":
        lattice = Lattice(domain)
        cps_initial = dict(
            delta_store(AbsStore(lattice, initial)).items()
        )
        common["initial"] = cps_initial
        result = analyze_syntactic_cps(
            cps_transform(prep.term),
            domain,
            loop_mode=spec["loop_mode"],
            unroll_bound=spec["unroll_bound"],
            plan_tier=tier,
            **common,
        )
    elif analyzer == "pushdown":
        # Tree-only; ``engine="plan"`` raises `EngineUnsupported`,
        # which classifies to the ``engine_unsupported`` serve code
        # (and has no plan tier to select).
        result = analyze_pushdown(prep.term, domain, **common)
    else:
        result = analyze_polyvariant(
            prep.term, domain, k=spec["k"], plan_tier=tier, **common
        ).collapse()
    return {
        "ok": True,
        "kind": "analyze",
        "analyzer": analyzer,
        "program": spec["term"],
        "term_hash": program_hash,
        "result": result.to_dict(),
    }


def _execute_lint(
    prep: PreparedRequest,
    deadline: Deadline,
    trace: Sink,
    metrics: Metrics | None,
) -> dict:
    spec = prep.spec
    domain = DOMAINS[spec["domain"]]()
    lattice = Lattice(domain)
    # Unlike the analyze endpoint, uncovered free variables are NOT
    # topped up with ⊤ — S102 exists to report exactly those.
    initial = (
        dict(prep.corpus.initial_for(lattice))
        if prep.corpus is not None
        else {}
    )
    for name, value in spec["assume"].items():
        initial[name] = lattice.of_const(value)
    deadline.check()
    program = prep.corpus if prep.corpus is not None else spec["source"]
    report = run_lints(
        program,
        analyzer=spec["analyzer"],
        domain=domain,
        initial=initial,
        loop_mode=spec["loop_mode"],
        unroll_bound=spec["unroll_bound"],
        max_visits=spec["max_visits"],
        semantic=not spec["syntactic_only"],
        fix=spec["fix"],
        trace=trace,
        metrics=metrics,
    )
    return {
        "ok": True,
        "kind": "lint",
        "analyzer": spec["analyzer"],
        "program": spec["term"],
        "report": report.as_dict(),
    }


def _execute_run(
    prep: PreparedRequest, deadline: Deadline, trace: Sink
) -> dict:
    spec = prep.spec
    env, store = Env(), Store()
    for name, value in sorted(spec["assume"].items()):
        loc = store.new(name)
        store.bind(loc, value)
        env = env.bind(name, loc)
    missing = free_variables(prep.term) - set(spec["assume"])
    _require(
        not missing,
        f"unbound free variables: {sorted(missing)} (use 'assume')",
    )
    deadline.check()
    interpreter = spec["interpreter"]
    if interpreter == "direct":
        answer = run_direct(
            prep.term, env=env, store=store, fuel=spec["fuel"], trace=trace
        )
    elif interpreter == "semantic-cps":
        answer = run_semantic_cps(
            prep.term, env=env, store=store, fuel=spec["fuel"], trace=trace
        )
    else:
        answer = run_syntactic_cps(
            cps_transform(prep.term), fuel=spec["fuel"], trace=trace
        )
    value = answer.value
    if not isinstance(value, int) or isinstance(value, bool):
        value = repr(value)
    return {
        "ok": True,
        "kind": "run",
        "interpreter": interpreter,
        "program": spec["term"],
        "value": value,
    }


def _execute_compare(
    prep: PreparedRequest,
    deadline: Deadline,
    trace: Sink,
    metrics: Metrics | None,
) -> dict:
    spec = prep.spec
    domain = DOMAINS[spec["domain"]]()
    initial = _analysis_initial(prep, Lattice(domain))
    deadline.check()
    report = run_comparison(
        prep.term,
        domain=domain,
        initial=initial,
        loop_mode=spec["loop_mode"],
        unroll_bound=spec["unroll_bound"],
        max_visits=spec["max_visits"],
        trace=trace,
        metrics=metrics,
        cache=True if spec["cache"] else None,
        engine=spec["engine"],
        plan_tier=spec["plan_tier"],
    )
    deadline.check()
    body = {
        "ok": True,
        "kind": "compare",
        "program": spec["term"],
        "direct": report.direct.to_dict(),
        "semantic_cps": report.semantic.to_dict(),
        "syntactic_cps": report.syntactic.to_dict(),
        "verdicts": {
            "direct_vs_syntactic": report.direct_vs_syntactic.value,
            "semantic_vs_direct": report.semantic_vs_direct.value,
            "semantic_vs_syntactic": report.semantic_vs_syntactic.value,
        },
    }
    # The pushdown analyzer has no plan engine, so plan-engine
    # comparisons stay three-way (their responses are unchanged and
    # remain engine-differential with the tree engine's classic
    # columns); tree comparisons gain the pushdown column.
    if report.pushdown is not None:
        body["pushdown"] = report.pushdown.to_dict()
        body["verdicts"]["pushdown_vs_direct"] = (
            report.pushdown_vs_direct.value
        )
    return body


def execute_prepared(
    prep: PreparedRequest,
    deadline: Deadline | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    incr_store=None,
) -> dict:
    """Run a prepared request and return the JSON-ready response body.

    Failures surface as `ServeError` with their structured code.
    """
    from repro.obs import trace as obs_trace

    deadline = deadline or Deadline(None)
    # A no-op outside an active request trace; under one, this is the
    # `analyze` stage of the server_timing breakdown, with the
    # plan-compile span (if the plan engine compiles) nested below.
    attrs = {
        name: prep.spec[name]
        for name in ("analyzer", "engine")
        if prep.spec.get(name) is not None
    }
    with obs_trace.span("execute", kind=prep.kind, **attrs):
        try:
            if prep.debug_sleep_ms:
                _debug_sleep(prep, deadline)
            if prep.kind == "analyze":
                return _execute_analyze(
                    prep, deadline, trace, metrics, incr_store
                )
            if prep.kind == "lint":
                return _execute_lint(prep, deadline, trace, metrics)
            if prep.kind == "run":
                return _execute_run(prep, deadline, trace)
            return _execute_compare(prep, deadline, trace, metrics)
        except ServeError:
            raise
        except Exception as exc:
            raise classify_exception(exc) from exc


def execute_request(
    kind: str,
    payload: dict,
    defaults: ServiceDefaults | None = None,
    deadline: Deadline | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    incr_store=None,
) -> dict:
    """Validate and run one request end to end (the in-process
    equivalent of POSTing to ``/v1/<kind>``)."""
    prep = prepare_request(kind, payload, defaults)
    return execute_prepared(
        prep, deadline=deadline, trace=trace, metrics=metrics,
        incr_store=incr_store,
    )
