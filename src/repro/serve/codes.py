"""The structured error vocabulary of the service *and* the CLI.

One table maps every failure mode to a stable string code, an HTTP
status for the service's JSON error payloads, and a nonzero process
exit code for the CLI — so ``python -m repro run`` exiting 4 and a
``{"error": {"code": "diverged"}}`` response body mean the same thing.

The codes (and exit codes) are part of the public interface; tests and
``docs/SERVICE.md`` pin them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import (
    BudgetExceeded,
    EngineUnsupported,
    NonComputableError,
)
from repro.interp.errors import (
    Diverged,
    FuelExhausted,
    StackOverflow,
    StuckError,
)
from repro.lang.errors import LangError


@dataclass(frozen=True)
class ErrorCode:
    """One structured failure mode.

    Attributes:
        name: the stable string code used in JSON payloads.
        http_status: the status the service responds with.
        exit_code: the CLI process exit code.
        retryable: True when a client may retry the identical request
            and plausibly succeed (used by the retrying client).
    """

    name: str
    http_status: int
    exit_code: int
    retryable: bool = False


#: The full vocabulary.  Exit code 1 stays reserved for unclassified
#: failures and 2 for usage/parse errors (argparse convention).
CODES: dict[str, ErrorCode] = {
    code.name: code
    for code in (
        ErrorCode("parse_error", 400, 2),
        ErrorCode("fuel_exhausted", 422, 3),
        ErrorCode("diverged", 422, 4),
        ErrorCode("stuck", 422, 5),
        ErrorCode("budget_exceeded", 422, 6),
        ErrorCode("non_computable", 422, 7),
        ErrorCode("timeout", 504, 8, retryable=True),
        ErrorCode("overloaded", 503, 9, retryable=True),
        ErrorCode("unreachable", 502, 10, retryable=True),
        ErrorCode("bad_request", 400, 11),
        ErrorCode("not_found", 404, 12),
        ErrorCode("internal", 500, 13),
        # `repro lint` found error-severity diagnostics.  Not an HTTP
        # failure mode (the service returns the report with 200); the
        # 422 here is the documented status for hypothetical strict
        # modes and keeps the table total.
        ErrorCode("lint_error", 422, 14),
        # An analysis worker process died mid-request (multi-process
        # serve).  The shard is respawned immediately, so an identical
        # retry lands on a fresh worker — hence retryable.
        ErrorCode("worker_crashed", 503, 15, retryable=True),
        # The requested (analyzer, engine) combination has no
        # implementation — e.g. the pushdown analyzer under
        # ``engine="plan"`` (it is tree-only).  A client mistake, not
        # a server fault, and retrying identically cannot succeed.
        ErrorCode("engine_unsupported", 400, 16),
    )
}


class ServeError(Exception):
    """A failure already classified to a structured code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        super().__init__(message)

    @property
    def error_code(self) -> ErrorCode:
        """The full `ErrorCode` record."""
        return CODES[self.code]

    def payload(self) -> dict:
        """The JSON error body the service sends."""
        return {
            "ok": False,
            "error": {"code": self.code, "message": str(self)},
        }


def classify_exception(exc: BaseException) -> ServeError:
    """Map a repro exception to its structured code.

    `ServeError` passes through; interpreter/analyzer/language errors
    get their dedicated codes; anything else is ``internal``.
    """
    if isinstance(exc, ServeError):
        return exc
    if isinstance(exc, FuelExhausted):
        return ServeError("fuel_exhausted", str(exc))
    if isinstance(exc, Diverged):
        return ServeError("diverged", str(exc))
    if isinstance(exc, (StuckError, StackOverflow)):
        return ServeError("stuck", str(exc))
    if isinstance(exc, BudgetExceeded):
        return ServeError("budget_exceeded", str(exc))
    if isinstance(exc, NonComputableError):
        return ServeError("non_computable", str(exc))
    if isinstance(exc, EngineUnsupported):
        return ServeError("engine_unsupported", str(exc))
    if isinstance(exc, LangError):
        return ServeError("parse_error", str(exc))
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return ServeError("bad_request", str(exc))
    return ServeError("internal", f"{type(exc).__name__}: {exc}")


def exit_code_for(exc: BaseException) -> tuple[int, str]:
    """The CLI exit code and message for an exception.

    Returns ``(exit_code, "code: message")``; the CLI prints the
    message to stderr and returns the code.
    """
    error = classify_exception(exc)
    return error.error_code.exit_code, f"{error.code}: {error}"


def exit_codes_help() -> str:
    """The ``--help`` epilog documenting the exit codes."""
    lines = ["exit codes (shared with the repro.serve JSON error codes):"]
    for code in sorted(CODES.values(), key=lambda c: c.exit_code):
        lines.append(f"  {code.exit_code:>2}  {code.name}")
    return "\n".join(lines)
