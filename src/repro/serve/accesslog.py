"""The JSONL access log: one record per analysis request.

Every ``POST /v1/*`` request that reaches the service's processing
pipeline produces exactly one line (schema `ACCESS_SCHEMA`,
``repro.serve.access/1``)::

    {"schema": "repro.serve.access/1", "ts": "2026-08-08T12:00:00Z",
     "trace_id": "…32hex…", "route": "/v1/analyze", "kind": "analyze",
     "status": 200, "ok": true, "error": null, "cache": "miss",
     "analyzer": "direct", "engine": "tree", "domain": "constprop",
     "corpus": "factorial", "queue_wait_s": 0.0003, "exec_s": 0.0121,
     "total_s": 0.0134, "request": {…replayable payload…},
     "spans": [...]}

- ``trace_id`` ties the record to every span the request produced
  (`repro.obs.trace`); the JSONL trace sink, ``server_timing`` response
  sections, and this log all agree on it.
- ``cache`` is ``"hit"`` (served from the cross-request result cache),
  ``"miss"`` (executed), or ``"bypass"`` (uncacheable request).
- ``request`` is a replayable request body (`PreparedRequest.
  replay_payload`), which is what ``repro loadgen --replay`` feeds
  back; it is null for requests that failed validation.
- ``spans`` (the *full-trace capture*) appears only when ``total_s``
  meets the server's slow-request threshold; a threshold of 0 captures
  every request, None disables capture.
- ``queue_wait_s``/``exec_s`` are null when the stage never ran (e.g.
  a cache hit never touches the worker pool).

The writer is lock-guarded (handler threads log concurrently) and
line-buffered so a crash loses at most the in-flight record.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import IO, Iterable

ACCESS_SCHEMA = "repro.serve.access/1"

#: Keys present in every record (the stable wire contract).
RECORD_FIELDS = (
    "schema", "ts", "trace_id", "route", "kind", "status", "ok",
    "error", "cache", "analyzer", "engine", "domain", "corpus",
    "queue_wait_s", "exec_s", "total_s", "request",
)


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class AccessLog:
    """A thread-safe JSONL writer of access records.

    ``slow_threshold_s`` gates the full-trace capture: requests whose
    ``total_s`` is at or above it carry their complete span list (0.0
    captures everything; None never captures).
    """

    def __init__(
        self,
        target: "str | Path | IO[str]",
        slow_threshold_s: float | None = 1.0,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = open(
                target, "w", encoding="utf-8", buffering=1
            )
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.slow_threshold_s = slow_threshold_s
        self.records_written = 0
        self._lock = threading.Lock()

    def record(
        self,
        *,
        trace_id: str | None,
        route: str,
        kind: str | None,
        status: int,
        error: str | None,
        cache: str,
        total_s: float,
        analyzer: str | None = None,
        engine: str | None = None,
        domain: str | None = None,
        corpus: str | None = None,
        queue_wait_s: float | None = None,
        exec_s: float | None = None,
        request: dict | None = None,
        spans: list[dict] | None = None,
    ) -> dict:
        """Write one record; returns the dict that was written."""
        entry: dict = {
            "schema": ACCESS_SCHEMA,
            "ts": _utc_now(),
            "trace_id": trace_id,
            "route": route,
            "kind": kind,
            "status": status,
            "ok": status < 400,
            "error": error,
            "cache": cache,
            "analyzer": analyzer,
            "engine": engine,
            "domain": domain,
            "corpus": corpus,
            "queue_wait_s": queue_wait_s,
            "exec_s": exec_s,
            "total_s": total_s,
            "request": request,
        }
        slow = (
            self.slow_threshold_s is not None
            and total_s >= self.slow_threshold_s
        )
        if slow and spans is not None:
            entry["spans"] = spans
        line = json.dumps(entry, ensure_ascii=False)
        with self._lock:
            self._handle.write(line)
            self._handle.write("\n")
            self.records_written += 1
        return entry

    def close(self) -> None:
        with self._lock:
            if self._owns_handle:
                self._handle.close()
            else:
                self._handle.flush()


def read_access_log(path: "str | Path") -> Iterable[dict]:
    """Parse an access log back into record dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` on a malformed access record."""
    if record.get("schema") != ACCESS_SCHEMA:
        raise ValueError(
            f"access record schema must be {ACCESS_SCHEMA!r}, "
            f"got {record.get('schema')!r}"
        )
    missing = [field for field in RECORD_FIELDS if field not in record]
    if missing:
        raise ValueError(f"access record missing fields: {missing}")
    spans = record.get("spans")
    if spans is not None:
        for span in spans:
            if span.get("trace_id") != record["trace_id"]:
                raise ValueError(
                    "captured span trace_id "
                    f"{span.get('trace_id')!r} does not match record "
                    f"trace_id {record['trace_id']!r}"
                )
