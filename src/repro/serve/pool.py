"""The bounded request queue and worker pool.

Handler threads `submit` jobs; a fixed set of worker threads executes
them.  A full queue rejects immediately with the structured
``overloaded`` code — that is the server's backpressure signal, and the
retrying client's cue to back off.  `drain` implements graceful
shutdown: stop accepting, finish everything already queued or running,
then join the workers.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from typing import Callable

from repro.obs import trace as obs_trace
from repro.obs.metrics import Metrics
from repro.serve.codes import ServeError, classify_exception
from repro.serve.jobs import Deadline


class Job:
    """One queued request: a thunk plus its completion state.

    ``trace_ctx`` is the submitting thread's `repro.obs.trace` context;
    the worker activates it before running ``fn``, so every span the
    job produces lands in the request's trace despite the thread hop.
    """

    def __init__(
        self,
        fn: Callable[["Job"], tuple[int, str]],
        deadline: Deadline,
        trace_ctx: "obs_trace.TraceContext | None" = None,
    ) -> None:
        self.fn = fn
        self.deadline = deadline
        self.trace_ctx = trace_ctx
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.status: int | None = None
        self.body: str | None = None
        self._abandoned = threading.Event()

    def abandon(self) -> None:
        """Mark the job as no longer awaited (its handler timed out);
        a worker that has not started it yet will skip it."""
        self._abandoned.set()

    @property
    def abandoned(self) -> bool:
        return self._abandoned.is_set()

    def finish(self, status: int, body: str) -> None:
        self.status = status
        self.body = body
        self.done.set()


class WorkerPool:
    """``workers`` threads draining a queue of at most ``queue_size``
    pending jobs (in-flight jobs don't count against the bound)."""

    def __init__(
        self,
        workers: int = 4,
        queue_size: int = 64,
        metrics: Metrics | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_size < 1:
            raise ValueError("queue size must be >= 1")
        self.metrics = metrics
        self.workers = workers
        self._queue: "queue.Queue[Job]" = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue ``job``; raises ``overloaded`` when draining or
        when the queue is full."""
        if self._closed.is_set():
            raise ServeError("overloaded", "server is draining")
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._count("serve.rejected.overloaded")
            raise ServeError(
                "overloaded",
                f"request queue is full ({self._queue.maxsize} pending)",
            ) from None
        self._gauge_depth()
        return job

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker (excludes in-flight)."""
        return self._queue.qsize()

    @property
    def inflight(self) -> int:
        """Jobs currently being executed by a worker."""
        with self._inflight_lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        return self._closed.is_set()

    # -- worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            self._gauge_depth()
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        if job.abandoned:
            self._count("serve.jobs.abandoned")
            return
        wait = time.monotonic() - job.enqueued_at
        if self.metrics is not None:
            self.metrics.histogram("serve.queue.wait.seconds").observe(
                wait
            )
        with self._inflight_lock:
            self._inflight += 1
        started = time.monotonic()
        try:
            if job.trace_ctx is not None:
                with obs_trace.activate(job.trace_ctx):
                    obs_trace.record_span("queue.wait", wait)
                    status, body = job.fn(job)
            else:
                status, body = job.fn(job)
        except BaseException as exc:  # the pool must never lose a job
            error = classify_exception(exc)
            status = error.error_code.http_status
            body = json.dumps(error.payload(), ensure_ascii=False)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
        if self.metrics is not None:
            self.metrics.histogram("serve.request.seconds").observe(
                time.monotonic() - started
            )
        self._count("serve.jobs.executed")
        job.finish(status, body)

    # -- shutdown ------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish the backlog,
        join the workers.  Returns True when everything finished
        within ``timeout``."""
        self._closed.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        return all(not thread.is_alive() for thread in self._threads)

    # -- instrumentation ----------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve.queue.depth").set(
                self._queue.qsize()
            )
