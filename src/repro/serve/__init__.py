"""`repro.serve`: the analysis-as-a-service layer.

A stdlib-only HTTP/JSON server that keeps the paper's interpreters and
analyzers warm in one long-lived process:

- :mod:`repro.serve.codes` — the structured error vocabulary shared by
  the service's JSON payloads and the CLI's exit codes;
- :mod:`repro.serve.jobs` — request validation and in-process
  execution (the same code path the server workers run);
- :mod:`repro.serve.cache` — the cross-request LRU result cache;
- :mod:`repro.serve.pool` — the bounded request queue + worker pool;
- :mod:`repro.serve.server` — ``POST /v1/analyze``, ``POST /v1/run``,
  ``POST /v1/compare``, ``GET /healthz``, ``GET /metricsz``;
- :mod:`repro.serve.client` — a retrying client with exponential
  backoff + jitter on ``overloaded`` and connection errors;
- :mod:`repro.serve.accesslog` — the JSONL access log (one record per
  request, trace-id linked, slow requests carry their full spans);
- :mod:`repro.serve.loadgen` — the closed/open-loop load generator
  behind ``repro loadgen`` and ``BENCH_serve.json``;
- :mod:`repro.serve.smoke` — the end-to-end smoke harness CI runs.

See ``docs/SERVICE.md`` for the wire protocol and
``docs/OBSERVABILITY.md`` for tracing, the access log, and loadgen.
"""

from repro.serve.accesslog import AccessLog, read_access_log
from repro.serve.cache import ResultCache
from repro.serve.client import RetryPolicy, ServiceClient, ServiceError
from repro.serve.codes import (
    CODES,
    ErrorCode,
    ServeError,
    classify_exception,
    exit_code_for,
)
from repro.serve.jobs import cache_key, execute_request
from repro.serve.loadgen import run_loadgen, validate_loadgen
from repro.serve.pool import WorkerPool
from repro.serve.server import AnalysisService

__all__ = [
    "AccessLog",
    "AnalysisService",
    "CODES",
    "ErrorCode",
    "ResultCache",
    "RetryPolicy",
    "ServeError",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
    "cache_key",
    "classify_exception",
    "execute_request",
    "exit_code_for",
    "read_access_log",
    "run_loadgen",
    "validate_loadgen",
]
