"""The HTTP/JSON front end.

``ThreadingHTTPServer`` accepts connections; handler threads validate
the request, probe the cross-request result cache, and enqueue a job
on the bounded worker pool, waiting on its completion event.  The
routes:

- ``POST /v1/analyze`` — one analyzer on one program;
- ``POST /v1/run``     — one concrete interpreter;
- ``POST /v1/compare`` — the three-way `repro.api.run_three_way` report;
- ``POST /v1/lint``    — the `repro.lint` diagnostics report;
- ``GET  /v1/corpus``  — valid ``corpus`` program names;
- ``GET  /healthz``    — liveness + queue depth + drain state;
- ``GET  /metricsz``   — the `repro.obs` Metrics snapshot, cache and
  queue statistics.

Graceful drain (SIGTERM/SIGINT via `run_until_signal`, or `drain()`
programmatically): stop accepting new work (``overloaded``), finish
everything queued and in flight, flush the JSONL trace sink, exit 0.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.corpus.programs import corpus_listing
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink
from repro.serve.cache import ResultCache
from repro.serve.codes import ServeError, classify_exception
from repro.serve.jobs import (
    Deadline,
    ServiceDefaults,
    execute_prepared,
    prepare_request,
)
from repro.serve.pool import Job, WorkerPool

_POST_ROUTES = {
    "/v1/analyze": "analyze",
    "/v1/run": "run",
    "/v1/compare": "compare",
    "/v1/lint": "lint",
}

#: Handler-side grace on top of the job deadline, so the worker's own
#: timeout classification wins when the budget expires mid-execution.
_WAIT_GRACE_SECONDS = 2.0


class _LockedSink:
    """Serializes a shared trace sink across worker threads."""

    def __init__(self, sink: Sink) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self.enabled = sink.enabled

    def emit(self, event) -> None:
        with self._lock:
            self._sink.emit(event)

    def close(self) -> None:
        with self._lock:
            self._sink.close()


def _dumps(payload: dict) -> str:
    return json.dumps(payload, ensure_ascii=False)


class _DrainableHTTPServer(ThreadingHTTPServer):
    """`ThreadingHTTPServer` whose ``server_close`` joins handler
    threads, so drain really waits for in-flight responses to be
    written before the process exits."""

    daemon_threads = False
    block_on_close = True


class AnalysisService:
    """One service instance: cache + pool + HTTP server.

    ``port=0`` binds an ephemeral port; read the resolved one from
    ``.port`` after construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8184,
        workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 256,
        defaults: ServiceDefaults | None = None,
        trace: Sink = NULL_SINK,
        metrics: Metrics | None = None,
        verbose: bool = False,
    ) -> None:
        self.defaults = defaults or ServiceDefaults()
        self.metrics = metrics if metrics is not None else Metrics()
        self.trace = _LockedSink(trace)
        self.cache = ResultCache(
            cache_size, metrics=self.metrics, trace=self.trace
        )
        self.pool = WorkerPool(
            workers=workers, queue_size=queue_size, metrics=self.metrics
        )
        self.verbose = verbose
        self.started_at = time.monotonic()
        self._drained = threading.Event()
        service = self

        class Handler(BaseHTTPRequestHandler):
            # one response per connection: no lingering keep-alive
            # threads to wait out during drain
            protocol_version = "HTTP/1.0"
            # bound rfile reads so a silent client cannot block drain
            timeout = 30

            def log_message(self, fmt, *args):  # pragma: no cover
                if service.verbose:
                    sys.stderr.write(
                        "%s - %s\n" % (self.address_string(), fmt % args)
                    )

            def do_GET(self) -> None:
                service._count("serve.requests.total")
                if self.path == "/healthz":
                    self._reply(200, _dumps(service.health()))
                elif self.path == "/metricsz":
                    self._reply(200, _dumps(service.metricsz()))
                elif self.path == "/v1/corpus":
                    self._reply(200, _dumps(corpus_listing()))
                else:
                    error = ServeError(
                        "not_found", f"no such endpoint: GET {self.path}"
                    )
                    service._count("serve.responses.error.not_found")
                    self._reply(
                        error.error_code.http_status,
                        _dumps(error.payload()),
                    )

            def do_POST(self) -> None:
                service._count("serve.requests.total")
                kind = _POST_ROUTES.get(self.path)
                if kind is None:
                    status, body = service._error_response(
                        ServeError(
                            "not_found",
                            f"no such endpoint: POST {self.path}",
                        )
                    )
                else:
                    try:
                        length = int(self.headers.get("Content-Length", 0))
                        payload = json.loads(
                            self.rfile.read(length).decode("utf-8")
                            if length
                            else "{}"
                        )
                    except (ValueError, UnicodeDecodeError) as exc:
                        status, body = service._error_response(
                            ServeError(
                                "bad_request",
                                f"request body is not valid JSON: {exc}",
                            )
                        )
                    else:
                        status, body = service.process(kind, payload)
                self._reply(status, body)

            def _reply(self, status: int, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header(
                    "Content-Type", "application/json; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

        self.httpd = _DrainableHTTPServer((host, port), Handler)
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()

    # -- request processing -------------------------------------------

    def process(self, kind: str, payload: dict) -> tuple[int, str]:
        """Run one POST body through cache → queue → worker; returns
        ``(http_status, response_body)``."""
        try:
            prep = prepare_request(kind, payload, self.defaults)
        except ServeError as error:
            return self._error_response(error)
        except Exception as exc:  # defensive: validation must not 500
            return self._error_response(classify_exception(exc))
        if prep.cacheable:
            cached = self.cache.get(prep.key)
            if cached is not None:
                self._count("serve.responses.ok")
                return 200, cached
        deadline = Deadline(self.defaults.timeout_seconds)

        def run(job: Job) -> tuple[int, str]:
            job.deadline.check()
            response = execute_prepared(
                prep,
                deadline=job.deadline,
                trace=self.trace,
                metrics=self.metrics,
            )
            body = _dumps(response)
            if prep.cacheable:
                self.cache.put(prep.key, body)
            return 200, body

        job = Job(run, deadline)
        try:
            self.pool.submit(job)
        except ServeError as error:
            return self._error_response(error)
        remaining = deadline.remaining()
        finished = job.done.wait(
            timeout=None
            if remaining is None
            else remaining + _WAIT_GRACE_SECONDS
        )
        if not finished:
            job.abandon()
            return self._error_response(
                ServeError(
                    "timeout", "request exceeded its wall-clock budget"
                )
            )
        if job.status == 200:
            self._count("serve.responses.ok")
        else:
            try:
                code = json.loads(job.body)["error"]["code"]
            except Exception:
                code = "internal"
            self._count(f"serve.responses.error.{code}")
        return job.status, job.body

    def _error_response(self, error: ServeError) -> tuple[int, str]:
        self._count(f"serve.responses.error.{error.code}")
        return error.error_code.http_status, _dumps(error.payload())

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` body."""
        return {
            "status": "draining" if self.pool.draining else "ok",
            "queue_depth": self.pool.queue_depth,
            "inflight": self.pool.inflight,
            "workers": self.pool.workers,
            "uptime_seconds": round(
                time.monotonic() - self.started_at, 3
            ),
        }

    def metricsz(self) -> dict:
        """The ``/metricsz`` body."""
        from repro.machine.absplan import PLAN_CACHE

        return {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.snapshot(),
            "plan_cache": PLAN_CACHE.snapshot(),
            "queue": {
                "depth": self.pool.queue_depth,
                "inflight": self.pool.inflight,
                "draining": self.pool.draining,
            },
        }

    def _count(self, name: str) -> None:
        self.metrics.counter(name).inc()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: finish in-flight work, stop the HTTP
        loop, flush the trace sink.  Idempotent."""
        if self._drained.is_set():
            return True
        clean = self.pool.drain(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        self.trace.close()
        self._drained.set()
        return clean

    def run_until_signal(self) -> int:
        """Block until SIGTERM/SIGINT, then drain; the CLI's serve
        loop.  Returns the process exit code (0 on a clean drain)."""
        stop = threading.Event()

        def request_stop(signum, frame):  # pragma: no cover - signal
            stop.set()

        previous = {
            signum: signal.signal(signum, request_stop)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            # Poll so the main thread keeps servicing signal handlers.
            while not stop.wait(0.2):
                pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        clean = self.drain()
        return 0 if clean else 1
