"""The HTTP/JSON front end.

``ThreadingHTTPServer`` accepts connections; handler threads validate
the request, probe the cross-request result cache, and enqueue a job
on the bounded worker pool, waiting on its completion event.  The
routes:

- ``POST /v1/analyze`` — one analyzer on one program;
- ``POST /v1/run``     — one concrete interpreter;
- ``POST /v1/compare`` — the `repro.api.run_comparison` report;
- ``POST /v1/lint``    — the `repro.lint` diagnostics report;
- ``POST /v1/batch``   — many of the above through one dispatch, in
  order, each with its own status;
- ``GET  /v1/corpus``  — valid ``corpus`` program names;
- ``GET  /healthz``    — liveness, version, pid, uptime, queue depth,
  drain state (plus per-shard pids in process mode);
- ``GET  /metricsz``   — the `repro.obs` Metrics snapshot (with
  p50/p90/p99 histogram quantiles), cache and queue statistics; with
  ``?format=prom``, the same registry in Prometheus text exposition.

Two worker models execute the analysis:

- ``worker_model="thread"`` (default): handler threads enqueue jobs on
  the bounded in-process `WorkerPool`;
- ``worker_model="process"``: requests are consistent-hash sharded on
  their cache key across N warm-forked analysis processes
  (`repro.serve.shard.ShardedExecutor`), so CPU-bound analysis scales
  past the GIL and each shard's response LRU + plan cache stays hot.
  Responses are byte-identical to thread mode (test-enforced).

Every POST carries a request-scoped trace (`repro.obs.trace`): the
handler begins a trace from the incoming ``traceparent`` header (or
mints a fresh one), the worker pool carries the context across the
thread hop, and the response echoes the trace via a ``traceparent``
header.  With ``"server_timing": true`` in the request body, the
response embeds a stage breakdown (queue wait, plan compile, analyze,
serialize).  When an access log is configured, each POST writes one
JSONL record tied to the same trace id.

Graceful drain (SIGTERM/SIGINT via `run_until_signal`, or `drain()`
programmatically): stop accepting new work (``overloaded``), finish
everything queued and in flight, flush the JSONL trace sink and the
access log, exit 0.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.corpus.programs import corpus_listing
from repro.incr.plans import attach_plan_store
from repro.incr.store import open_store
from repro.obs import trace as obs_trace
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink
from repro.serve.accesslog import AccessLog
from repro.serve.cache import PersistentResponseTier, ResultCache
from repro.serve.codes import ServeError, classify_exception
from repro.serve.jobs import (
    Deadline,
    ServiceDefaults,
    execute_prepared,
    prepare_request,
    splice_server_timing,
)
from repro.serve.pool import Job, WorkerPool
from repro.serve.shard import ShardedExecutor

_POST_ROUTES = {
    "/v1/analyze": "analyze",
    "/v1/run": "run",
    "/v1/compare": "compare",
    "/v1/lint": "lint",
}

#: Upper bound on ``POST /v1/batch`` fan-out per request.
MAX_BATCH_REQUESTS = 64

#: Handler-side grace on top of the job deadline, so the worker's own
#: timeout classification wins when the budget expires mid-execution.
_WAIT_GRACE_SECONDS = 2.0


class _LockedSink:
    """Serializes a shared trace sink across worker threads."""

    def __init__(self, sink: Sink) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self.enabled = sink.enabled

    def emit(self, event) -> None:
        with self._lock:
            self._sink.emit(event)

    def close(self) -> None:
        with self._lock:
            self._sink.close()


def _dumps(payload: dict) -> str:
    return json.dumps(payload, ensure_ascii=False)


def _error_code_of(body: str | None) -> str:
    """The structured error code inside an error body (``internal``
    when the body is not the expected shape)."""
    try:
        return json.loads(body)["error"]["code"]
    except Exception:
        return "internal"


class _DrainableHTTPServer(ThreadingHTTPServer):
    """`ThreadingHTTPServer` whose ``server_close`` joins handler
    threads, so drain really waits for in-flight responses to be
    written before the process exits."""

    daemon_threads = False
    block_on_close = True


class AnalysisService:
    """One service instance: cache + pool + HTTP server.

    ``port=0`` binds an ephemeral port; read the resolved one from
    ``.port`` after construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8184,
        workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 256,
        defaults: ServiceDefaults | None = None,
        trace: Sink = NULL_SINK,
        metrics: Metrics | None = None,
        verbose: bool = False,
        access_log: "str | Path | AccessLog | None" = None,
        slow_threshold_s: float | None = 1.0,
        worker_model: str = "thread",
        incr_store: "str | None" = None,
    ) -> None:
        if worker_model not in ("thread", "process"):
            raise ValueError(
                "worker_model must be 'thread' or 'process', "
                f"got {worker_model!r}"
            )
        self.defaults = defaults or ServiceDefaults()
        self.metrics = metrics if metrics is not None else Metrics()
        self.trace = _LockedSink(trace)
        if isinstance(access_log, (str, Path)):
            access_log = AccessLog(
                access_log, slow_threshold_s=slow_threshold_s
            )
        self.access_log = access_log
        self.worker_model = worker_model
        # The dispatcher keeps its own connection for introspection
        # (`/healthz`, `/metricsz`) in both modes; thread mode also
        # executes through it.  Shards open their own after forking.
        self.incr_store_path = incr_store
        self.incr_store = open_store(incr_store)
        self._response_tier = (
            PersistentResponseTier(self.incr_store)
            if self.incr_store is not None
            else None
        )
        # Compiled plans persist through the same store: a restarted
        # server loads them from disk instead of recompiling.  Process
        # mode attaches per-shard (each shard opens its own connection
        # after forking); the dispatcher's tier serves thread mode.
        self._plan_tier = (
            attach_plan_store(self.incr_store)
            if self.incr_store is not None and worker_model == "thread"
            else None
        )
        if worker_model == "process":
            # Shard processes must fork before this process grows
            # threads (the HTTP serve loop, handler threads): forking
            # a threaded parent risks inheriting held locks.
            self.sharded: ShardedExecutor | None = ShardedExecutor(
                shards=workers,
                queue_size=queue_size,
                cache_size=cache_size,
                defaults=self.defaults,
                metrics=self.metrics,
                incr_store=incr_store,
            )
            self.cache = None
            self.pool = None
        else:
            self.sharded = None
            self.cache = ResultCache(
                cache_size, metrics=self.metrics, trace=self.trace
            )
            self.pool = WorkerPool(
                workers=workers,
                queue_size=queue_size,
                metrics=self.metrics,
            )
        self.verbose = verbose
        self.started_at = time.monotonic()
        self._drained = threading.Event()
        service = self

        class Handler(BaseHTTPRequestHandler):
            # one response per connection: no lingering keep-alive
            # threads to wait out during drain
            protocol_version = "HTTP/1.0"
            # bound rfile reads so a silent client cannot block drain
            timeout = 30

            def log_message(self, fmt, *args):  # pragma: no cover
                if service.verbose:
                    sys.stderr.write(
                        "%s - %s\n" % (self.address_string(), fmt % args)
                    )

            def do_GET(self) -> None:
                service._count("serve.requests.total")
                parts = urlsplit(self.path)
                if parts.path == "/healthz":
                    self._reply(200, _dumps(service.health()))
                elif parts.path == "/metricsz":
                    query = parse_qs(parts.query)
                    if query.get("format", [""])[-1] == "prom":
                        self._reply(
                            200,
                            service.metrics_prometheus(),
                            content_type=(
                                "text/plain; version=0.0.4; "
                                "charset=utf-8"
                            ),
                        )
                    else:
                        self._reply(200, _dumps(service.metricsz()))
                elif parts.path == "/v1/corpus":
                    self._reply(200, _dumps(corpus_listing()))
                else:
                    error = ServeError(
                        "not_found", f"no such endpoint: GET {self.path}"
                    )
                    service._count("serve.responses.error.not_found")
                    self._reply(
                        error.error_code.http_status,
                        _dumps(error.payload()),
                    )

            def do_POST(self) -> None:
                service._count("serve.requests.total")
                ctx = obs_trace.begin_trace(
                    self.headers.get("traceparent")
                )
                root_span_id = None
                kind = _POST_ROUTES.get(self.path)
                with obs_trace.activate(ctx):
                    if kind is None and self.path != "/v1/batch":
                        status, body = service._error_response(
                            ServeError(
                                "not_found",
                                f"no such endpoint: POST {self.path}",
                            )
                        )
                    else:
                        try:
                            length = int(
                                self.headers.get("Content-Length", 0)
                            )
                            payload = json.loads(
                                self.rfile.read(length).decode("utf-8")
                                if length
                                else "{}"
                            )
                        except (ValueError, UnicodeDecodeError) as exc:
                            status, body = service._error_response(
                                ServeError(
                                    "bad_request",
                                    "request body is not valid JSON: "
                                    f"{exc}",
                                )
                            )
                        else:
                            with obs_trace.span(
                                "request", route=self.path
                            ) as root:
                                root_span_id = root.span_id
                                if kind is None:
                                    status, body = (
                                        service.process_batch(payload)
                                    )
                                else:
                                    status, body = service.process(
                                        kind, payload
                                    )
                self._reply(
                    status,
                    body,
                    extra_headers=(
                        (
                            "traceparent",
                            obs_trace.format_traceparent(
                                ctx.trace_id,
                                root_span_id
                                or obs_trace.new_span_id(),
                            ),
                        ),
                    ),
                )

            def _reply(
                self,
                status: int,
                body: str,
                content_type: str = "application/json; charset=utf-8",
                extra_headers: tuple = (),
            ) -> None:
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                for name, value in extra_headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

        self.httpd = _DrainableHTTPServer((host, port), Handler)
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()

    # -- request processing -------------------------------------------

    def process(self, kind: str, payload: dict) -> tuple[int, str]:
        """Run one POST body through cache → queue → worker (thread
        mode) or through its shard process (process mode); returns
        ``(http_status, response_body)``."""
        ctx = obs_trace.current()
        if ctx is None:
            # In-process callers (tests, smoke) skip the HTTP handler;
            # give them a trace anyway so logs and timings still work.
            ctx = obs_trace.begin_trace()
        with obs_trace.activate(ctx):
            started = time.perf_counter()
            if self.sharded is not None:
                status, body, prep, cache_status, remote = (
                    self._process_sharded(kind, payload, ctx)
                )
            else:
                status, body, prep, cache_status = self._process_traced(
                    kind, payload
                )
                remote = None
            total_s = time.perf_counter() - started
            if (
                remote is None
                and prep is not None
                and prep.server_timing
                and status == 200
            ):
                # Process mode splices shard-side (where the spans
                # live); thread mode splices here.
                body = self._splice_server_timing(
                    body, ctx, cache_status, total_s
                )
            self._log_access(
                kind, status, body, prep, cache_status, total_s, ctx,
                remote=remote,
            )
        return status, body

    def process_batch(self, payload: dict) -> tuple[int, str]:
        """``POST /v1/batch``: many request bodies through one
        dispatch.  Items run concurrently — across the shard processes
        in process mode, across the worker pool in thread mode — and
        come back in input order, each with its own status and body
        (one bad item does not fail its neighbours)."""
        self._count("serve.requests.batch")
        if not isinstance(payload, dict):
            return self._error_response(
                ServeError("bad_request", "batch body must be an object")
            )
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            return self._error_response(
                ServeError(
                    "bad_request",
                    "batch body needs a non-empty 'requests' array",
                )
            )
        if len(items) > MAX_BATCH_REQUESTS:
            return self._error_response(
                ServeError(
                    "bad_request",
                    f"batch is limited to {MAX_BATCH_REQUESTS} "
                    f"requests, got {len(items)}",
                )
            )
        for position, item in enumerate(items):
            if (
                not isinstance(item, dict)
                or item.get("kind") not in _POST_ROUTES.values()
                or not isinstance(item.get("body"), dict)
            ):
                return self._error_response(
                    ServeError(
                        "bad_request",
                        f"batch item {position} must be "
                        "{'kind': analyze|run|compare|lint, "
                        "'body': {...}}",
                    )
                )
        results: list = [None] * len(items)

        def run_item(position: int, item: dict) -> None:
            status, body = self.process(item["kind"], item["body"])
            try:
                decoded = json.loads(body)
            except ValueError:
                decoded = {"ok": False, "raw": body}
            results[position] = {"status": status, "body": decoded}

        threads = [
            threading.Thread(
                target=run_item,
                args=(position, item),
                name=f"repro-serve-batch-{position}",
            )
            for position, item in enumerate(items)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return 200, _dumps({
            "ok": True,
            "kind": "batch",
            "count": len(items),
            "results": results,
        })

    def _process_sharded(
        self, kind: str, payload: dict, ctx
    ) -> "tuple[int, str, object, str, dict | None]":
        """The process-mode pipeline: validate here (errors answered
        without a process hop), route by cache key, wait for the
        shard's reply.  Returns ``(status, body, prep, cache_status,
        shard_meta_or_None)``."""
        try:
            prep = prepare_request(kind, payload, self.defaults)
        except ServeError as error:
            status, body = self._error_response(error)
            return status, body, None, "bypass", None
        except Exception as exc:  # defensive: validation must not 500
            status, body = self._error_response(classify_exception(exc))
            return status, body, None, "bypass", None
        cache_status = "miss" if prep.cacheable else "bypass"
        deadline = Deadline(self.defaults.timeout_seconds)
        traceparent = obs_trace.format_traceparent(
            ctx.trace_id, ctx.span_id or obs_trace.new_span_id()
        )
        try:
            waiter = self.sharded.submit(
                prep.key, kind, payload, traceparent,
                deadline.expires_at,
            )
        except ServeError as error:
            status, body = self._error_response(error)
            return status, body, prep, cache_status, None
        remaining = deadline.remaining()
        finished = waiter.done.wait(
            timeout=None
            if remaining is None
            else remaining + _WAIT_GRACE_SECONDS
        )
        if not finished:
            status, body = self._error_response(
                ServeError(
                    "timeout", "request exceeded its wall-clock budget"
                )
            )
            return status, body, prep, cache_status, None
        meta = waiter.meta or {}
        cache_status = meta.get("cache", cache_status)
        if waiter.status == 200:
            self._count("serve.responses.ok")
        else:
            self._count(
                f"serve.responses.error.{_error_code_of(waiter.body)}"
            )
        if self.metrics is not None and meta.get("total_s") is not None:
            self.metrics.histogram("serve.request.seconds").observe(
                meta["total_s"]
            )
            if meta.get("queue_wait_s") is not None:
                self.metrics.histogram(
                    "serve.queue.wait.seconds"
                ).observe(meta["queue_wait_s"])
        return waiter.status, waiter.body, prep, cache_status, meta

    def _process_traced(
        self, kind: str, payload: dict
    ) -> "tuple[int, str, object, str]":
        """The cache → queue → worker pipeline, returning
        ``(status, body, prepared_request_or_None, cache_status)``."""
        try:
            prep = prepare_request(kind, payload, self.defaults)
        except ServeError as error:
            status, body = self._error_response(error)
            return status, body, None, "bypass"
        except Exception as exc:  # defensive: validation must not 500
            status, body = self._error_response(classify_exception(exc))
            return status, body, None, "bypass"
        cache_status = "miss" if prep.cacheable else "bypass"
        tier = self._response_tier
        lru_key = prep.key
        if prep.cacheable and tier is not None:
            # Folding the store generation into the in-memory key
            # invalidates LRU entries when a gc rewrites the store.
            lru_key = tier.lru_key(prep.key)
        if prep.cacheable:
            with obs_trace.span("cache.lookup", kind=prep.kind):
                cached = self.cache.get(lru_key)
                if cached is None and tier is not None:
                    cached = tier.get(prep.key)
                    if cached is not None:
                        self.cache.put(lru_key, cached)
            if cached is not None:
                self._count("serve.responses.ok")
                return 200, cached, prep, "hit"
        deadline = Deadline(self.defaults.timeout_seconds)

        def run(job: Job) -> tuple[int, str]:
            job.deadline.check()
            response = execute_prepared(
                prep,
                deadline=job.deadline,
                trace=self.trace,
                metrics=self.metrics,
                incr_store=self.incr_store,
            )
            with obs_trace.span("serialize"):
                body = _dumps(response)
            if prep.cacheable:
                self.cache.put(lru_key, body)
                if tier is not None:
                    tier.put(prep.key, body)
            return 200, body

        job = Job(run, deadline, trace_ctx=obs_trace.current())
        try:
            self.pool.submit(job)
        except ServeError as error:
            status, body = self._error_response(error)
            return status, body, prep, cache_status
        remaining = deadline.remaining()
        finished = job.done.wait(
            timeout=None
            if remaining is None
            else remaining + _WAIT_GRACE_SECONDS
        )
        if not finished:
            job.abandon()
            status, body = self._error_response(
                ServeError(
                    "timeout", "request exceeded its wall-clock budget"
                )
            )
            return status, body, prep, cache_status
        if job.status == 200:
            self._count("serve.responses.ok")
        else:
            self._count(
                f"serve.responses.error.{_error_code_of(job.body)}"
            )
        return job.status, job.body, prep, cache_status

    def _splice_server_timing(
        self,
        body: str,
        ctx: "obs_trace.TraceContext",
        cache_status: str,
        total_s: float,
    ) -> str:
        """Thread-mode splice (shared helper in `repro.serve.jobs`;
        the shards run the same function on their side)."""
        return splice_server_timing(body, ctx, cache_status, total_s)

    def _log_access(
        self,
        kind: str,
        status: int,
        body: str,
        prep,
        cache_status: str,
        total_s: float,
        ctx: "obs_trace.TraceContext",
        remote: dict | None = None,
    ) -> None:
        """One access-log record per request.  In process mode the
        spans and stage timings come from the shard's reply metadata
        (``remote``); in thread mode from this process's trace."""
        if self.access_log is None:
            return
        trace = ctx.trace
        spec = prep.spec if prep is not None else {}
        if remote is not None:
            queue_wait_s = remote.get("queue_wait_s")
            exec_s = remote.get("exec_s")
            spans = remote.get("spans") or []
        else:
            queue_wait_s = trace.duration_of("queue.wait")
            exec_s = trace.duration_of("execute")
            spans = trace.as_dicts()
        try:
            self.access_log.record(
                trace_id=ctx.trace_id,
                route=f"/v1/{kind}",
                kind=kind,
                status=status,
                error=None
                if status < 400
                else _error_code_of(body),
                cache=cache_status,
                analyzer=spec.get("analyzer"),
                engine=spec.get("engine"),
                domain=spec.get("domain"),
                corpus=spec.get("corpus"),
                queue_wait_s=queue_wait_s,
                exec_s=exec_s,
                total_s=round(total_s, 6),
                request=prep.replay_payload()
                if prep is not None
                else None,
                spans=spans,
            )
        except Exception:  # logging must never fail a request
            self._count("serve.access_log.errors")

    def _error_response(self, error: ServeError) -> tuple[int, str]:
        self._count(f"serve.responses.error.{error.code}")
        return error.error_code.http_status, _dumps(error.payload())

    # -- introspection -------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` body.  Process mode adds per-shard worker
        pids, queue depths, and liveness."""
        uptime = round(time.monotonic() - self.started_at, 3)
        if self.sharded is not None:
            depth = self.sharded.queue_depth
            body = {
                "status": "draining" if self.sharded.draining else "ok",
                "version": __version__,
                "pid": os.getpid(),
                "worker_model": "process",
                "queue_depth": depth,
                "inflight": depth,
                "workers": self.sharded.shards,
                "shard_respawns": self.sharded.respawns,
                "shards": self.sharded.describe(),
                "uptime_s": uptime,
                "uptime_seconds": uptime,
            }
            body["incr_store"] = (
                self._incr_store_health()
                if self.incr_store is not None
                else None
            )
            body["plan_store"] = (
                self._plan_store_block(self.sharded.stats())
                if self.incr_store is not None
                else None
            )
            return body
        body = {
            "status": "draining" if self.pool.draining else "ok",
            "version": __version__,
            "pid": os.getpid(),
            "worker_model": "thread",
            "queue_depth": self.pool.queue_depth,
            "inflight": self.pool.inflight,
            "workers": self.pool.workers,
            "uptime_s": uptime,
            # pre-v2 spelling, kept for old scrapers
            "uptime_seconds": uptime,
        }
        body["incr_store"] = (
            self._incr_store_health()
            if self.incr_store is not None
            else None
        )
        body["plan_store"] = (
            self._plan_store_block()
            if self.incr_store is not None
            else None
        )
        return body

    def _incr_store_health(self) -> dict:
        """The dispatcher-side view of the shared store file for
        ``/healthz`` (cheap: one connection, no shard round-trips)."""
        summary = self.incr_store.summary()
        return {
            "path": summary["path"],
            "bytes": summary["bytes"],
            "entries": summary["entries"],
            "generation": summary["generation"],
        }

    def _plan_store_block(
        self, shards: "list[dict] | None" = None
    ) -> dict:
        """The ``plan_store`` block: on-disk ``kind=plan`` rows plus
        the runtime load/save counters — the dispatcher's own tier in
        thread mode, summed over the shard replies in process mode."""
        from repro.incr.plans import plan_cfg

        by_kind = self.incr_store.summary()["by_kind"].get("plan") or {}
        block = {
            "cfg": plan_cfg(),
            "entries": by_kind.get("entries", 0),
            "payload_bytes": by_kind.get("payload_bytes", 0),
            "loads": 0,
            "misses": 0,
            "saves": 0,
            "rejects": 0,
        }
        if shards is not None:
            for shard in shards:
                stats = shard.get("plan_store") or {}
                for name in ("loads", "misses", "saves", "rejects"):
                    block[name] += int(stats.get(name, 0))
        elif self._plan_tier is not None:
            snapshot = self._plan_tier.snapshot()
            for name in ("loads", "misses", "saves", "rejects"):
                block[name] = snapshot[name]
        return block

    def _incr_store_block(self, shards: "list[dict] | None" = None) -> dict:
        """The ``/metricsz`` ``incr_store`` block: the shared file's
        summary plus runtime counters — this process's own in thread
        mode, aggregated over the shard replies in process mode."""
        block = self.incr_store.summary()
        if shards is not None:
            # Runtime counters live in the shard processes; the
            # dispatcher's own connection only reads.  Sum them so the
            # top-level block keeps one hit-rate, like ``cache``.
            totals = dict.fromkeys(
                ("hits", "misses", "stale_rejections", "puts", "errors"), 0
            )
            for shard in shards:
                stats = shard.get("incr_store") or {}
                for name in totals:
                    totals[name] += int(stats.get(name, 0))
            block.update(totals)
        return block

    def metricsz(self) -> dict:
        """The ``/metricsz`` JSON body (histograms carry p50/p90/p99).

        Process mode aggregates the shard-local result caches into the
        top-level ``cache`` block (so dashboards keep one hit-rate)
        and reports each shard's cache and plan cache under
        ``shards``."""
        from repro.machine.absplan import PLAN_CACHE

        if self.sharded is not None:
            shards = self.sharded.stats()
            cache = {"hits": 0, "misses": 0, "evictions": 0, "size": 0,
                     "capacity": 0}
            for shard in shards:
                for field, value in (shard.get("cache") or {}).items():
                    if field in cache:
                        cache[field] += value
            body = {
                "metrics": self.metrics.snapshot(quantiles=True),
                "worker_model": "process",
                "cache": cache,
                "plan_cache": PLAN_CACHE.snapshot(),
                "shards": shards,
                "queue": {
                    "depth": self.sharded.queue_depth,
                    "inflight": self.sharded.queue_depth,
                    "draining": self.sharded.draining,
                    "respawns": self.sharded.respawns,
                },
            }
            body["incr_store"] = (
                self._incr_store_block(shards)
                if self.incr_store is not None
                else None
            )
            body["plan_store"] = (
                self._plan_store_block(shards)
                if self.incr_store is not None
                else None
            )
            return body
        body = {
            "metrics": self.metrics.snapshot(quantiles=True),
            "worker_model": "thread",
            "cache": self.cache.snapshot(),
            "plan_cache": PLAN_CACHE.snapshot(),
            "queue": {
                "depth": self.pool.queue_depth,
                "inflight": self.pool.inflight,
                "draining": self.pool.draining,
            },
        }
        body["incr_store"] = (
            self._incr_store_block()
            if self.incr_store is not None
            else None
        )
        body["plan_store"] = (
            self._plan_store_block()
            if self.incr_store is not None
            else None
        )
        return body

    def metrics_prometheus(self) -> str:
        """The ``/metricsz?format=prom`` text body.  Queue state is
        folded into gauges at scrape time so the exposition is
        self-contained."""
        if self.sharded is not None:
            depth = self.sharded.queue_depth
            inflight = depth
        else:
            depth = self.pool.queue_depth
            inflight = self.pool.inflight
        self.metrics.gauge("serve.queue.depth").set(depth)
        self.metrics.gauge("serve.inflight").set(inflight)
        self.metrics.gauge("serve.uptime.seconds").set(
            round(time.monotonic() - self.started_at, 3)
        )
        if self.incr_store is not None:
            block = self._incr_store_block(
                self.sharded.stats() if self.sharded is not None else None
            )
            for name in (
                "bytes", "entries", "generation", "gc_runs",
                "hits", "misses", "stale_rejections", "puts", "errors",
            ):
                self.metrics.gauge(f"serve.incr_store.{name}").set(
                    block.get(name, 0)
                )
            plan_block = self._plan_store_block(
                self.sharded.stats() if self.sharded is not None else None
            )
            for name in (
                "entries", "payload_bytes", "loads", "misses", "saves",
                "rejects",
            ):
                self.metrics.gauge(f"serve.plan_store.{name}").set(
                    plan_block.get(name, 0)
                )
        return self.metrics.to_prometheus()

    def _count(self, name: str) -> None:
        self.metrics.counter(name).inc()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: finish in-flight work, stop the HTTP
        loop, flush the trace sink.  Idempotent."""
        if self._drained.is_set():
            return True
        if self.sharded is not None:
            clean = self.sharded.drain(timeout=timeout)
        else:
            clean = self.pool.drain(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        self.trace.close()
        if self.access_log is not None:
            self.access_log.close()
        if self.incr_store is not None:
            self.incr_store.close()
        self._drained.set()
        return clean

    def run_until_signal(self) -> int:
        """Block until SIGTERM/SIGINT, then drain; the CLI's serve
        loop.  Returns the process exit code (0 on a clean drain)."""
        stop = threading.Event()

        def request_stop(signum, frame):  # pragma: no cover - signal
            stop.set()

        previous = {
            signum: signal.signal(signum, request_stop)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            # Poll so the main thread keeps servicing signal handlers.
            while not stop.wait(0.2):
                pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        clean = self.drain()
        return 0 if clean else 1
