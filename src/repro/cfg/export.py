"""Exports: Graphviz DOT text and (optionally) networkx graphs."""

from __future__ import annotations

from repro.cfg.callgraph import CallGraph
from repro.cfg.flowgraph import FlowGraph

_EDGE_STYLES = {
    "seq": "",
    "branch-then": ' [label="then", style=dashed]',
    "branch-else": ' [label="else", style=dashed]',
    "join": ' [style=dotted]',
    "call": ' [label="call", color=blue]',
    "return": ' [label="ret", color=blue, style=dashed]',
}


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def call_graph_to_dot(graph: CallGraph, title: str = "callgraph") -> str:
    """Render a call graph as Graphviz DOT text."""
    lines = [f"digraph {_quote(title)} {{"]
    for site in graph.sites:
        lines.append(f"  {_quote(site)} [shape=box];")
    for lam in graph.lambdas:
        lines.append(f"  {_quote('λ' + lam)} [shape=ellipse];")
    for edge in sorted(graph.edges, key=lambda e: (e.site, e.callee)):
        callee = edge.callee if edge.callee.startswith("<") else "λ" + edge.callee
        lines.append(f"  {_quote(edge.site)} -> {_quote(callee)};")
    lines.append("}")
    return "\n".join(lines)


def flow_graph_to_dot(graph: FlowGraph, title: str = "flowgraph") -> str:
    """Render a flow graph as Graphviz DOT text."""
    lines = [f"digraph {_quote(title)} {{"]
    for node in graph.nodes:
        shape = "oval" if node.startswith(("enter:", "exit:")) else "box"
        lines.append(f"  {_quote(node)} [shape={shape}];")
    for edge in sorted(graph.edges, key=lambda e: (e.src, e.dst, e.kind)):
        style = _EDGE_STYLES.get(edge.kind, "")
        lines.append(f"  {_quote(edge.src)} -> {_quote(edge.dst)}{style};")
    lines.append("}")
    return "\n".join(lines)


def to_networkx(graph: "CallGraph | FlowGraph"):
    """Convert either graph into a networkx DiGraph (edge attribute
    ``kind`` for flow graphs).  Requires networkx."""
    import networkx as nx

    result = nx.DiGraph()
    if isinstance(graph, CallGraph):
        result.add_nodes_from(graph.sites, role="site")
        result.add_nodes_from(graph.lambdas, role="lambda")
        for edge in graph.edges:
            result.add_edge(edge.site, edge.callee)
        return result
    result.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        result.add_edge(edge.src, edge.dst, kind=edge.kind)
    return result
