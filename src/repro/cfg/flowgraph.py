"""Intraprocedural flow graphs over A-normal form program points.

Every let-bound variable is a program point (the paper's labels).
Each procedure (the top level and every lambda body) contributes a
chain of points between a synthetic ``enter:<label>`` and
``exit:<label>`` node; conditionals fork ``branch-then``/``branch-else``
edges and re-join at the binding of their result.  When a call graph
is supplied, interprocedural ``call``/``return`` edges are overlaid on
the call-site points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.callgraph import CallGraph
from repro.lang.ast import App, If0, Lam, Let, Term
from repro.lang.syntax import subterms

#: Label of the top-level procedure.
MAIN = "main"


@dataclass(frozen=True, slots=True)
class FlowEdge:
    """A directed flow edge with a kind tag.

    Kinds: ``seq``, ``branch-then``, ``branch-else``, ``join``,
    ``call``, ``return``.
    """

    src: str
    dst: str
    kind: str


@dataclass(frozen=True)
class FlowGraph:
    """The flow graph of one program."""

    nodes: tuple[str, ...]
    edges: frozenset[FlowEdge]

    def successors(self, node: str) -> frozenset[str]:
        """Nodes reachable from ``node`` in one step."""
        return frozenset(e.dst for e in self.edges if e.src == node)

    def predecessors(self, node: str) -> frozenset[str]:
        """Nodes from which ``node`` is reachable in one step."""
        return frozenset(e.src for e in self.edges if e.dst == node)

    def edges_of_kind(self, kind: str) -> frozenset[FlowEdge]:
        """All edges with the given kind tag."""
        return frozenset(e for e in self.edges if e.kind == kind)

    def __len__(self) -> int:
        return len(self.edges)


def enter(label: str) -> str:
    """The entry node of a procedure."""
    return f"enter:{label}"


def exit_(label: str) -> str:
    """The exit node of a procedure."""
    return f"exit:{label}"


class _Builder:
    def __init__(self, call_graph: CallGraph | None) -> None:
        self.nodes: list[str] = []
        self.edges: set[FlowEdge] = set()
        self.call_graph = call_graph

    def add_node(self, name: str) -> None:
        if name not in self.nodes:
            self.nodes.append(name)

    def add_edge(self, src: str, dst: str, kind: str) -> None:
        self.edges.add(FlowEdge(src, dst, kind))

    def procedure(self, label: str, body: Term) -> None:
        """Lay out one procedure between its enter/exit nodes."""
        self.add_node(enter(label))
        self.add_node(exit_(label))
        last = self.spine(body, enter(label), "seq")
        self.add_edge(last, exit_(label), "seq")

    def spine(self, term: Term, prev: str, first_kind: str) -> str:
        """Lay out a let-spine; returns its last program point."""
        kind = first_kind
        while isinstance(term, Let):
            point = term.name
            self.add_node(point)
            rhs = term.rhs
            if isinstance(rhs, If0):
                then_last = self.spine(rhs.then, prev, "branch-then")
                else_last = self.spine(rhs.orelse, prev, "branch-else")
                self.add_edge(then_last, point, "join")
                self.add_edge(else_last, point, "join")
            else:
                self.add_edge(prev, point, kind)
                if isinstance(rhs, App) and self.call_graph is not None:
                    for callee in self.call_graph.callees_of(point):
                        if callee.startswith("<"):
                            continue  # primitives have no body
                        self.add_edge(point, enter(callee), "call")
                        self.add_edge(exit_(callee), point, "return")
            prev, kind, term = point, "seq", term.body
        return prev


def build_flow_graph(
    term: Term, call_graph: CallGraph | None = None
) -> FlowGraph:
    """Build the flow graph of a restricted-subset program.

    Args:
        term: the program (A-normal form, unique binders).
        call_graph: when given, interprocedural call/return edges are
            added using its resolution.
    """
    builder = _Builder(call_graph)
    builder.procedure(MAIN, term)
    for sub in subterms(term):
        if isinstance(sub, Lam):
            builder.procedure(sub.param, sub.body)
    return FlowGraph(tuple(builder.nodes), frozenset(builder.edges))
