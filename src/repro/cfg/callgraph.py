"""Call graphs from 0CFA results.

A call site in the restricted subset is a binding ``(let (x (V1 V2)) M)``;
its label is the bound variable ``x`` (the paper's convention: names
replace labels).  The callees are the abstract closures the analysis
recorded for ``V1``: user closures are labelled by their (unique)
parameter, the primitives by their tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.analysis.common import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    AbsClo,
    AbsCpsClo,
    abstract_value,
)
from repro.analysis.result import AnalysisResult
from repro.cps.transform import cps_transform_value
from repro.lang.ast import App, Lam, Let, Term, Var, is_value
from repro.lang.syntax import subterms

#: Callee label for the increment primitive.
INC_LABEL = "<add1>"

#: Callee label for the decrement primitive.
DEC_LABEL = "<sub1>"


@dataclass(frozen=True, slots=True)
class CallEdge:
    """One possible call: a call site may invoke a callee.

    ``site`` is the let-bound variable of the call; ``callee`` is the
    unique parameter of the invoked lambda or a primitive label.
    """

    site: str
    callee: str


@dataclass(frozen=True)
class CallGraph:
    """The call multigraph of one analyzed program."""

    #: All call-site labels, in program order.
    sites: tuple[str, ...]
    #: All lambda labels (their unique parameters), in program order.
    lambdas: tuple[str, ...]
    #: The resolved edges.
    edges: frozenset[CallEdge]

    def callees_of(self, site: str) -> frozenset[str]:
        """Labels of procedures the call site may invoke."""
        return frozenset(e.callee for e in self.edges if e.site == site)

    def callers_of(self, callee: str) -> frozenset[str]:
        """Call sites that may invoke the given procedure."""
        return frozenset(e.site for e in self.edges if e.callee == callee)

    def unreachable_lambdas(self) -> frozenset[str]:
        """Lambdas no resolved call edge targets (dead procedures,
        modulo the program's result value)."""
        called = {e.callee for e in self.edges}
        return frozenset(l for l in self.lambdas if l not in called)

    def is_monomorphic(self, site: str) -> bool:
        """True when the analysis resolved the site to one callee."""
        return len(self.callees_of(site)) == 1

    def __len__(self) -> int:
        return len(self.edges)


def _call_sites(term: Term) -> Iterator[Let]:
    for sub in subterms(term):
        if isinstance(sub, Let) and isinstance(sub.rhs, App):
            yield sub


def _closure_label(clo: object) -> str | None:
    if clo is A_INC or clo is A_INCK:
        return INC_LABEL
    if clo is A_DEC or clo is A_DECK:
        return DEC_LABEL
    if isinstance(clo, (AbsClo, AbsCpsClo)):
        # CPS closures label the same source lambda: binders are
        # unique, so the parameter identifies it
        return clo.param
    return None


def build_call_graph(term: Term, result: AnalysisResult) -> CallGraph:
    """Materialize the call graph of ``term`` from a direct or
    semantic-CPS analysis result.

    Args:
        term: the analyzed program (restricted subset).
        result: the analysis result whose final store resolves the
            function positions.
    """
    store = result.answer.store
    lattice = result.lattice
    sites: list[str] = []
    lambdas: list[str] = []
    edges: set[CallEdge] = set()
    for sub in subterms(term):
        if isinstance(sub, Lam):
            lambdas.append(sub.param)
    for site in _call_sites(term):
        sites.append(site.name)
        fun_value = abstract_value(lattice, site.rhs.fun, store)
        for clo in fun_value.clos:
            label = _closure_label(clo)
            if label is not None:
                edges.add(CallEdge(site.name, label))
    return CallGraph(tuple(sites), tuple(lambdas), frozenset(edges))


def build_call_graph_from_cps(
    term: Term, cps_result: AnalysisResult
) -> CallGraph:
    """Materialize the *source* program's call graph from a
    syntactic-CPS analysis of its CPS image.

    The paper claims all three analyzers compute the control flow
    graph of the source program; this function makes the claim
    checkable.  Every source call site ``(let (x (V1 V2)) M)`` maps to
    the CPS call ``(V[V1] V[V2] (lambda (x) ...))``, so the closures
    the CPS analysis collected for ``V[V1]`` resolve the source site;
    unique binders identify lambdas across the translation.

    Because the CPS analysis may *merge* values at false returns, the
    resulting graph can have strictly more edges than
    :func:`build_call_graph` over the direct analysis — the control
    flow graph itself coarsens, which is Shivers' original complaint
    made concrete (`tests/cfg/test_cps_callgraph.py`).
    """
    store = cps_result.answer.store
    lattice = cps_result.lattice
    sites: list[str] = []
    lambdas: list[str] = []
    edges: set[CallEdge] = set()
    for sub in subterms(term):
        if isinstance(sub, Lam):
            lambdas.append(sub.param)
    for site in _call_sites(term):
        sites.append(site.name)
        fun = site.rhs.fun
        if isinstance(fun, Var):
            fun_value = store.get(fun.name)
            closures = fun_value.clos
        elif is_value(fun):
            # a literal lambda/prim in function position: its CPS image
            # is the (unique) closure it evaluates to
            image = cps_transform_value(fun)
            closures = frozenset({_cps_value_closure(image)}) - {None}
        else:
            closures = frozenset()
        for clo in closures:
            label = _closure_label(clo)
            if label is not None:
                edges.add(CallEdge(site.name, label))
    return CallGraph(tuple(sites), tuple(lambdas), frozenset(edges))


def _cps_value_closure(image) -> object | None:
    from repro.cps.ast import CLam, CPrim

    if isinstance(image, CLam):
        return AbsCpsClo(image.param, image.kparam, image.body)
    if isinstance(image, CPrim):
        return A_INCK if image.name == "add1k" else A_DECK
    return None
