"""Control-flow graphs from analysis results.

"All analyzers compute the control flow graph of the source program"
(paper Section 1/abstract): the closure sets in the final abstract
store determine, for every call site, the procedures that may be
invoked there.  This package materializes that information:

- :mod:`repro.cfg.callgraph` — the call multigraph (call sites →
  abstract callees);
- :mod:`repro.cfg.flowgraph` — the intraprocedural flow graph over
  A-normal form program points, with call/return edges overlaid from
  the call graph;
- :mod:`repro.cfg.export` — DOT and networkx exports.
"""

from repro.cfg.callgraph import (
    CallEdge,
    CallGraph,
    build_call_graph,
    build_call_graph_from_cps,
)
from repro.cfg.export import call_graph_to_dot, flow_graph_to_dot, to_networkx
from repro.cfg.flowgraph import FlowEdge, FlowGraph, build_flow_graph

__all__ = [
    "CallEdge",
    "CallGraph",
    "build_call_graph",
    "build_call_graph_from_cps",
    "FlowEdge",
    "FlowGraph",
    "build_flow_graph",
    "call_graph_to_dot",
    "flow_graph_to_dot",
    "to_networkx",
]
