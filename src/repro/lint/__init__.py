"""repro.lint — a diagnostics engine over the paper's analyzers.

Syntactic passes (``S1xx``) turn the structural validators into
recoverable diagnostics with fix-its; semantic passes (``L0xx``)
consume an `AnalysisResult` from one of the three analyzers, so lint
yield doubles as a user-visible precision metric: the same program
lints differently under the direct, semantic-CPS, and syntactic-CPS
analyzers.  See docs/LINT.md for the rule catalog.
"""

from repro.lint.diagnostic import (
    Diagnostic,
    ERROR,
    FixIt,
    INFO,
    LintReport,
    Span,
    WARNING,
    severity_rank,
)
from repro.lint.engine import (
    LINT_ANALYZERS,
    has_errors,
    run_analysis,
    run_lints,
)
from repro.lint.render import render_diagnostic, render_json, render_text
from repro.lint.semantic import semantic_lints
from repro.lint.spans import binder_spans
from repro.lint.syntactic import iter_let_bindings, syntactic_lints

__all__ = [
    "Diagnostic",
    "ERROR",
    "FixIt",
    "INFO",
    "LINT_ANALYZERS",
    "LintReport",
    "Span",
    "WARNING",
    "binder_spans",
    "has_errors",
    "iter_let_bindings",
    "render_diagnostic",
    "render_json",
    "render_text",
    "run_analysis",
    "run_lints",
    "semantic_lints",
    "severity_rank",
    "syntactic_lints",
]
