"""The `run_lints` driver: one entry point for both pass families.

The engine parses (when given source text), recovers binder spans,
runs the syntactic passes on the program *as written*, canonicalizes
into the restricted subset, runs the chosen analyzer, and feeds its
result to the semantic passes.  Analysis failures (e.g. a
`BudgetExceeded` on the worst-case-exponential syntactic-CPS
analyzer, Section 6.2) are recoverable: the report carries the serve
error-code name in ``analysis_error`` and the syntactic findings
still stand.

``loop_mode`` defaults to ``"top"`` rather than the analyzers'
``"reject"``, so linting a program containing ``(loop)`` degrades to
imprecise-but-sound facts instead of refusing to run — a linter that
rejects its input is not a linter.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import (
    AnalysisError,
    BudgetExceeded,
    EngineUnsupported,
    NonComputableError,
)
from repro.analysis.delta import delta_store
from repro.analysis.direct import analyze_direct
from repro.analysis.pushdown import analyze_pushdown
from repro.analysis.registry import (
    LINT_ANALYZERS,
    canonical_analyzer,
)
from repro.analysis.result import AnalysisResult
from repro.analysis.semantic_cps import analyze_semantic_cps
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.anf import is_anf, normalize
from repro.corpus.programs import CorpusProgram
from repro.cps import cps_transform
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import Term, TERM_CLASSES
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.syntax import has_unique_binders
from repro.lint.diagnostic import Diagnostic, ERROR, LintReport
from repro.lint.semantic import semantic_lints
from repro.lint.spans import binder_spans
from repro.lint.syntactic import syntactic_lints
from repro.obs.events import LintFired
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, RecordingSink, Sink
from repro.opt.constfold import constant_fold
from repro.opt.deadcode import eliminate_dead_code

#: Analyzer names accepted by :func:`run_lints` / the CLI / the
#: service — re-exported from the canonical registry
#: (`repro.analysis.registry.LINT_ANALYZERS`); old spellings are
#: folded through `canonical_analyzer`.

#: Structural rules whose fix is re-normalization.
_STRUCTURAL_CODES = frozenset({"S100", "S101", "S103"})


def run_analysis(
    term: Term,
    analyzer: str,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    loop_mode: str = "top",
    unroll_bound: int = 32,
    max_visits: int | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> AnalysisResult:
    """Run one named analyzer on a canonical term.

    Mirrors the per-analyzer dispatch of `repro.api.run_comparison`,
    including the δe transport of the initial store for the
    syntactic-CPS analyzer.  Accepts canonical names and the registry
    aliases; the pushdown analyzer is tree-only and raises
    `EngineUnsupported` under ``engine="plan"``.  ``plan_tier``
    selects the optimized or baseline plan under ``engine="plan"``.
    """
    analyzer = canonical_analyzer(analyzer, LINT_ANALYZERS)
    if analyzer == "direct":
        return analyze_direct(
            term,
            domain,
            initial=initial,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            engine=engine,
            plan_tier=plan_tier,
        )
    if analyzer == "semantic-cps":
        return analyze_semantic_cps(
            term,
            domain,
            initial=initial,
            loop_mode=loop_mode,
            unroll_bound=unroll_bound,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            engine=engine,
            plan_tier=plan_tier,
        )
    if analyzer == "syntactic-cps":
        lattice = Lattice(domain if domain is not None else ConstPropDomain())
        cps_initial = dict(
            delta_store(AbsStore(lattice, initial)).items()
        )
        return analyze_syntactic_cps(
            cps_transform(term),
            domain,
            initial=cps_initial,
            loop_mode=loop_mode,
            unroll_bound=unroll_bound,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            engine=engine,
            plan_tier=plan_tier,
        )
    assert analyzer == "pushdown", analyzer
    return analyze_pushdown(
        term,
        domain,
        initial=initial,
        max_visits=max_visits,
        trace=trace,
        metrics=metrics,
        engine=engine,
    )


def _analysis_error_code(exc: AnalysisError) -> str:
    """The `repro.serve.codes` name for an analysis failure."""
    if isinstance(exc, BudgetExceeded):
        return "budget_exceeded"
    if isinstance(exc, NonComputableError):
        return "non_computable"
    if isinstance(exc, EngineUnsupported):
        return "engine_unsupported"
    return "internal"


def run_lints(
    program: "str | Term | CorpusProgram",
    analyzer: str = "direct",
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    loop_mode: str = "top",
    unroll_bound: int = 32,
    max_visits: int | None = None,
    semantic: bool = True,
    fix: bool = False,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    program_name: str | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> LintReport:
    """Lint one program with both pass families.

    Args:
        program: source text, an A term, or a corpus entry (whose
            bundled initial assumptions are used unless ``initial``
            overrides them).
        analyzer: which analyzer powers the semantic passes (one of
            `LINT_ANALYZERS`).
        domain: abstract number domain (default constant propagation).
        initial: free-variable assumptions in the direct domain; their
            names also suppress S102.
        loop_mode, unroll_bound, max_visits: analyzer configuration
            (see `repro.api.run_comparison`); note the lint-specific
            ``loop_mode`` default of ``"top"``.
        semantic: set False to run only the syntactic family.
        fix: apply every fix-it and carry the pretty-printed result in
            ``report.fixed_source``.
        trace: `repro.obs` sink receiving the analyzer's events plus
            one ``lint.fired`` event per finding.
        metrics: `repro.obs` registry (``lint.runs``, ``lint.fired``,
            ``lint.fired.<code>`` counters).
        program_name: display name (defaults to the corpus entry's
            name or ``"<program>"``).

    Returns:
        A `LintReport`; diagnostics are sorted most severe first.
    """
    analyzer = canonical_analyzer(analyzer, LINT_ANALYZERS)
    source: str | None = None
    name = program_name
    if isinstance(program, CorpusProgram):
        term = program.term
        name = name or program.name
        if initial is None:
            lattice = Lattice(
                domain if domain is not None else ConstPropDomain()
            )
            initial = program.initial_for(lattice)
    elif isinstance(program, str):
        source = program
        term = parse(program)
    elif isinstance(program, TERM_CLASSES):
        term = program
    else:
        raise TypeError(f"not an A program: {program!r}")
    name = name or "<program>"
    spans = binder_spans(source) if source is not None else {}
    assumed = frozenset(initial or ())

    diagnostics = syntactic_lints(term, assumed=assumed, spans=spans)

    if is_anf(term) and has_unique_binders(term):
        canonical: Term | None = term
        normalized = False
    else:
        canonical = normalize(term)
        normalized = True

    analysis_error: str | None = None
    result: AnalysisResult | None = None
    if semantic and canonical is not None:
        recorder = RecordingSink()
        try:
            result = run_analysis(
                canonical,
                analyzer,
                domain=domain,
                initial=initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=max_visits,
                trace=recorder,
                metrics=metrics,
                engine=engine,
                plan_tier=plan_tier,
            )
        except AnalysisError as exc:
            analysis_error = _analysis_error_code(exc)
        if trace.enabled:
            for event in recorder:
                trace.emit(event)
        if result is not None:
            diagnostics.extend(
                semantic_lints(
                    canonical,
                    result,
                    spans=spans,
                    loop_events=recorder.by_kind("analysis.loop"),
                )
            )

    diagnostics.sort(key=Diagnostic.sort_key)

    fixed_source: str | None = None
    if fix:
        fixed_source = pretty(_apply_fixes(term, canonical, result))

    report = LintReport(
        program=name,
        analyzer=analyzer,
        diagnostics=tuple(diagnostics),
        normalized=normalized,
        analysis_error=analysis_error,
        fixed_source=fixed_source,
    )
    _observe(report, trace, metrics)
    return report


def _apply_fixes(
    term: Term,
    canonical: Term | None,
    result: AnalysisResult | None,
) -> Term:
    """Every fix-it, applied in dependency order: canonicalize
    (uniquify + normalize), fold with the analysis facts, then drop
    dead bindings.  Each step is one of the repo's safe
    transformations, so the result preserves behaviour."""
    fixed = canonical if canonical is not None else normalize(term)
    if result is not None:
        fixed = constant_fold(fixed, result)
    return eliminate_dead_code(fixed)


def _observe(
    report: LintReport, trace: Sink, metrics: Metrics | None
) -> None:
    if metrics is not None:
        metrics.counter("lint.runs").inc()
        for diagnostic in report.diagnostics:
            metrics.counter("lint.fired").inc()
            metrics.counter(f"lint.fired.{diagnostic.code}").inc()
    if trace.enabled:
        for diagnostic in report.diagnostics:
            trace.emit(
                LintFired(
                    code=diagnostic.code,
                    severity=diagnostic.severity,
                    subject=diagnostic.subject or "",
                    analyzer=diagnostic.analyzer or "",
                )
            )


def has_errors(report: LintReport) -> bool:
    """True when any finding is error-severity (the CLI's exit-code
    condition for `repro.serve.codes`'s ``lint_error``)."""
    return any(d.severity == ERROR for d in report.diagnostics)
