"""Renderers for lint reports.

Two stable formats:

- ``text``: one ``program:line:col: severity[CODE]: message`` line per
  finding (the familiar compiler-diagnostic shape), a fix-it hint
  where one exists, and a one-line summary.
- ``json``: ``json.dumps`` of `LintReport.as_dict()` with sorted keys
  and a trailing newline — byte-stable, which is what the golden
  snapshots and the CI ``lint-smoke`` job diff against.
"""

from __future__ import annotations

import json

from repro.lint.diagnostic import Diagnostic, LintReport


def render_diagnostic(report: LintReport, diagnostic: Diagnostic) -> str:
    """One text line for one finding."""
    location = report.program
    if diagnostic.span is not None:
        location = f"{location}:{diagnostic.span}"
    line = (
        f"{location}: {diagnostic.severity}[{diagnostic.code}]: "
        f"{diagnostic.message}"
    )
    if diagnostic.fixit is not None:
        line += f" (fix: {diagnostic.fixit.action})"
    return line


def render_text(report: LintReport) -> str:
    """The full text rendering of one report."""
    lines = [
        render_diagnostic(report, diagnostic)
        for diagnostic in report.diagnostics
    ]
    counts = report.counts()
    tally = (
        ", ".join(
            f"{counts[severity]} {severity}(s)"
            for severity in ("error", "warning", "info")
            if severity in counts
        )
        or "clean"
    )
    summary = f"{report.program}: {tally} [analyzer={report.analyzer}]"
    if report.analysis_error is not None:
        summary += f" (semantic passes unavailable: {report.analysis_error})"
    lines.append(summary)
    if report.fixed_source is not None:
        lines.append("fixed program:")
        lines.append(report.fixed_source)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The byte-stable JSON rendering of one report."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
