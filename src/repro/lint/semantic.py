"""Semantic lint passes (``L0xx``) — the analyzer-powered family.

Each pass consumes an `AnalysisResult` from one of the paper's three
analyzers, so whether a given lint fires is itself a precision
observation: the same program can yield different findings under the
direct (Fig. 4), semantic-CPS (Fig. 5), and syntactic-CPS (Fig. 6)
analyzers (the report's lint-yield scoreboard tabulates exactly this).

Every finding is validated by the corresponding safe transformation
*by construction*, because the passes reuse the very predicates
`repro.opt.constfold` fires on:

- L001 fires iff :func:`repro.opt.constfold.branch_decision` decides
  the branch — the fold then collapses it.
- L003 fires iff ``constant_of`` and
  :func:`repro.opt.constfold.foldable_rhs` both hold — the fold then
  rewrites the binding to the literal.
- L002 is defined extensionally: a binding the
  ``constant_fold``-then-``eliminate_dead_code`` pipeline removes that
  plain ``eliminate_dead_code`` (no analysis facts) cannot.
- L004 reports Section 4.4 loop cuts observed while the analysis ran
  (via `repro.obs` `LoopDetected` events); it flags where the
  abstract interpreter gave up precision, so concrete fuel budgets
  deserve suspicion there.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.analysis.result import AnalysisResult
from repro.lang.ast import If0, Term
from repro.lang.syntax import binders
from repro.lint.diagnostic import Diagnostic, FixIt, INFO, Span, WARNING
from repro.lint.syntactic import iter_let_bindings
from repro.obs.events import TraceEvent
from repro.opt.constfold import branch_decision, constant_fold, foldable_rhs
from repro.opt.deadcode import eliminate_dead_code

_CONSTFOLD_FIX = FixIt(
    "opt.constfold",
    "fold the binding to the proven literal / collapse the decided branch",
)
_PIPELINE_FIX = FixIt(
    "opt.constfold+opt.deadcode",
    "fold with the analysis facts, then remove the dead binding",
)


def semantic_lints(
    term: Term,
    result: AnalysisResult,
    spans: Mapping[str, Span] | None = None,
    loop_events: Iterable[TraceEvent] = (),
) -> list[Diagnostic]:
    """Run every ``L0xx`` pass over ``term`` under ``result``.

    Args:
        term: a program of the restricted subset with unique binders
            (the canonical form the analyzers consumed).
        result: the analysis whose facts power the passes.
        spans: binder name -> source span.
        loop_events: `LoopDetected` trace events recorded while
            ``result`` was computed.
    """
    spans = spans or {}
    analyzer = result.analyzer
    out: list[Diagnostic] = []

    for name, rhs, _body in iter_let_bindings(term):
        if isinstance(rhs, If0):
            decision = branch_decision(rhs, result)
            if decision is not None:
                dead = "else" if decision == "then" else "then"
                proven = "zero" if decision == "then" else "nonzero"
                out.append(
                    Diagnostic(
                        code="L001",
                        rule="unreachable-branch",
                        severity=WARNING,
                        message=(
                            f"the {dead} branch of the conditional bound "
                            f"to {name!r} is unreachable: {analyzer} "
                            f"proves the test {proven}"
                        ),
                        subject=name,
                        span=spans.get(name),
                        analyzer=analyzer,
                        fixit=_CONSTFOLD_FIX,
                    )
                )
        constant = result.constant_of(name)
        if constant is not None and foldable_rhs(rhs, result):
            out.append(
                Diagnostic(
                    code="L003",
                    rule="constant-foldable",
                    severity=INFO,
                    message=(
                        f"binding {name!r} always evaluates to "
                        f"{constant} under {analyzer}"
                    ),
                    subject=name,
                    span=spans.get(name),
                    analyzer=analyzer,
                    fixit=_CONSTFOLD_FIX,
                )
            )

    for name in sorted(_semantically_dead(term, result)):
        out.append(
            Diagnostic(
                code="L002",
                rule="dead-binding",
                severity=WARNING,
                message=(
                    f"binding {name!r} is dead under the {analyzer} "
                    f"abstract store (folding its uses makes it "
                    f"removable)"
                ),
                subject=name,
                span=spans.get(name),
                analyzer=analyzer,
                fixit=_PIPELINE_FIX,
            )
        )

    seen: set[str] = set()
    for event in loop_events:
        label = getattr(event, "label", "")
        if label in seen:
            continue
        seen.add(label)
        out.append(
            Diagnostic(
                code="L004",
                rule="fuel-suspect-loop",
                severity=INFO,
                message=(
                    f"{analyzer} cut a loop at {label} (Section 4.4 "
                    f"guard): concrete runs may exhaust fuel here"
                ),
                subject=label,
                analyzer=analyzer,
            )
        )

    return out


def _semantically_dead(term: Term, result: AnalysisResult) -> set[str]:
    """Binders removable only *with* the analysis facts: gone after
    ``eliminate_dead_code(constant_fold(term, result))`` yet surviving
    plain ``eliminate_dead_code(term)``."""
    with_facts = set(binders(eliminate_dead_code(constant_fold(term, result))))
    without_facts = set(binders(eliminate_dead_code(term)))
    return (set(binders(term)) & without_facts) - with_facts
