"""Syntactic lint passes (``S1xx``).

These hold regardless of any analysis: they wrap the structural
validators of :mod:`repro.anf.validate` and :mod:`repro.cps.validate`
as recoverable diagnostics, and add the purely syntactic free-variable
and unused-binding checks.  Fix-its delegate to the existing repo
transformations — `repro.lang.rename.uniquify` /
`repro.anf.normalize` for structural errors,
`repro.opt.deadcode.eliminate_dead_code` for unused bindings — so a
fixed program is by construction a program the rest of the stack
accepts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.anf.validate import (
    RULE_BINDER_SHADOWS_FREE,
    RULE_NON_UNIQUE_BINDERS,
    RULE_NOT_IN_ANF,
    anf_violations,
)
from repro.cps.transform import TOP_KVAR, cps_transform
from repro.cps.validate import cps_violations
from repro.lang.ast import App, If0, Lam, Let, PrimApp, Term
from repro.lang.syntax import free_variables
from repro.lint.diagnostic import (
    Diagnostic,
    ERROR,
    FixIt,
    Span,
    WARNING,
)
from repro.opt.deadcode import is_pure

#: Validator rule key -> (diagnostic code, severity).
_ANF_RULE_CODES = {
    RULE_NON_UNIQUE_BINDERS: ("S100", ERROR),
    RULE_BINDER_SHADOWS_FREE: ("S101", ERROR),
    RULE_NOT_IN_ANF: ("S103", ERROR),
}

_RENAME_FIX = FixIt(
    "lang.rename.uniquify",
    "alpha-rename binders to fresh names (free variables are reserved)",
)
_NORMALIZE_FIX = FixIt(
    "anf.normalize",
    "A-normalize the program into the restricted subset",
)
_DEADCODE_FIX = FixIt(
    "opt.deadcode",
    "remove the unused pure binding",
)

_ANF_RULE_FIXES = {
    RULE_NON_UNIQUE_BINDERS: _RENAME_FIX,
    RULE_BINDER_SHADOWS_FREE: _RENAME_FIX,
    RULE_NOT_IN_ANF: _NORMALIZE_FIX,
}


def iter_let_bindings(term: Term) -> Iterator[tuple[str, Term, Term]]:
    """Yield ``(name, rhs, body)`` for every ``let`` anywhere in
    ``term``, in deterministic pre-order (rhs before body)."""
    match term:
        case Let(name, rhs, body):
            yield name, rhs, body
            yield from iter_let_bindings(rhs)
            yield from iter_let_bindings(body)
        case Lam(_, body):
            yield from iter_let_bindings(body)
        case If0(test, then, orelse):
            yield from iter_let_bindings(test)
            yield from iter_let_bindings(then)
            yield from iter_let_bindings(orelse)
        case App(fun, arg):
            yield from iter_let_bindings(fun)
            yield from iter_let_bindings(arg)
        case PrimApp(_, args):
            for arg in args:
                yield from iter_let_bindings(arg)
        case _:
            pass


def syntactic_lints(
    term: Term,
    assumed: Iterable[str] = (),
    spans: Mapping[str, Span] | None = None,
) -> list[Diagnostic]:
    """Run every ``S1xx`` pass over ``term``.

    Args:
        term: the program as written (not normalized).
        assumed: free-variable names covered by initial-store
            assumptions; these do not fire S102.
        spans: binder name -> source span, from
            :func:`repro.lint.spans.binder_spans`.
    """
    spans = spans or {}
    out: list[Diagnostic] = []

    structural = anf_violations(term)
    for violation in structural:
        code, severity = _ANF_RULE_CODES[violation.rule]
        out.append(
            Diagnostic(
                code=code,
                rule=violation.rule,
                severity=severity,
                message=violation.message,
                subject=violation.subject,
                span=spans.get(violation.subject or ""),
                fixit=_ANF_RULE_FIXES[violation.rule],
            )
        )

    for name in sorted(free_variables(term) - frozenset(assumed)):
        out.append(
            Diagnostic(
                code="S102",
                rule="free-variable",
                severity=WARNING,
                message=(
                    f"free variable {name!r} has no initial-store "
                    f"assumption; analyses treat it as bottom"
                ),
                subject=name,
                span=spans.get(name),
            )
        )

    blocking = {RULE_NON_UNIQUE_BINDERS, RULE_NOT_IN_ANF}
    if not any(v.rule in blocking for v in structural):
        for violation in cps_violations(
            cps_transform(term, check=False), frozenset({TOP_KVAR})
        ):
            out.append(
                Diagnostic(
                    code="S104",
                    rule=violation.rule,
                    severity=ERROR,
                    message=(
                        f"CPS image fails the cps(A) checker: "
                        f"{violation.message}"
                    ),
                    subject=violation.subject,
                    span=spans.get(violation.subject or ""),
                )
            )

    for name, rhs, body in iter_let_bindings(term):
        if name not in free_variables(body) and is_pure(rhs):
            out.append(
                Diagnostic(
                    code="S105",
                    rule="unused-let-binding",
                    severity=WARNING,
                    message=(
                        f"binding {name!r} is never used and its "
                        f"right-hand side is pure"
                    ),
                    subject=name,
                    span=spans.get(name),
                    fixit=_DEADCODE_FIX,
                )
            )

    return out
