"""The diagnostic vocabulary of the lint engine.

A `Diagnostic` is one finding: a stable rule code (``S1xx`` for
syntactic rules that hold regardless of analysis, ``L0xx`` for
semantic rules proved by a chosen analyzer), a severity, a message,
the binder/variable it is about, an optional source span recovered
from the concrete syntax, and an optional fix-it describing the safe
transformation that discharges it.  A `LintReport` bundles the
findings of one :func:`repro.lint.run_lints` run together with the
run's configuration and outcome flags.

Rule catalog (docs/LINT.md has the long-form version):

====== ======== ===========================================
code   severity meaning
====== ======== ===========================================
S100   error    binder bound more than once
S101   error    binder shadows a free variable
S102   warning  free variable without an initial assumption
S103   error    term is not in the restricted (ANF) subset
S104   error    CPS image fails the cps(A) checker
S105   warning  unused pure ``let`` binding
L001   warning  conditional branch unreachable under analysis
L002   warning  binding dead under the abstract store
L003   info     binding constant-foldable under analysis
L004   info     loop cut by the Section 4.4 guard
====== ======== ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Severity names, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


def severity_rank(severity: str) -> int:
    """Sort key: most severe first, unknown severities last."""
    return _SEVERITY_RANK.get(severity, len(_SEVERITY_RANK))


@dataclass(frozen=True, slots=True)
class Span:
    """A 1-based source position recovered from the parser's datums."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class FixIt:
    """A safe transformation that discharges a diagnostic.

    ``action`` names the repo transformation the fix delegates to
    (e.g. ``"anf.normalize"``, ``"opt.deadcode"``); ``description``
    says what applying it does to this program.
    """

    action: str
    description: str


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding."""

    code: str
    rule: str
    severity: str
    message: str
    subject: str | None = None
    span: Span | None = None
    #: Analyzer whose facts proved this (semantic rules only).
    analyzer: str | None = None
    fixit: FixIt | None = None

    @property
    def semantic(self) -> bool:
        """True for analyzer-dependent (``L0xx``) findings."""
        return self.code.startswith("L")

    def sort_key(self) -> tuple:
        return (
            severity_rank(self.severity),
            self.code,
            (self.span.line, self.span.column) if self.span else (0, 0),
            self.subject or "",
            self.message,
        )

    def as_dict(self) -> dict[str, Any]:
        """The stable JSON schema (``None`` fields omitted)."""
        view: dict[str, Any] = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.subject is not None:
            view["subject"] = self.subject
        if self.span is not None:
            view["span"] = {"line": self.span.line, "column": self.span.column}
        if self.analyzer is not None:
            view["analyzer"] = self.analyzer
        if self.fixit is not None:
            view["fixit"] = {
                "action": self.fixit.action,
                "description": self.fixit.description,
            }
        return view


@dataclass(frozen=True)
class LintReport:
    """The outcome of one :func:`repro.lint.run_lints` run.

    Attributes:
        program: a display name for the linted program.
        analyzer: the analyzer the semantic passes consumed.
        diagnostics: findings, sorted most severe first.
        normalized: True when the semantic passes ran on the
            A-normalized image of the input rather than the input
            itself (the input was outside the restricted subset).
        analysis_error: the serve-code name of the analysis failure
            that made the semantic passes unavailable (e.g.
            ``"budget_exceeded"``), or None when they ran.
        fixed_source: when fixing was requested, the pretty-printed
            program with all fix-its applied.
    """

    program: str
    analyzer: str
    diagnostics: tuple[Diagnostic, ...] = ()
    normalized: bool = False
    analysis_error: str | None = None
    fixed_source: str | None = None

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def semantic_codes(self) -> tuple[str, ...]:
        """Sorted distinct ``L0xx`` codes that fired."""
        return tuple(
            sorted({d.code for d in self.diagnostics if d.semantic})
        )

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def counts(self) -> dict[str, int]:
        """Finding counts per severity (only severities that occur)."""
        out: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] = out.get(diagnostic.severity, 0) + 1
        return out

    def as_dict(self) -> dict[str, Any]:
        """The stable JSON schema used by the CLI, the service, and the
        golden snapshots."""
        view: dict[str, Any] = {
            "program": self.program,
            "analyzer": self.analyzer,
            "normalized": self.normalized,
            "counts": self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
        if self.analysis_error is not None:
            view["analysis_error"] = self.analysis_error
        if self.fixed_source is not None:
            view["fixed_source"] = self.fixed_source
        return view
