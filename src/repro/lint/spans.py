"""Recovering source spans for diagnostics.

AST terms are position-free (they compare structurally, which the
analyzers rely on), so spans are recovered from the concrete syntax
instead: :func:`binder_spans` re-reads the source with the parser's
datum reader and maps every ``let``-bound and ``lambda``-bound name to
the position of its *first* binding occurrence.  Diagnostics about
programs built programmatically (no source text) simply carry no span.

Because `repro.anf.normalize` preserves user-chosen names when they
are already unique, spans survive A-normalization for exactly the
binders a user wrote; machine-introduced binders (``t0`` …) get no
span, which is the honest answer.
"""

from __future__ import annotations

from repro.lang.errors import ParseError
from repro.lang.parser import Atom, Datum, SList, read
from repro.lint.diagnostic import Span


def binder_spans(source: str) -> dict[str, Span]:
    """Map each binder name of ``source`` to the span of its first
    binding occurrence (empty on unreadable input)."""
    try:
        datum = read(source)
    except ParseError:
        return {}
    spans: dict[str, Span] = {}
    _walk(datum, spans)
    return spans


def _note(name_datum: Datum, spans: dict[str, Span]) -> None:
    if isinstance(name_datum, Atom) and name_datum.text not in spans:
        spans[name_datum.text] = Span(name_datum.line, name_datum.column)


def _walk(datum: Datum, spans: dict[str, Span]) -> None:
    if not isinstance(datum, SList) or not datum.items:
        return
    head = datum.items[0]
    if isinstance(head, Atom) and len(datum.items) == 3:
        binding = datum.items[1]
        if (
            head.text == "let"
            and isinstance(binding, SList)
            and len(binding.items) == 2
        ):
            _note(binding.items[0], spans)
        if (
            head.text == "lambda"
            and isinstance(binding, SList)
            and len(binding.items) == 1
        ):
            _note(binding.items[0], spans)
    for item in datum.items:
        _walk(item, spans)
