"""A-normalization: flatten A terms into the restricted subset.

The normalization performs the two phases the paper describes
(Section 2, footnote 2):

1. *Naming*: every intermediate result receives a ``let``-bound name,
   so the data flow analyzers can associate information with the name
   instead of with an expression label.
2. *Re-ordering*: expressions are sequenced in the order the
   interpreters traverse them, e.g. ``(add1 (let (x V) 0))`` becomes
   ``(let (x V) (let (t (add1 0)) t))``.

The implementation is the standard higher-order one-pass normalizer
(`norm` threads a meta-level continuation that receives the atomic
value of the expression being normalized).
"""

from __future__ import annotations

from typing import Callable

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Value,
    Var,
    is_value,
)
from repro.lang.rename import NameSupply, fresh_name_supply, uniquify

#: A meta-continuation: receives an atomic value, returns the rest of
#: the normalized term.
_Kont = Callable[[Value], Term]


def normalize(term: Term, ensure_unique: bool = True) -> Term:
    """Return the A-normal form of ``term``.

    When ``ensure_unique`` is true (the default) the term is first
    alpha-renamed so all binders are distinct, which the restricted
    subset requires.  The result satisfies
    :func:`repro.anf.validate.validate_anf` and is semantically
    equivalent to the input (a property the test suite checks against
    the direct interpreter).
    """
    if ensure_unique:
        term = uniquify(term)
    supply = fresh_name_supply(term)
    return _norm(term, lambda value: value, supply)


def _norm(term: Term, kont: _Kont, supply: NameSupply) -> Term:
    """Normalize ``term`` and pass its atomic value to ``kont``."""
    if is_value(term):
        return kont(_norm_value(term, supply))
    if isinstance(term, Let):
        return _norm_bind(
            term.rhs,
            term.name,
            lambda: _norm(term.body, kont, supply),
            supply,
        )
    name = supply.fresh("t")
    return _norm_bind(term, name, lambda: kont(Var(name)), supply)


def _norm_bind(
    rhs: Term, name: str, rest: Callable[[], Term], supply: NameSupply
) -> Term:
    """Produce ``(let (name <rhs>) <rest()>)`` with ``rhs`` flattened."""
    if is_value(rhs):
        return Let(name, _norm_value(rhs, supply), rest())
    match rhs:
        case App(fun, arg):
            return _norm(
                fun,
                lambda fun_v: _norm(
                    arg,
                    lambda arg_v: Let(name, App(fun_v, arg_v), rest()),
                    supply,
                ),
                supply,
            )
        case PrimApp(op, args):
            return _norm_args(
                list(args),
                [],
                lambda atoms: Let(name, PrimApp(op, tuple(atoms)), rest()),
                supply,
            )
        case If0(test, then, orelse):
            return _norm(
                test,
                lambda test_v: Let(
                    name,
                    If0(
                        test_v,
                        _norm(then, lambda v: v, supply),
                        _norm(orelse, lambda v: v, supply),
                    ),
                    rest(),
                ),
                supply,
            )
        case Let(inner_name, inner_rhs, inner_body):
            return _norm_bind(
                inner_rhs,
                inner_name,
                lambda: _norm_bind(inner_body, name, rest, supply),
                supply,
            )
        case Loop():
            return Let(name, Loop(), rest())
    raise TypeError(f"not an A term: {rhs!r}")


def _norm_args(
    pending: list[Term],
    done: list[Value],
    finish: Callable[[list[Value]], Term],
    supply: NameSupply,
) -> Term:
    """Normalize ``pending`` left to right, collecting atomic values."""
    if not pending:
        return finish(done)
    head, *tail = pending
    return _norm(
        head,
        lambda value: _norm_args(tail, done + [value], finish, supply),
        supply,
    )


def _norm_value(value: Term, supply: NameSupply) -> Value:
    """Normalize inside a syntactic value (i.e. under a lambda)."""
    match value:
        case Num() | Var() | Prim():
            return value
        case Lam(param, body):
            return Lam(param, _norm(body, lambda v: v, supply))
    raise TypeError(f"not a value: {value!r}")
