"""A-normalization (paper Section 2).

The paper's analyzers operate on the *restricted subset* of A in which
every intermediate result is named and all bound variables are unique::

    M ::= V
        | (let (x V) M)
        | (let (x (V V)) M)
        | (let (x (if0 V M M)) M)
        | (let (x (op V V)) M)      -- second-class operators
        | (let (x (loop)) M)        -- Section 6.2 construct
    V ::= n | x | add1 | sub1 | (lambda (x) M)

:func:`normalize` maps an arbitrary A term into this subset using the
A-reductions; :func:`validate_anf` checks membership.
"""

from repro.anf.normalize import normalize
from repro.anf.splice import bind_anf
from repro.anf.validate import is_anf, is_anf_value, validate_anf

__all__ = ["normalize", "bind_anf", "is_anf", "is_anf_value", "validate_anf"]
