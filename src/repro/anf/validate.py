"""Membership checks for the restricted (A-normal form) subset.

Two layers:

- :func:`anf_violations` walks a whole term and returns every
  structural problem as a recoverable `repro.lang.errors.Violation`
  (stable rule keys ``not-in-anf``, ``non-unique-binders``,
  ``binder-shadows-free``), each pointing at the offending binder
  where there is one.  The `repro.lint` syntactic passes consume this.
- :func:`validate_anf` keeps the historical raising API as a thin
  wrapper: it raises a `SyntaxValidationError` carrying the first
  violation's rule and subject.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)
from repro.lang.errors import SyntaxValidationError, Violation
from repro.lang.syntax import binders, free_variables, has_unique_binders

#: Rule keys produced by :func:`anf_violations`.
RULE_NOT_IN_ANF = "not-in-anf"
RULE_NON_UNIQUE_BINDERS = "non-unique-binders"
RULE_BINDER_SHADOWS_FREE = "binder-shadows-free"


def is_anf_value(value: Term) -> bool:
    """True when ``value`` is a syntactic value of the restricted subset."""
    match value:
        case Num() | Var() | Prim():
            return True
        case Lam(_, body):
            return is_anf(body)
        case _:
            return False


def _is_anf_rhs(rhs: Term) -> bool:
    """True when ``rhs`` may appear as a let right-hand side."""
    if is_anf_value(rhs):
        return True
    match rhs:
        case App(fun, arg):
            return is_anf_value(fun) and is_anf_value(arg)
        case PrimApp(_, args):
            return all(is_anf_value(arg) for arg in args)
        case If0(test, then, orelse):
            return is_anf_value(test) and is_anf(then) and is_anf(orelse)
        case Loop():
            return True
        case _:
            return False


def is_anf(term: Term) -> bool:
    """True when ``term`` belongs to the restricted subset grammar.

    Does *not* check the unique-binder side condition; use
    :func:`validate_anf` for the full invariant.
    """
    while isinstance(term, Let):
        if not _is_anf_rhs(term.rhs):
            return False
        term = term.body
    return is_anf_value(term)


def anf_violations(term: Term) -> list[Violation]:
    """Every structural problem keeping ``term`` out of the restricted
    subset, as recoverable records (empty when the term is valid).

    Grammar violations point at the innermost enclosing ``let`` binder;
    binder-uniqueness and shadowing violations point at the offending
    name.  Order: grammar problems first (pre-order), then duplicated
    binders, then binders shadowing free variables.
    """
    out: list[Violation] = []
    _collect_term(term, out, tail_role="program tail")
    names = binders(term)
    seen: set[str] = set()
    reported: set[str] = set()
    for name in names:
        if name in seen and name not in reported:
            reported.add(name)
            out.append(
                Violation(
                    RULE_NON_UNIQUE_BINDERS,
                    f"binder {name!r} is bound more than once",
                    name,
                )
            )
        seen.add(name)
    for name in sorted(set(names) & free_variables(term)):
        out.append(
            Violation(
                RULE_BINDER_SHADOWS_FREE,
                f"binder {name!r} shadows a free variable of the program",
                name,
            )
        )
    return out


def _collect_term(term: Term, out: list[Violation], tail_role: str) -> None:
    """Walk a term position of the restricted grammar, collecting
    ``not-in-anf`` violations."""
    while isinstance(term, Let):
        _collect_rhs(term.name, term.rhs, out)
        term = term.body
    if is_anf_value(term):
        if isinstance(term, Lam):
            _collect_term(term.body, out, "lambda body tail")
        return
    out.append(
        Violation(
            RULE_NOT_IN_ANF,
            f"{tail_role} must be a value of the restricted subset, "
            f"got {type(term).__name__}",
        )
    )


def _collect_value(value: Term, role: str, subject: str | None,
                   out: list[Violation]) -> None:
    if is_anf_value(value):
        if isinstance(value, Lam):
            _collect_term(value.body, out, "lambda body tail")
        return
    out.append(
        Violation(
            RULE_NOT_IN_ANF,
            f"{role} must be a value, got {type(value).__name__}",
            subject,
        )
    )


def _collect_rhs(name: str, rhs: Term, out: list[Violation]) -> None:
    """Check one let right-hand side, recursing where the grammar
    allows nested term positions."""
    if isinstance(rhs, Loop):
        return
    if is_anf_value(rhs):
        if isinstance(rhs, Lam):
            _collect_term(rhs.body, out, "lambda body tail")
        return
    match rhs:
        case App(fun, arg):
            _collect_value(
                fun, f"operator of the call bound to {name!r}", name, out
            )
            _collect_value(
                arg, f"operand of the call bound to {name!r}", name, out
            )
        case PrimApp(op, args):
            for index, part in enumerate(args, start=1):
                _collect_value(
                    part,
                    f"argument {index} of ({op} ...) bound to {name!r}",
                    name,
                    out,
                )
        case If0(test, then, orelse):
            _collect_value(
                test, f"test of the conditional bound to {name!r}", name, out
            )
            _collect_term(then, out, "conditional branch tail")
            _collect_term(orelse, out, "conditional branch tail")
        case Let():
            out.append(
                Violation(
                    RULE_NOT_IN_ANF,
                    f"let expression in the right-hand side of {name!r} "
                    f"is not sequenced (A-normalization re-orders it)",
                    name,
                )
            )
            _collect_term(rhs, out, "nested let tail")
        case _:
            out.append(
                Violation(
                    RULE_NOT_IN_ANF,
                    f"right-hand side of {name!r} is not in the restricted "
                    f"subset: {type(rhs).__name__}",
                    name,
                )
            )


def validate_anf(term: Term) -> None:
    """Raise `SyntaxValidationError` unless ``term`` is a well-formed
    program of the restricted subset with unique binders.

    Thin wrapper over :func:`anf_violations` kept for the historical
    raising API; the exception carries the first violation's rule key
    and subject.  The fast path (valid term) avoids building the
    violation list.
    """
    if is_anf(term) and has_unique_binders(term):
        return
    violations = anf_violations(term)
    if violations:  # pragma: no branch - the checks above mismatch only
        raise SyntaxValidationError.from_violation(violations[0])
