"""Membership checks for the restricted (A-normal form) subset."""

from __future__ import annotations

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)
from repro.lang.errors import SyntaxValidationError
from repro.lang.syntax import has_unique_binders


def is_anf_value(value: Term) -> bool:
    """True when ``value`` is a syntactic value of the restricted subset."""
    match value:
        case Num() | Var() | Prim():
            return True
        case Lam(_, body):
            return is_anf(body)
        case _:
            return False


def _is_anf_rhs(rhs: Term) -> bool:
    """True when ``rhs`` may appear as a let right-hand side."""
    if is_anf_value(rhs):
        return True
    match rhs:
        case App(fun, arg):
            return is_anf_value(fun) and is_anf_value(arg)
        case PrimApp(_, args):
            return all(is_anf_value(arg) for arg in args)
        case If0(test, then, orelse):
            return is_anf_value(test) and is_anf(then) and is_anf(orelse)
        case Loop():
            return True
        case _:
            return False


def is_anf(term: Term) -> bool:
    """True when ``term`` belongs to the restricted subset grammar.

    Does *not* check the unique-binder side condition; use
    :func:`validate_anf` for the full invariant.
    """
    while isinstance(term, Let):
        if not _is_anf_rhs(term.rhs):
            return False
        term = term.body
    return is_anf_value(term)


def validate_anf(term: Term) -> None:
    """Raise `SyntaxValidationError` unless ``term`` is a well-formed
    program of the restricted subset with unique binders."""
    if not is_anf(term):
        raise SyntaxValidationError(
            "term is not in A-normal form (restricted subset)"
        )
    if not has_unique_binders(term):
        raise SyntaxValidationError(
            "A-normal form requires all bound variables to be unique"
        )
