"""Splicing: graft one A-normal form term into another.

`bind_anf` realizes "evaluate ``producer``, bind its result to
``name``, then continue with ``consumer``" without leaving the
restricted subset: it walks the producer's let-spine and replaces the
tail value ``V`` by ``(let (name V) consumer)``.  The caller must
ensure binder disjointness (rename copies first)."""

from __future__ import annotations

from repro.lang.ast import Let, Term, is_value


def bind_anf(producer: Term, name: str, consumer: Term) -> Term:
    """Bind the result of ``producer`` to ``name`` in ``consumer``.

    Both arguments must be in the restricted subset and their binders
    (plus ``name``) must be pairwise distinct; the result is then in
    the restricted subset too.
    """
    if is_value(producer):
        return Let(name, producer, consumer)
    if isinstance(producer, Let):
        return Let(
            producer.name,
            producer.rhs,
            bind_anf(producer.body, name, consumer),
        )
    raise TypeError(f"not an A-normal form term: {producer!r}")
