"""repro — a reproduction of Sabry & Felleisen, *Is Continuation-Passing
Useful for Data Flow Analysis?* (PLDI 1994).

The package implements, from scratch:

- the source language **A** and its A-normal form (:mod:`repro.lang`,
  :mod:`repro.anf`);
- the three concrete interpreters of Figures 1-3 (:mod:`repro.interp`);
- the CPS language and transformation of Definition 3.2
  (:mod:`repro.cps`);
- the three abstract collecting interpreters of Figures 4-6 over
  pluggable finite-height number domains (:mod:`repro.analysis`,
  :mod:`repro.domains`), plus the pushdown (CFA2-style) summary
  analyzer that eliminates Theorem 5.1's false returns without a CPS
  transform (:mod:`repro.analysis.pushdown`);
- the Section 5 comparison machinery (``δ``/``δe``, precision
  verdicts), control-flow graph construction (:mod:`repro.cfg`), and
  analysis-driven optimizations including the paper's proposed
  inlining alternative (:mod:`repro.opt`).

Quick start::

    from repro import run_comparison
    from repro.corpus import THEOREM_51_WITNESS

    report = run_comparison(THEOREM_51_WITNESS)
    print(report.summary())
"""

from repro.api import (
    THREE_WAY_ANALYZERS,
    ComparisonReport,
    ThreeWayReport,
    prepare,
    run_comparison,
    run_three_way,
)
from repro.analysis.compare import Precision

__version__ = "1.0.0"

__all__ = [
    "ComparisonReport",
    "ThreeWayReport",
    "prepare",
    "run_comparison",
    "run_three_way",
    "THREE_WAY_ANALYZERS",
    "Precision",
    "__version__",
]
