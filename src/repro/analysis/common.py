"""Shared machinery for the three abstract collecting interpreters.

Abstract closures and continuations (Section 4.1), the ``CL⊤``/``K⊤``
collectors used by the loop-detection rules (Section 4.4), answers,
statistics, and configuration.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator

from repro.cps.ast import CApp, CIf0, CLam, CLoop, CPrim, CTerm
from repro.cps.validate import cps_subterms
from repro.domains.absval import AbsVal, Lattice
from repro.domains.store import AbsStore
from repro.lang.ast import Lam, Num, Prim, Term, Var
from repro.lang.syntax import subterms
from repro.obs.events import (
    AnalyzerVisit,
    BudgetAborted,
    CacheHit,
    JoinPerformed,
    LoopDetected,
    StoreWidened,
    TraceEvent,
    term_label,
)
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink
from repro.perf import Interner, PerfConfig, PerfStats


class AnalysisError(Exception):
    """Base class for analyzer errors."""


#: Default recursion headroom for deeply nested abstract derivations.
RECURSION_LIMIT = 100_000


@contextmanager
def recursion_headroom(limit: int = RECURSION_LIMIT) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit to ``limit``.

    The abstract derivations recurse once per judgment, so deep
    let-spines and long continuation chains need far more headroom
    than the interpreter default.  Never *lowers* an already higher
    limit, and restores the previous one on exit."""
    previous = sys.getrecursionlimit()
    if limit > previous:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        if limit > previous:
            sys.setrecursionlimit(previous)


class BudgetExceeded(AnalysisError):
    """The analysis exceeded its optional work budget.

    The CPS analyzers' duplication is worst-case exponential (Section
    6.2); a visit budget lets surveys and services bound the damage and
    observe how often real programs trigger the blowup.
    """

    def __init__(self, budget: int) -> None:
        self.budget = budget
        super().__init__(f"analysis exceeded {budget} rule visits")


class NonComputableError(AnalysisError):
    """The exact analysis result is not computable.

    Raised by the CPS analyzers when they meet the Section 6.2 ``loop``
    construct in ``loop_mode='reject'``: computing the infinite join
    ``⊔_i appre(κ, (i, ∅))`` is undecidable in general (the paper
    adapts Kam & Ullman's MOP-undecidability proof).
    """


class EngineUnsupported(AnalysisError):
    """The requested execution engine has no implementation for this
    analyzer.

    The pushdown analyzer is tree-only: its summary tables are keyed
    by abstract closures and stores, not by compiled instruction
    offsets, so there is no ``engine="plan"`` variant.  The serve
    layer maps this to the ``engine_unsupported`` enum error rather
    than a crash.
    """

    def __init__(self, analyzer: str, engine: str) -> None:
        self.analyzer = analyzer
        self.engine = engine
        super().__init__(
            f"the {analyzer} analyzer has no {engine!r} engine"
            " implementation (tree only)"
        )


# ----------------------------------------------------------------------
# Abstract closures and continuations
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AbsTag:
    """An abstract primitive-procedure tag (``inc``/``dec``/``inck``/``deck``)."""

    tag: str

    def __str__(self) -> str:
        return self.tag


A_INC = AbsTag("inc")
A_DEC = AbsTag("dec")
A_INCK = AbsTag("inck")
A_DECK = AbsTag("deck")


@dataclass(frozen=True, slots=True)
class AbsClo:
    """An abstract user closure ``(cle x, M)`` — the environment is
    dropped by the 0CFA abstraction (Section 4.1)."""

    param: str
    body: Term = field(compare=True)

    def __str__(self) -> str:
        return f"(cle {self.param})"


@dataclass(frozen=True, slots=True)
class AbsCpsClo:
    """An abstract CPS user closure ``(cle x k, P)``."""

    param: str
    kparam: str
    body: CTerm

    def __str__(self) -> str:
        return f"(cle {self.param} {self.kparam})"


@dataclass(frozen=True, slots=True)
class AbsCo:
    """An abstract continuation ``(coe x, P)`` of the syntactic-CPS
    analyzer."""

    param: str
    body: CTerm

    def __str__(self) -> str:
        return f"(coe {self.param})"


@dataclass(frozen=True, slots=True)
class AbsStop:
    """The abstract initial continuation ``stop``."""

    def __str__(self) -> str:
        return "stop"


A_STOP = AbsStop()


@dataclass(frozen=True, slots=True)
class AFrame:
    """An abstract semantic-CPS frame ``(let (x []) M)`` — the
    environment component is dropped by the abstraction."""

    name: str
    body: Term

    def __str__(self) -> str:
        return f"(let ({self.name} []) ...)"


#: An abstract continuation of the semantic-CPS analyzer: a stack of
#: frames, innermost first.
AKont = tuple[AFrame, ...]


# ----------------------------------------------------------------------
# phi_e: abstract syntactic values (shared by Figures 4 and 5)
# ----------------------------------------------------------------------


def abstract_value(lattice: Lattice, value: Term, store: AbsStore) -> AbsVal:
    """``phi_e`` of Figures 4/5: the abstract value of a syntactic value."""
    match value:
        case Num(n):
            return lattice.of_const(n)
        case Var(name):
            return store.get(name)
        case Prim("add1"):
            return lattice.of_clos(A_INC)
        case Prim("sub1"):
            return lattice.of_clos(A_DEC)
        case Lam(param, body):
            return lattice.of_clos(AbsClo(param, body))
    raise TypeError(f"not a syntactic value: {value!r}")


# ----------------------------------------------------------------------
# CL⊤ / K⊤ collectors (Section 4.4)
# ----------------------------------------------------------------------


def closures_of_term(term: Term) -> frozenset:
    """All abstract closures a direct/semantic analysis of ``term`` can
    ever create: one ``(cle x, M)`` per lambda, plus ``inc``/``dec``
    when the corresponding primitive occurs."""
    found: set[Hashable] = set()
    for sub in subterms(term):
        if isinstance(sub, Lam):
            found.add(AbsClo(sub.param, sub.body))
        elif isinstance(sub, Prim):
            found.add(A_INC if sub.name == "add1" else A_DEC)
    return frozenset(found)


def cps_closures_of_term(term: CTerm) -> frozenset:
    """All abstract closures of a cps(A) program."""
    found: set[Hashable] = set()
    for sub in cps_subterms(term):
        if isinstance(sub, CLam):
            found.add(AbsCpsClo(sub.param, sub.kparam, sub.body))
        elif isinstance(sub, CPrim):
            found.add(A_INCK if sub.name == "add1k" else A_DECK)
    return frozenset(found)


def konts_of_term(term: CTerm) -> frozenset:
    """All abstract continuations of a cps(A) program: one
    ``(coe x, P)`` per continuation lambda, plus ``stop``."""
    found: set[Hashable] = {A_STOP}
    for sub in cps_subterms(term):
        match sub:
            case CApp(_, _, kont):
                found.add(AbsCo(kont.param, kont.body))
            case CIf0(_, kont, _, _, _):
                found.add(AbsCo(kont.param, kont.body))
            case CLoop(kont):
                found.add(AbsCo(kont.param, kont.body))
            case _:
                pass
    return frozenset(found)


def closures_of_store(store: AbsStore) -> frozenset:
    """Closures already present in an initial store (free-variable
    assumptions contribute to CL⊤ as well)."""
    found: set[Hashable] = set()
    for _, value in store.items():
        found |= value.clos
    return frozenset(found)


def konts_of_store(store: AbsStore) -> frozenset:
    """Continuations already present in an initial store."""
    found: set[Hashable] = set()
    for _, value in store.items():
        found |= value.konts
    return frozenset(found)


# ----------------------------------------------------------------------
# Answers, statistics, configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AAnswer:
    """An abstract answer: an abstract value paired with a store."""

    value: AbsVal
    store: AbsStore


@dataclass(slots=True)
class AnalysisStats:
    """Instrumentation counters.

    ``visits`` counts analyzer rule applications (the work measure of
    the Section 6.2 cost experiments, independent of wall clock);
    ``loop_cuts`` counts Section 4.4 loop detections; ``max_depth``
    tracks the deepest active derivation path; ``joins`` counts
    abstract-answer merges (branch joins and multi-closure
    applications — where the direct analyzer loses per-path precision
    and the CPS analyzers pay for keeping it); ``widenings`` counts
    store bindings that strictly grew past an existing non-bottom
    value; ``max_store_size`` is the largest abstract store observed.
    """

    visits: int = 0
    loop_cuts: int = 0
    max_depth: int = 0
    returns_analyzed: int = 0
    joins: int = 0
    widenings: int = 0
    max_store_size: int = 0

    @property
    def loop_detections(self) -> int:
        """Alias of ``loop_cuts`` under the obs-schema name."""
        return self.loop_cuts

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports (old keys stay stable)."""
        return {
            "visits": self.visits,
            "loop_cuts": self.loop_cuts,
            "max_depth": self.max_depth,
            "returns_analyzed": self.returns_analyzed,
            "joins": self.joins,
            "widenings": self.widenings,
            "loop_detections": self.loop_cuts,
            "max_store_size": self.max_store_size,
        }


#: Sentinel "no active taint" for the eval memo (any real registration
#: sequence number compares below it).
_NO_TAINT = sys.maxsize

#: Summaries whose footprint outgrows this are not worth storing: the
#: per-probe disjointness check and the retained key references would
#: cost more than re-deriving the answer.
_FOOTPRINT_LIMIT = 50_000


class WorkBudgetMixin:
    """Visit counting, tracing, caching, and an optional budget.

    Analyzers call :meth:`tick` once per rule application; when
    ``max_visits`` is set, exceeding it aborts the analysis — the
    Section 6.2 exponential blowup made observable and boundable.
    The mixin also owns the analyzer half of `repro.obs`: a trace sink
    (events are only constructed when the sink is enabled, so the
    `NullSink` default costs one ``is None`` check per rule) and the
    join/widening/store-size bookkeeping shared by all analyzers.

    The `repro.perf` half lives here too.  Interning
    (:meth:`intern_store`, :meth:`join_stores`) is semantically
    invisible.  The eval memo is subtler, because a judgment's answer
    is *not* a function of the judgment alone: a Section 4.4 loop cut
    makes it depend on which ancestors are on the active path.  Two
    mechanisms keep cached answers bit-identical to uncached ones:

    - **taint** (write side): every active-path registration gets a
      monotone sequence number; a loop cut taints the memo with the
      still-active owner's number.  A frame's summary is stored only
      when no judgment registered *before* the frame started was cut
      on during it (:meth:`memo_complete`) — i.e. the answer was
      derived without consulting the frame's context.  Cuts on the
      frame's own judgments are deterministic and harmless, and
      discharge the taint when the frame exits.
    - **footprint** (read side): each summary records the judgments
      its sub-derivation registered.  A probe rejects the summary if
      any of them is currently active (:meth:`memo_probe`), because a
      fresh evaluation here *would* cut where the recorded one did
      not.

    Together: a hit reproduces exactly what re-evaluation would have
    produced, so only visit counts (and wall time) change.
    """

    stats: AnalysisStats
    max_visits: int | None = None
    lattice: Lattice
    analyzer_name: str = "?"
    trace: Sink = NULL_SINK
    metrics: Metrics | None = None
    _emit: Callable[[TraceEvent], None] | None = None
    _depth: int = 0
    # perf defaults, for mixin users that never call init_perf
    perf_config: PerfConfig = PerfConfig.resolve(False)
    perf: PerfStats | None = None
    _interner: Interner | None = None
    _memo: "dict | None" = None
    _memo_seq: int = 0
    _memo_taint: int = _NO_TAINT
    #: Class-level fallback is never mutated: init_perf installs a
    #: per-instance stack, and without one the footprint adds are
    #: skipped entirely.
    _fp_stack: "list[set]" = []
    #: Optional `repro.incr` persistence session (see attach_recorder).
    _recorder = None
    #: Per-frame *transported-footprint* digests: non-empty only for
    #: frames whose derivation consumed a summary decoded from the
    #: persistent store (whose exact judgment keys are unknowable
    #: across processes).  Class-level fallback, per-instance stack.
    _mark_stack: "list[set]" = []
    _last_marks: frozenset = frozenset()

    def init_obs(self, trace: Sink | None, metrics: Metrics | None) -> None:
        """Attach a trace sink and metrics registry (constructor
        helper; both default to disabled)."""
        self.trace = trace if trace is not None else NULL_SINK
        self._emit = self.trace.emit if self.trace.enabled else None
        self.metrics = metrics

    def init_perf(self, cache: "PerfConfig | bool | None") -> None:
        """Attach the `repro.perf` caches (constructor helper).

        ``cache`` follows ``PerfConfig.resolve``: ``None`` interns
        only, ``True`` also memoizes eval, ``False`` disables
        everything.
        """
        config = PerfConfig.resolve(cache)
        self.perf_config = config
        self.perf = PerfStats()
        self._interner = Interner(self.perf) if config.intern else None
        self._memo = {} if config.memo else None
        self._fp_stack: list[set] = []
        self._memo_seq = 0
        self._memo_taint = _NO_TAINT
        self._recorder = None
        self._mark_stack: list[set] = []
        self._last_marks = frozenset()

    def attach_recorder(self, recorder) -> None:
        """Attach a `repro.incr` summary recorder (persistent eval
        memo tier).  Requires the in-memory memo: the recorder reuses
        its taint/footprint machinery wholesale — a summary is
        persisted exactly when the memo stored it, and a decoded
        summary is injected as a memo entry."""
        if self._memo is None:
            raise ValueError(
                "the persistent recorder requires cache=True"
                " (the in-memory eval memo)"
            )
        self._recorder = recorder

    # -- interning ------------------------------------------------------

    def intern_store(self, store: AbsStore) -> AbsStore:
        """Canonicalize a store (identity when interning is off)."""
        interner = self._interner
        return store if interner is None else interner.store(store)

    def join_stores(self, a: AbsStore, b: AbsStore) -> AbsStore:
        """``a.join(b)`` through the interner's join memo when on."""
        interner = self._interner
        if interner is not None and self.perf_config.join_memo:
            return interner.join_stores(a, b)
        return a.join(b)

    # -- eval memo ------------------------------------------------------

    def register_judgment(self, key, registered: list) -> None:
        """Put a judgment on the active path, stamped with the memo's
        taint sequence number, and into the current frame footprint."""
        seq = self._memo_seq
        self._memo_seq = seq + 1
        self._active[key] = seq
        registered.append(key)
        if self._fp_stack:
            self._fp_stack[-1].add(key)

    def unregister_judgments(self, registered: list) -> None:
        """Remove a frame's judgments from the active path."""
        active = self._active
        for key in registered:
            del active[key]

    def note_loop_cut(self, owner_seq: int, subject: object = None) -> None:
        """Count a Section 4.4 cut and taint every memo frame opened
        after the still-active owner judgment was registered."""
        if owner_seq < self._memo_taint:
            self._memo_taint = owner_seq
        self.count_loop_cut(subject)

    def memo_frame(self) -> tuple[int, set]:
        """Open a memo frame: its start sequence number and footprint."""
        footprint: set = set()
        self._fp_stack.append(footprint)
        if self._recorder is not None:
            self._mark_stack.append(set())
        return self._memo_seq, footprint

    def memo_frame_end(self, footprint: set) -> None:
        """Close a memo frame, folding its footprint into the parent's."""
        self._fp_stack.pop()
        if self._fp_stack:
            self._fp_stack[-1].update(footprint)
        if self._recorder is not None:
            marks = self._mark_stack.pop()
            self._last_marks = frozenset(marks)
            if self._mark_stack and marks:
                self._mark_stack[-1].update(marks)

    def memo_probe(self, memo_key, active_key, subject):
        """A stored summary for this judgment, or None.

        Rejects summaries whose recorded sub-derivation overlaps the
        currently active path (a fresh evaluation would cut there).
        Only called with the memo enabled.  With a recorder attached
        an in-memory miss falls through to the persistent tier; a
        decoded summary becomes an ordinary memo entry whose
        footprint travels as node digests (``marks``).
        """
        entry = self._memo.get(memo_key)
        perf = self.perf
        recorder = self._recorder
        if entry is None and recorder is not None:
            entry = recorder.lookup(memo_key, self._active)
            if entry is not None:
                self._memo[memo_key] = entry
        if entry is None:
            perf.eval_cache_misses += 1
            return None
        answer, footprint, marks = entry
        active = self._active
        if len(footprint) < len(active):
            clash = any(key in active for key in footprint)
        else:
            clash = any(key in footprint for key in active)
        if not clash and marks and recorder is not None:
            clash = recorder.clashes(marks, active)
            if clash:
                recorder.store.stats.stale_rejections += 1
        if clash:
            perf.eval_cache_rejects += 1
            return None
        perf.eval_cache_hits += 1
        frame_fp = self._fp_stack[-1]
        frame_fp.add(active_key)
        frame_fp.update(footprint)
        if marks and self._mark_stack:
            self._mark_stack[-1].update(marks)
        if self._emit is not None:
            self._emit(
                CacheHit(
                    f"analysis.{self.analyzer_name}", term_label(subject)
                )
            )
        return answer

    def memo_complete(
        self, memo_key, start_seq: int, footprint: set, answer, cacheable=True
    ):
        """Finish a memo frame: discharge taints owned by this frame's
        own judgments, and store the summary when it never consulted
        the frame's context (see the class docstring)."""
        if self._memo_taint >= start_seq:
            self._memo_taint = _NO_TAINT
            if cacheable and len(footprint) <= _FOOTPRINT_LIMIT:
                recorder = self._recorder
                marks = (
                    self._last_marks if recorder is not None else frozenset()
                )
                fp_keys = frozenset(footprint)
                self._memo[memo_key] = (answer, fp_keys, marks)
                if recorder is not None:
                    recorder.record(memo_key, answer, fp_keys, marks)
        return answer

    def tick(self, subject: object = None) -> None:
        """Count one rule application, enforcing the budget."""
        self.stats.visits += 1
        emit = self._emit
        if emit is not None:
            emit(
                AnalyzerVisit(
                    self.analyzer_name,
                    term_label(subject) if subject is not None else "",
                    self._depth,
                )
            )
        if self.max_visits is not None and self.stats.visits > self.max_visits:
            if emit is not None:
                emit(
                    BudgetAborted(
                        self.analyzer_name, self.max_visits, self.stats.visits
                    )
                )
            raise BudgetExceeded(self.max_visits)

    def count_join(self, site: str) -> None:
        """Count one merge of two abstract answers."""
        self.stats.joins += 1
        if self._emit is not None:
            self._emit(JoinPerformed(self.analyzer_name, site))

    def count_loop_cut(self, subject: object = None) -> None:
        """Count one Section 4.4 loop detection."""
        self.stats.loop_cuts += 1
        if self._emit is not None:
            self._emit(
                LoopDetected(
                    self.analyzer_name,
                    term_label(subject) if subject is not None else "",
                )
            )

    def bind_join(self, store: AbsStore, name, value: AbsVal) -> AbsStore:
        """``sigma[x := sigma(x) u u]`` with widening/store-size
        bookkeeping: a binding that strictly grows past an existing
        non-bottom value counts as a widening step."""
        before = store.get(name)
        interner = self._interner
        if interner is None:
            after = store.joined_bind(name, value)
        else:
            after = store.joined_bind(name, value, intern=interner.value)
            if after is not store:
                after = interner.store(after)
        size = len(after)
        if size > self.stats.max_store_size:
            self.stats.max_store_size = size
        if after is not store and not self.lattice.is_bottom(before):
            self.stats.widenings += 1
            if self._emit is not None:
                self._emit(
                    StoreWidened(self.analyzer_name, str(name), size)
                )
        return after

    def finish_metrics(self) -> None:
        """Fold the final stats into the metrics registry (if any)
        under ``analysis.<analyzer_name>``, plus the `repro.perf`
        cache counters under ``perf.<analyzer_name>``."""
        if self.metrics is not None:
            self.metrics.merge_stats(
                f"analysis.{self.analyzer_name}", self.stats.as_dict()
            )
            if self.perf is not None:
                self.metrics.merge_stats(
                    f"perf.{self.analyzer_name}", self.perf.as_dict()
                )


#: How the CPS analyzers treat the Section 6.2 ``loop`` construct.
#:
#: - ``'reject'`` — raise `NonComputableError` (the faithful reading:
#:   the exact join over all naturals is undecidable);
#: - ``'top'``    — apply the continuation once to the join of all
#:   naturals (sound, loses the per-iteration duplication — this is
#:   what the direct analyzer effectively does);
#: - ``'unroll'`` — join the continuation applied to 0..bound and then
#:   stop; demonstrates the undecidability experimentally (the result
#:   may keep changing as the bound grows) and is NOT sound in general.
LOOP_MODES = ("reject", "top", "unroll")


def check_loop_mode(mode: str) -> str:
    """Validate a loop-handling mode."""
    if mode not in LOOP_MODES:
        raise ValueError(f"loop_mode must be one of {LOOP_MODES}, got {mode!r}")
    return mode
