"""The syntactic-CPS abstract collecting interpreter ``Ms`` — Figure 6.

The analyzer abstracts the interpreter of Figure 3.  Because the CPS
transformation reifies continuations into values the program
manipulates, the analysis must collect, at every continuation variable
``k``, the *set* of abstract continuations ``(coe x, P)`` that may
flow there — and a return ``(k W)`` applies **every** collected
continuation and joins the results.  This is the *false return*
problem of Section 6.1 (Theorem 5.1, and Shivers' 0CFA example):
distinct procedure returns are confused, so the analysis may follow
infeasible paths.

At the same time, each individual continuation application re-analyzes
the continuation body per incoming value — the same duplication as the
semantic-CPS analyzer — so the analysis may also *gain* information
over the direct analyzer in non-distributive analyses (Theorem 5.2).
Theorem 5.5 bounds it from above by the semantic-CPS analysis.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import (
    A_DECK,
    A_INCK,
    A_STOP,
    AAnswer,
    AbsCo,
    AbsCpsClo,
    AnalysisStats,
    NonComputableError,
    WorkBudgetMixin,
    check_loop_mode,
    closures_of_store,
    cps_closures_of_term,
    konts_of_store,
    konts_of_term,
    recursion_headroom,
)
from repro.analysis.result import AnalysisResult
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
)
from repro.cps.transform import TOP_KVAR
from repro.cps.validate import validate_cps
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink


class SyntacticCpsAnalyzer(WorkBudgetMixin):
    """Figure 6, with Section 4.4 loop detection."""

    analyzer_name = "syntactic-cps"

    def __init__(
        self,
        term: CTerm,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        top_kvar: str = TOP_KVAR,
        loop_mode: str = "reject",
        unroll_bound: int = 32,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
    ) -> None:
        """Prepare an analysis of the cps(A) program ``term``.

        Args:
            term: a cps(A) program, usually ``cps_transform(M)``.
            domain: abstract number domain (default constant propagation).
            initial: assumptions for free variables — pass the δe-image
                of the direct initial store (see
                :func:`repro.analysis.delta.delta_store`).
            top_kvar: the program's continuation variable; if absent
                from ``initial`` it is bound to ``{stop}``.
            loop_mode: treatment of the ``loop`` construct ('reject',
                'top', or 'unroll').
            unroll_bound: iterations joined in 'unroll' mode.
            check: validate the cps(A) grammar and scoping.
            trace: optional `repro.obs` sink receiving per-rule trace
                events (default: disabled, zero overhead).
            metrics: optional `repro.obs` metrics registry.
            cache: `repro.perf` configuration (a `PerfConfig`, or
                ``None``/``True``/``False``); results are identical
                either way, only visit counts and wall time change.
        """
        if check:
            validate_cps(term, frozenset((top_kvar,)))
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.loop_mode = check_loop_mode(loop_mode)
        self.unroll_bound = unroll_bound
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        table = dict(initial) if initial else {}
        if top_kvar not in table:
            table[top_kvar] = self.lattice.of_konts(A_STOP)
        self.initial_store = self.intern_store(AbsStore(self.lattice, table))
        cl_top = cps_closures_of_term(term) | closures_of_store(
            self.initial_store
        )
        k_top = konts_of_term(term) | konts_of_store(self.initial_store)
        #: The least precise value ``(⊤, CL⊤, K⊤)`` (Section 4.4).
        self.top_value = AbsVal(self.lattice.domain.top, cl_top, k_top)
        self._active: dict[tuple[int, AbsStore], int] = {}
        self._depth = 0

    def run(self) -> AnalysisResult:
        """Analyze the program and return the result."""
        try:
            with recursion_headroom():
                answer = self.eval(self.term, self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name, answer, self.stats, self.lattice
        )

    # ------------------------------------------------------------------
    # phi_s: abstract cps(A) values
    # ------------------------------------------------------------------

    def eval_value(self, value: CValue, store: AbsStore) -> AbsVal:
        """``phi_s`` of Figure 6."""
        lattice = self.lattice
        match value:
            case CNum(n):
                return lattice.of_const(n)
            case CVar(name):
                return store.get(name)
            case CPrim("add1k"):
                return lattice.of_clos(A_INCK)
            case CPrim("sub1k"):
                return lattice.of_clos(A_DECK)
            case CLam(param, kparam, body):
                return lattice.of_clos(AbsCpsClo(param, kparam, body))
        raise TypeError(f"not a cps(A) value: {value!r}")

    # ------------------------------------------------------------------
    # Ms
    # ------------------------------------------------------------------

    def eval(self, term: CTerm, store: AbsStore) -> AAnswer:
        """``Ms``: analyze the serious term ``term`` in ``store``.

        With memoization off this is exactly `_eval`; with it on, the
        frame around `_eval` tracks the taint / footprint bookkeeping
        that keeps cached answers bit-identical to uncached ones (see
        `WorkBudgetMixin`).  Every cps(A) term is serious, so every
        frame answer is cacheable.
        """
        if self._memo is None:
            return self._eval(term, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(term, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (id(term), store), start_seq, footprint, answer
        )

    def _eval(self, term: CTerm, store: AbsStore) -> AAnswer:
        """The Figure 6 ``Ms`` clauses proper."""
        registered: list[tuple[int, AbsStore]] = []
        memo = self._memo
        self._depth += 1
        self.stats.max_depth = max(self.stats.max_depth, self._depth)
        try:
            while True:
                key = (id(term), store)
                owner = self._active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, term)
                    return AAnswer(self.top_value, store)
                if memo is not None:
                    hit = self.memo_probe(key, key, term)
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                self.tick(term)

                match term:
                    case KApp(kvar, value):
                        # The false-return rule: k may hold *several*
                        # continuations; apply them all and join.
                        kont_val = store.get(kvar)
                        result = self.eval_value(value, store)
                        return self.ret(kont_val, result, store)
                    case CLet(name, value, body):
                        store = self.bind_join(
                            store, name, self.eval_value(value, store)
                        )
                        term = body
                    case CApp(fun, arg, klam):
                        fun_v = self.eval_value(fun, store)
                        arg_v = self.eval_value(arg, store)
                        kont_val = self.lattice.of_konts(
                            AbsCo(klam.param, klam.body)
                        )
                        return self.apply(fun_v, arg_v, kont_val, store)
                    case CIf0(kvar, klam, test, then, orelse):
                        return self._branch(
                            kvar, klam, test, then, orelse, store
                        )
                    case CPrimLet(name, op, args, body):
                        nums = [
                            self.eval_value(a, store).num for a in args
                        ]
                        result = self.lattice.of_num(
                            self.lattice.domain.binop(op, nums[0], nums[1])
                        )
                        store = self.bind_join(store, name, result)
                        term = body
                    case CLoop(klam):
                        kont_val = self.lattice.of_konts(
                            AbsCo(klam.param, klam.body)
                        )
                        return self._loop(kont_val, store)
                    case _:
                        raise TypeError(f"not a cps(A) term: {term!r}")
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    # ------------------------------------------------------------------
    # app_s: abstract application
    # ------------------------------------------------------------------

    def apply(
        self, fun: AbsVal, arg: AbsVal, kont_val: AbsVal, store: AbsStore
    ) -> AAnswer:
        """``app_s``: apply every abstract closure; user closures also
        receive the continuation value through their k-parameter."""
        lattice = self.lattice
        domain = lattice.domain
        answer: AAnswer | None = None
        for clo in fun.clos:
            if clo is A_INCK:
                branch = self.ret(
                    kont_val, lattice.of_num(domain.add1(arg.num)), store
                )
            elif clo is A_DECK:
                branch = self.ret(
                    kont_val, lattice.of_num(domain.sub1(arg.num)), store
                )
            elif isinstance(clo, AbsCpsClo):
                entry = self.bind_join(
                    self.bind_join(store, clo.param, arg),
                    clo.kparam,
                    kont_val,
                )
                branch = self.eval(clo.body, entry)
            else:
                raise TypeError(f"unexpected abstract closure {clo!r}")
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "apply")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    # ------------------------------------------------------------------
    # appr_s: abstract return
    # ------------------------------------------------------------------

    def ret(self, kont_val: AbsVal, value: AbsVal, store: AbsStore) -> AAnswer:
        """``appr_s``: pass ``value`` to every abstract continuation in
        ``kont_val`` and join the answers.

        When several continuations have been merged at one variable,
        this is exactly the false-return confusion of Section 6.1."""
        answer: AAnswer | None = None
        for kont in kont_val.konts:
            self.stats.returns_analyzed += 1
            if kont is A_STOP:
                branch = AAnswer(value, store)
            elif isinstance(kont, AbsCo):
                branch = self.eval(
                    kont.body, self.bind_join(store, kont.param, value)
                )
            else:
                raise TypeError(f"unexpected abstract continuation {kont!r}")
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "return")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    # ------------------------------------------------------------------
    # Conditionals and loops
    # ------------------------------------------------------------------

    def _branch(
        self,
        kvar: str,
        klam,
        test: CValue,
        then: CTerm,
        orelse: CTerm,
        store: AbsStore,
    ) -> AAnswer:
        """The ``if0`` rules of Figure 6: the join continuation is
        bound to ``kvar`` in the store, then each feasible branch is
        analyzed; both-branch answers join at the end."""
        test_v = self.eval_value(test, store)
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test_v.num)
        nonzero_possible = domain.may_be_nonzero(test_v.num) or bool(
            test_v.clos
        )
        bound = self.bind_join(
            store, kvar, self.lattice.of_konts(AbsCo(klam.param, klam.body))
        )
        if zero_possible and not nonzero_possible:
            return self.eval(then, bound)
        if nonzero_possible and not zero_possible:
            return self.eval(orelse, bound)
        if not zero_possible and not nonzero_possible:
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(then, bound)
        else_answer = self.eval(orelse, bound)
        return self._join(then_answer, else_answer, "if0")

    def _loop(self, kont_val: AbsVal, store: AbsStore) -> AAnswer:
        """Section 6.2 ``loop``: same undecidability as the semantic
        analyzer; see the module docstring of
        :mod:`repro.analysis.semantic_cps`."""
        lattice = self.lattice
        domain = lattice.domain
        if self.loop_mode == "reject":
            raise NonComputableError(
                "syntactic-CPS analysis of `loop` requires the join of "
                "the continuation applied to every natural, which is "
                "undecidable (paper Section 6.2); re-run with "
                "loop_mode='top' or loop_mode='unroll'"
            )
        if self.loop_mode == "top":
            return self.ret(kont_val, lattice.of_num(domain.iota), store)
        answer: AAnswer | None = None
        for i in range(self.unroll_bound + 1):
            branch = self.ret(kont_val, lattice.of_const(i), store)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "loop")
            )
        assert answer is not None
        return answer

    def _join(self, a: AAnswer, b: AAnswer, site: str = "join") -> AAnswer:
        self.count_join(site)
        return AAnswer(
            self.lattice.join(a.value, b.value),
            self.join_stores(a.store, b.store),
        )


def analyze_syntactic_cps(
    term: CTerm,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    top_kvar: str = TOP_KVAR,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    check: bool = True,
    max_visits: int | None = None,
    trace: Sink | None = None,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> AnalysisResult:
    """Run the syntactic-CPS data flow analysis (Figure 6).

    ``engine="plan"`` runs the compiled-plan implementation (same
    judgments and statistics; see :mod:`repro.analysis.engine`);
    ``plan_tier`` selects its optimized or base instruction arrays.
    """
    if engine != "tree":
        from repro.analysis.engine import (
            SyntacticCpsPlanAnalyzer,
            check_engine,
        )

        check_engine(engine)
        return SyntacticCpsPlanAnalyzer(
            term, domain, initial, top_kvar, loop_mode, unroll_bound, check,
            max_visits=max_visits, trace=trace, metrics=metrics, cache=cache,
            plan_tier=plan_tier,
        ).run()
    return SyntacticCpsAnalyzer(
        term, domain, initial, top_kvar, loop_mode, unroll_bound, check,
        max_visits=max_visits, trace=trace, metrics=metrics, cache=cache,
    ).run()
