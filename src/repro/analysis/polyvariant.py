"""A polyvariant (k-CFA) variant of the direct analyzer.

The paper's analyzers are monovariant (0CFA, Section 4.1: one abstract
location per variable).  Shivers' thesis [16] proposes *call-string
polyvariance* instead: one location per variable **and** per context,
where a context is the string of the last ``k`` call sites.  This
module implements that generalization of Figure 4, for two reasons:

1. as an ablation against the paper's central claim — the precision
   the CPS analyses gain is *duplication of returns*, which call-string
   contexts do **not** provide: k-CFA fixes the classic repeated-call
   imprecision but leaves both Theorem 5.2 witnesses exactly as
   imprecise as 0CFA (the tests pin this); and
2. as the natural "more precision without CPS" extension alongside
   the Section 6.3 inlining/duplication transformations.

Design notes
------------

- Abstract locations are ``(variable, context)`` pairs; the store is
  the same hashable `AbsStore`, keyed by `CtxVar`.
- Abstract closures (`PolyClo`) carry a *binding-time environment*
  mapping their free variables to the contexts those variables were
  bound in, so a closure applied far from its definition still reads
  the right bindings.  A closure with a missing entry falls back to
  the join over every context of that variable (used for closures
  assumed in the initial store and for the loop-cut top value, where
  no specific context is known — always sound, merely coarser).
- Termination follows the same Section 4.4 argument: contexts and
  environments are drawn from finite sets, the store lattice has
  finite height, and ``(term, env, ctx, store)`` active-path keys
  repeat on any infinite derivation.
- ``k = 0`` degenerates to exactly one context ``()`` and reproduces
  the monovariant analyzer's results on cut-free programs (a
  regression property the tests check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.analysis.common import (
    A_DEC,
    A_INC,
    AbsClo,
    AnalysisStats,
    WorkBudgetMixin,
    recursion_headroom,
)
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.lang.syntax import free_variables, subterms
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink

#: A call-string context: the labels of the last k call sites.
Context = tuple[str, ...]

#: The context everything starts in.
TOP_CONTEXT: Context = ()


@dataclass(frozen=True, slots=True)
class CtxVar:
    """A context-sensitive abstract location ``(variable, context)``."""

    name: str
    ctx: Context

    def __str__(self) -> str:
        inner = ",".join(self.ctx) or "ε"
        return f"{self.name}@{inner}"


@dataclass(frozen=True, slots=True)
class PolyClo:
    """A polyvariant abstract closure.

    ``env`` records, for each free variable of the body, the context
    its binding lives at — sorted tuple of pairs so the value is
    hashable.  Variables absent from ``env`` are read with the
    join-over-all-contexts fallback.
    """

    param: str
    body: Term
    env: tuple[tuple[str, Context], ...] = ()

    def lookup_ctx(self, name: str) -> Context | None:
        for entry_name, ctx in self.env:
            if entry_name == name:
                return ctx
        return None

    def __str__(self) -> str:
        return f"(cle {self.param})"


def _truncate(ctx: Context, k: int) -> Context:
    return ctx[-k:] if k else TOP_CONTEXT


class PolyvariantDirectAnalyzer(WorkBudgetMixin):
    """Figure 4 with call-string polyvariance."""

    analyzer_name = "direct-kcfa"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        k: int = 1,
        initial: Mapping[str, AbsVal] | None = None,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
    ) -> None:
        """Prepare a k-CFA analysis of ``term``.

        Args:
            term: a program of the restricted subset.
            domain: abstract number domain (default constant
                propagation).
            k: call-string length (0 reproduces the monovariant
                analyzer).
            initial: assumptions for free variables, in the monovariant
                abstract domain (closures are converted to polyvariant
                closures with the fallback environment).
            check: validate that ``term`` is in the restricted subset.
            cache: `repro.perf` configuration (a `PerfConfig`, or
                ``None``/``True``/``False``); results are identical
                either way, only visit counts and wall time change.
        """
        if check:
            validate_anf(term)
        if k < 0:
            raise ValueError("context length k must be >= 0")
        self.term = term
        self.k = k
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        table: dict[Hashable, AbsVal] = {}
        initial = dict(initial) if initial else {}
        for name, value in initial.items():
            table[CtxVar(name, TOP_CONTEXT)] = _polyvariant_value(value)
        self.initial_store = self.intern_store(
            AbsStore(self.lattice, table)  # type: ignore[arg-type]
        )
        cl_top: set[Hashable] = set()
        for sub in subterms(term):
            if isinstance(sub, Lam):
                cl_top.add(PolyClo(sub.param, sub.body))
            elif isinstance(sub, Prim):
                cl_top.add(A_INC if sub.name == "add1" else A_DEC)
        for value in table.values():
            cl_top |= value.clos
        self.top_value = AbsVal(self.lattice.domain.top, frozenset(cl_top))
        self._active: dict = {}
        self._depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> "PolyvariantResult":
        """Analyze the program and return the polyvariant result."""
        try:
            with recursion_headroom():
                env: dict[str, Context] = {
                    name: TOP_CONTEXT for name in free_variables(self.term)
                }
                value, store = self.eval(
                    self.term, env, TOP_CONTEXT, self.initial_store
                )
        finally:
            self.finish_metrics()
        return PolyvariantResult(self, value, store)

    # ------------------------------------------------------------------
    # Abstract values
    # ------------------------------------------------------------------

    def eval_value(
        self,
        value: Term,
        env: Mapping[str, Context],
        store: AbsStore,
    ) -> AbsVal:
        """``phi_e`` with context-sensitive variable lookup."""
        lattice = self.lattice
        match value:
            case Num(n):
                return lattice.of_const(n)
            case Var(name):
                return self._lookup(name, env.get(name), store)
            case Prim("add1"):
                return lattice.of_clos(A_INC)
            case Prim("sub1"):
                return lattice.of_clos(A_DEC)
            case Lam(param, body):
                needed = free_variables(body) - {param}
                captured = tuple(
                    sorted(
                        (name, env[name]) for name in needed if name in env
                    )
                )
                return lattice.of_clos(PolyClo(param, body, captured))
        raise TypeError(f"not a syntactic value: {value!r}")

    def _lookup(
        self, name: str, ctx: Context | None, store: AbsStore
    ) -> AbsVal:
        """Read a variable: at its binding context when known, else the
        join over every context (the sound fallback)."""
        if ctx is not None:
            return store.get(CtxVar(name, ctx))  # type: ignore[arg-type]
        value = self.lattice.bottom
        for key, entry in store.items():
            if isinstance(key, CtxVar) and key.name == name:
                value = self.lattice.join(value, entry)
        return value

    # ------------------------------------------------------------------
    # The analyzer
    # ------------------------------------------------------------------

    def eval(
        self,
        term: Term,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        """Analyze ``term`` under binding environment ``env`` in
        context ``ctx``.

        With memoization off this is exactly `_eval`; with it on, the
        frame around `_eval` tracks the taint / footprint bookkeeping
        that keeps cached answers bit-identical to uncached ones (see
        `WorkBudgetMixin`)."""
        if self._memo is None:
            return self._eval(term, env, ctx, store)
        memo_key = (id(term), frozenset(env.items()), ctx, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(term, env, ctx, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            memo_key,
            start_seq,
            footprint,
            answer,
            cacheable=not is_value(term),
        )

    def _eval(
        self,
        term: Term,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        """The polyvariant Figure 4 clauses proper."""
        registered: list = []
        memo = self._memo
        self._depth += 1
        self.stats.max_depth = max(self.stats.max_depth, self._depth)
        env = dict(env)
        try:
            while True:
                self.tick(term)
                if is_value(term):
                    return self.eval_value(term, env, store), store
                if not isinstance(term, Let):
                    raise TypeError(
                        f"term is not in the restricted subset: {term!r}"
                    )
                key = (id(term), frozenset(env.items()), ctx, store)
                owner = self._active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, term)
                    return self.top_value, store
                if memo is not None:
                    hit = self.memo_probe(key, key, term)
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)

                name, rhs, body = term.name, term.rhs, term.body
                if is_value(rhs):
                    result = self.eval_value(rhs, env, store)
                elif isinstance(rhs, App):
                    fun = self.eval_value(rhs.fun, env, store)
                    arg = self.eval_value(rhs.arg, env, store)
                    result, store = self.apply(name, fun, arg, ctx, store)
                elif isinstance(rhs, If0):
                    result, store = self._branch(rhs, env, ctx, store)
                elif isinstance(rhs, PrimApp):
                    nums = [
                        self.eval_value(a, env, store).num for a in rhs.args
                    ]
                    result = self.lattice.of_num(
                        self.lattice.domain.binop(rhs.op, nums[0], nums[1])
                    )
                elif isinstance(rhs, Loop):
                    result = self.lattice.of_num(self.lattice.domain.iota)
                else:
                    raise TypeError(f"invalid let right-hand side: {rhs!r}")
                store = self.bind_join(store, CtxVar(name, ctx), result)
                env[name] = ctx
                term = body
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    def apply(
        self,
        site: str,
        fun: AbsVal,
        arg: AbsVal,
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        """Apply every abstract closure; user closures run in the
        context extended with this call site."""
        lattice = self.lattice
        domain = lattice.domain
        value = lattice.bottom
        out_store = store
        seen = 0
        for clo in fun.clos:
            if clo is A_INC:
                branch_value = lattice.of_num(domain.add1(arg.num))
                branch_store = store
            elif clo is A_DEC:
                branch_value = lattice.of_num(domain.sub1(arg.num))
                branch_store = store
            elif isinstance(clo, PolyClo):
                callee_ctx = _truncate(ctx + (site,), self.k)
                entry = self.bind_join(
                    store, CtxVar(clo.param, callee_ctx), arg
                )
                callee_env = dict(clo.env)
                for free in free_variables(clo.body):
                    if free not in callee_env and free != clo.param:
                        known = clo.lookup_ctx(free)
                        if known is not None:
                            callee_env[free] = known
                callee_env[clo.param] = callee_ctx
                branch_value, branch_store = self.eval(
                    clo.body, callee_env, callee_ctx, entry
                )
            else:
                raise TypeError(f"unexpected abstract closure {clo!r}")
            seen += 1
            if seen > 1:
                self.count_join("apply")
            value = lattice.join(value, branch_value)
            out_store = self.join_stores(out_store, branch_store)
        return value, out_store

    def _branch(
        self,
        rhs: If0,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        test = self.eval_value(rhs.test, env, store)
        domain = self.lattice.domain
        zero = domain.may_be_zero(test.num)
        nonzero = domain.may_be_nonzero(test.num) or bool(test.clos)
        if zero and not nonzero:
            return self.eval(rhs.then, env, ctx, store)
        if nonzero and not zero:
            return self.eval(rhs.orelse, env, ctx, store)
        if not zero and not nonzero:
            return self.lattice.bottom, store
        then_value, then_store = self.eval(rhs.then, env, ctx, store)
        else_value, else_store = self.eval(rhs.orelse, env, ctx, store)
        self.count_join("if0")
        return (
            self.lattice.join(then_value, else_value),
            self.join_stores(then_store, else_store),
        )


def _polyvariant_value(value: AbsVal) -> AbsVal:
    """Convert a monovariant abstract value (initial-store assumption)
    into the polyvariant domain."""
    clos = frozenset(
        PolyClo(c.param, c.body) if isinstance(c, AbsClo) else c
        for c in value.clos
    )
    return AbsVal(value.num, clos, value.konts)


def _monovariant_value(value: AbsVal) -> AbsVal:
    """Drop the context components of a polyvariant value."""
    clos = frozenset(
        AbsClo(c.param, c.body) if isinstance(c, PolyClo) else c
        for c in value.clos
    )
    return AbsVal(value.num, clos, value.konts)


class PolyvariantResult:
    """The result of a k-CFA analysis, with a per-context view and a
    collapsed (monovariant) view for comparison against Figure 4."""

    def __init__(
        self,
        analyzer: PolyvariantDirectAnalyzer,
        value: AbsVal,
        store: AbsStore,
    ) -> None:
        self.analyzer = analyzer
        self.lattice = analyzer.lattice
        self.stats = analyzer.stats
        self.value = _monovariant_value(value)
        self._store = store

    def contexts_of(self, name: str) -> dict[Context, AbsVal]:
        """Every context-specific value recorded for ``name``."""
        return {
            key.ctx: _monovariant_value(entry)
            for key, entry in self._store.items()
            if isinstance(key, CtxVar) and key.name == name
        }

    def value_of(self, name: str, ctx: Context | None = None) -> AbsVal:
        """The value of ``name`` in a specific context, or the join
        over every context when ``ctx`` is None."""
        if ctx is not None:
            return _monovariant_value(
                self._store.get(CtxVar(name, ctx))  # type: ignore[arg-type]
            )
        value = self.lattice.bottom
        for entry in self.contexts_of(name).values():
            value = self.lattice.join(value, entry)
        return value

    def constant_of(self, name: str, ctx: Context | None = None) -> int | None:
        """The proven integer constant for ``name``, if any."""
        num = self.value_of(name, ctx).num
        if isinstance(num, int) and not isinstance(num, bool):
            return num
        return None

    def collapse(self) -> AnalysisResult:
        """A monovariant `AnalysisResult` view (join over contexts),
        directly comparable with :func:`repro.analysis.analyze_direct`
        output."""
        from repro.analysis.common import AAnswer

        table: dict[str, AbsVal] = {}
        for key, entry in self._store.items():
            if not isinstance(key, CtxVar):
                continue
            mono = _monovariant_value(entry)
            existing = table.get(key.name)
            table[key.name] = (
                mono if existing is None else self.lattice.join(existing, mono)
            )
        collapsed = AbsStore(self.lattice, table)
        return AnalysisResult(
            self.analyzer.analyzer_name,
            AAnswer(self.value, collapsed),
            self.stats,
            self.lattice,
        )


def analyze_polyvariant(
    term: Term,
    domain: NumDomain | None = None,
    k: int = 1,
    initial: Mapping[str, AbsVal] | None = None,
    check: bool = True,
    max_visits: int | None = None,
    trace: Sink | None = None,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> PolyvariantResult:
    """Run the k-CFA direct data flow analysis on ``term``.

    ``engine="plan"`` runs the compiled-plan implementation (same
    judgments and statistics; see :mod:`repro.analysis.engine`);
    ``plan_tier`` selects its optimized or base instruction arrays.
    """
    if engine != "tree":
        from repro.analysis.engine import (
            PolyvariantPlanAnalyzer,
            check_engine,
        )

        check_engine(engine)
        return PolyvariantPlanAnalyzer(
            term, domain, k, initial, check, max_visits,
            trace=trace, metrics=metrics, cache=cache,
            plan_tier=plan_tier,
        ).run()
    return PolyvariantDirectAnalyzer(
        term, domain, k, initial, check, max_visits,
        trace=trace, metrics=metrics, cache=cache,
    ).run()
