"""The three data flow analyzers (paper Figures 4-6) and their
formal-relationship tooling (Section 5).

- :mod:`repro.analysis.direct` — the direct abstract collecting
  interpreter ``Me`` (Figure 4);
- :mod:`repro.analysis.semantic_cps` — the semantic-CPS abstract
  collecting interpreter ``Ce`` (Figure 5);
- :mod:`repro.analysis.syntactic_cps` — the syntactic-CPS abstract
  collecting interpreter ``Ms`` (Figure 6);
- :mod:`repro.analysis.pushdown` — the pushdown (CFA2-style) summary
  analyzer that matches calls with returns, eliminating Theorem 5.1's
  false returns without a CPS transform;
- :mod:`repro.analysis.delta` — the abstract ``δe`` map between the
  direct and CPS abstract domains;
- :mod:`repro.analysis.compare` — precision comparisons (Theorems
  5.1, 5.2, 5.4, 5.5);
- :mod:`repro.analysis.registry` — the canonical analyzer-name
  vocabulary shared by the CLI, the serve layer, the survey, and the
  lint engine.

All analyzers are parametric in the number domain (see
:mod:`repro.domains`) and detect loops exactly as Section 4.4
prescribes: on re-encountering a ``(term, store)`` pair on the active
derivation path they return the least precise value paired with the
current store.
"""

from repro.analysis.common import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    A_STOP,
    AAnswer,
    AbsClo,
    AbsCo,
    AbsCpsClo,
    AFrame,
    AnalysisError,
    AnalysisStats,
    BudgetExceeded,
    EngineUnsupported,
    NonComputableError,
    closures_of_term,
    cps_closures_of_term,
    konts_of_term,
)
from repro.analysis.compare import (
    Precision,
    compare_answers,
    compare_direct_to_cps,
    compare_pushdown_to_direct,
)
from repro.analysis.delta import delta_answer, delta_store, delta_value
from repro.analysis.direct import DirectAnalyzer, analyze_direct
from repro.analysis.engine import (
    ENGINES,
    DirectPlanAnalyzer,
    PolyvariantPlanAnalyzer,
    SemanticCpsPlanAnalyzer,
    SyntacticCpsPlanAnalyzer,
    check_engine,
)
from repro.analysis.polyvariant import (
    PolyvariantDirectAnalyzer,
    PolyvariantResult,
    analyze_polyvariant,
)
from repro.analysis.pushdown import PushdownAnalyzer, analyze_pushdown
from repro.analysis.registry import (
    ALIASES,
    ANALYZERS,
    COMPARISON_ANALYZERS,
    INTERPRETERS,
    LINT_ANALYZERS,
    PLAN_ANALYZERS,
    analyzer_choices,
    canonical_analyzer,
)
from repro.analysis.result import AnalysisResult
from repro.analysis.semantic_cps import SemanticCpsAnalyzer, analyze_semantic_cps
from repro.analysis.syntactic_cps import SyntacticCpsAnalyzer, analyze_syntactic_cps

__all__ = [
    "A_INC",
    "A_DEC",
    "A_INCK",
    "A_DECK",
    "A_STOP",
    "AAnswer",
    "AbsClo",
    "AbsCo",
    "AbsCpsClo",
    "AFrame",
    "AnalysisError",
    "AnalysisStats",
    "BudgetExceeded",
    "EngineUnsupported",
    "NonComputableError",
    "closures_of_term",
    "cps_closures_of_term",
    "konts_of_term",
    "Precision",
    "compare_answers",
    "compare_direct_to_cps",
    "compare_pushdown_to_direct",
    "delta_answer",
    "delta_store",
    "delta_value",
    "DirectAnalyzer",
    "analyze_direct",
    "PushdownAnalyzer",
    "analyze_pushdown",
    "ANALYZERS",
    "ALIASES",
    "COMPARISON_ANALYZERS",
    "INTERPRETERS",
    "LINT_ANALYZERS",
    "PLAN_ANALYZERS",
    "analyzer_choices",
    "canonical_analyzer",
    "PolyvariantDirectAnalyzer",
    "PolyvariantResult",
    "analyze_polyvariant",
    "SemanticCpsAnalyzer",
    "analyze_semantic_cps",
    "SyntacticCpsAnalyzer",
    "analyze_syntactic_cps",
    "AnalysisResult",
    "ENGINES",
    "check_engine",
    "DirectPlanAnalyzer",
    "SemanticCpsPlanAnalyzer",
    "SyntacticCpsPlanAnalyzer",
    "PolyvariantPlanAnalyzer",
]
