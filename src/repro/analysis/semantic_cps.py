"""The semantic-CPS abstract collecting interpreter ``Ce`` — Figure 5.

The analyzer abstracts the machine of Figure 2: the continuation is an
explicit stack of abstract frames ``(let (x []) M)`` (environments are
dropped by the 0CFA abstraction).  The crucial difference from the
direct analyzer is the return operation ``appre``: when a conditional
(or a call with several abstract closures) splits the analysis, the
continuation frames are re-analyzed **per path** and the results are
joined only at the very end — the *duplication* of Section 6.2, which
gains precision in non-distributive analyses (Theorem 5.4) at
worst-case exponential cost.

Loop detection (Section 4.4) keys on ``(M, sigma)`` only — not on the
continuation — and on a hit returns ``(⊤, CL⊤)`` *to the current
continuation* (the frames still get analyzed with the top value).

For the Section 6.2 ``loop`` construct the exact result is the
undecidable join ``⊔_i appre(κ, (i, ∅))``; the ``loop_mode``
constructor argument selects between raising `NonComputableError`
(default, the faithful reading), applying the continuation once to the
join of all naturals (sound but duplication-free), or unrolling a
finite prefix (demonstrative, unsound in general).
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.common import (
    A_DEC,
    A_INC,
    AAnswer,
    AbsClo,
    AFrame,
    AKont,
    AnalysisStats,
    NonComputableError,
    WorkBudgetMixin,
    abstract_value,
    check_loop_mode,
    closures_of_store,
    closures_of_term,
    recursion_headroom,
)
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import App, If0, Let, Loop, PrimApp, Term, is_value
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink


class SemanticCpsAnalyzer(WorkBudgetMixin):
    """Figure 5, with Section 4.4 loop detection."""

    analyzer_name = "semantic-cps"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        loop_mode: str = "reject",
        unroll_bound: int = 32,
        check: bool = True,
        cut_values: bool = False,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
    ) -> None:
        """Prepare an analysis of ``term``.

        Args:
            term: a program of the restricted subset.
            domain: abstract number domain (default constant propagation).
            initial: assumptions for free variables.
            loop_mode: treatment of the ``loop`` construct — 'reject'
                (raise), 'top', or 'unroll' (see module docstring).
            unroll_bound: iterations joined in 'unroll' mode.
            check: validate that ``term`` is in the restricted subset.
            cut_values: ablation switch — also register *value*
                judgments in the Section 4.4 active set (the literal
                reading of "the arguments (M, σ) have already been
                considered").  Termination does not need it, and it
                lets cuts deliver (⊤, CL⊤) straight into join frames,
                perturbing the Theorem 5.4 relationship on recursive
                programs; see DESIGN.md §3.5.
            trace: optional `repro.obs` sink receiving per-rule trace
                events (default: disabled, zero overhead).
            metrics: optional `repro.obs` metrics registry.
            cache: `repro.perf` configuration (a `PerfConfig`, or
                ``None``/``True``/``False``); results are identical
                either way, only visit counts and wall time change.
        """
        if check:
            validate_anf(term)
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.loop_mode = check_loop_mode(loop_mode)
        self.unroll_bound = unroll_bound
        self.cut_values = cut_values
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        self.initial_store = self.intern_store(AbsStore(self.lattice, initial))
        cl_top = closures_of_term(term) | closures_of_store(self.initial_store)
        self.top_value = AbsVal(self.lattice.domain.top, cl_top)
        self._active: dict[tuple[int, AbsStore], int] = {}
        self._depth = 0

    def run(self, kont: AKont = ()) -> AnalysisResult:
        """Analyze the program under continuation ``kont`` (default nil)."""
        try:
            with recursion_headroom():
                answer = self.eval(self.term, kont, self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name, answer, self.stats, self.lattice
        )

    # ------------------------------------------------------------------
    # phi_e (shared shape with the direct analyzer)
    # ------------------------------------------------------------------

    def eval_value(self, value: Term, store: AbsStore) -> AbsVal:
        """``phi_e``: the abstract value of a syntactic value."""
        return abstract_value(self.lattice, value, store)

    # ------------------------------------------------------------------
    # Ce
    # ------------------------------------------------------------------

    def eval(self, term: Term, kont: AKont, store: AbsStore) -> AAnswer:
        """``Ce``: analyze ``term`` with continuation ``kont``.

        With memoization off this is exactly `_eval`; with it on, the
        frame around `_eval` tracks the taint / footprint bookkeeping
        that keeps cached answers bit-identical to uncached ones (see
        `WorkBudgetMixin`).  Memo keys include the continuation: an
        answer here is the value delivered through every frame below.
        """
        if self._memo is None:
            return self._eval(term, kont, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(term, kont, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (id(term), kont, store),
            start_seq,
            footprint,
            answer,
            cacheable=not is_value(term),
        )

    def _eval(self, term: Term, kont: AKont, store: AbsStore) -> AAnswer:
        """The Figure 5 ``Ce`` clauses proper."""
        registered: list[tuple[int, AbsStore]] = []
        memo = self._memo
        self._depth += 1
        self.stats.max_depth = max(self.stats.max_depth, self._depth)
        try:
            while True:
                self.tick(term)
                if is_value(term) and not self.cut_values:
                    # Value judgments are not registered: any infinite
                    # derivation passes through let-headed judgments
                    # infinitely often, so cutting there suffices for
                    # termination — and cutting at values would deliver
                    # (⊤, CL⊤) straight into join frames, perturbing
                    # the Theorem 5.4 relationship on recursive
                    # programs (see DESIGN.md §3.5; the `cut_values`
                    # ablation switch restores the literal reading).
                    return self.ret(
                        kont, self.eval_value(term, store), store
                    )
                key = (id(term), store)
                owner = self._active.get(key)
                if owner is not None:
                    # Section 4.4: return (⊤, CL⊤) *to the continuation*.
                    self.note_loop_cut(owner, term)
                    return self.ret(kont, self.top_value, store)
                if memo is not None and not is_value(term):
                    hit = self.memo_probe((id(term), kont, store), key, term)
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                if is_value(term):
                    return self.ret(
                        kont, self.eval_value(term, store), store
                    )
                if not isinstance(term, Let):
                    raise TypeError(
                        f"term is not in the restricted subset: {term!r}"
                    )
                name, rhs, body = term.name, term.rhs, term.body
                if is_value(rhs):
                    store = self.bind_join(
                        store, name, self.eval_value(rhs, store)
                    )
                    term = body
                elif isinstance(rhs, App):
                    fun = self.eval_value(rhs.fun, store)
                    arg = self.eval_value(rhs.arg, store)
                    return self.apply(
                        fun, arg, (AFrame(name, body),) + kont, store
                    )
                elif isinstance(rhs, If0):
                    return self._branch(name, rhs, body, kont, store)
                elif isinstance(rhs, PrimApp):
                    nums = [
                        self.eval_value(a, store).num for a in rhs.args
                    ]
                    result = self.lattice.of_num(
                        self.lattice.domain.binop(rhs.op, nums[0], nums[1])
                    )
                    store = self.bind_join(store, name, result)
                    term = body
                elif isinstance(rhs, Loop):
                    return self._loop((AFrame(name, body),) + kont, store)
                else:
                    raise TypeError(f"invalid let right-hand side: {rhs!r}")
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    # ------------------------------------------------------------------
    # appk_e: abstract application with explicit continuation
    # ------------------------------------------------------------------

    def apply(
        self, fun: AbsVal, arg: AbsVal, kont: AKont, store: AbsStore
    ) -> AAnswer:
        """``appk_e``: apply every abstract closure, each returning
        through the (duplicated) continuation; join the answers."""
        lattice = self.lattice
        domain = lattice.domain
        answer: AAnswer | None = None
        for clo in fun.clos:
            if clo is A_INC:
                branch = self.ret(
                    kont, lattice.of_num(domain.add1(arg.num)), store
                )
            elif clo is A_DEC:
                branch = self.ret(
                    kont, lattice.of_num(domain.sub1(arg.num)), store
                )
            elif isinstance(clo, AbsClo):
                entry = self.bind_join(store, clo.param, arg)
                branch = self.eval(clo.body, kont, entry)
            else:
                raise TypeError(f"unexpected abstract closure {clo!r}")
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "apply")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    # ------------------------------------------------------------------
    # appr_e: the return operation
    # ------------------------------------------------------------------

    def ret(self, kont: AKont, value: AbsVal, store: AbsStore) -> AAnswer:
        """``appr_e``: return ``value`` through the continuation.

        This is where the CPS-style duplication lives: every caller
        that reaches a return with a different value re-analyzes the
        frames below."""
        if not kont:
            return AAnswer(value, store)
        self.stats.returns_analyzed += 1
        frame, rest = kont[0], kont[1:]
        return self.eval(
            frame.body, rest, self.bind_join(store, frame.name, value)
        )

    # ------------------------------------------------------------------
    # Conditionals and loops
    # ------------------------------------------------------------------

    def _branch(
        self, name: str, rhs: If0, body: Term, kont: AKont, store: AbsStore
    ) -> AAnswer:
        """The ``if0`` rules of Figure 5: the join frame is pushed and
        each feasible branch is analyzed *with its own copy of the
        continuation*; answers join only at the very end."""
        test = self.eval_value(rhs.test, store)
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test.num)
        nonzero_possible = domain.may_be_nonzero(test.num) or bool(test.clos)
        inner: AKont = (AFrame(name, body),) + kont
        if zero_possible and not nonzero_possible:
            return self.eval(rhs.then, inner, store)
        if nonzero_possible and not zero_possible:
            return self.eval(rhs.orelse, inner, store)
        if not zero_possible and not nonzero_possible:
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(rhs.then, inner, store)
        else_answer = self.eval(rhs.orelse, inner, store)
        return self._join(then_answer, else_answer, "if0")

    def _loop(self, kont: AKont, store: AbsStore) -> AAnswer:
        """Section 6.2: ``loop`` passes every natural number to the
        continuation; the exact join is not computable."""
        lattice = self.lattice
        domain = lattice.domain
        if self.loop_mode == "reject":
            raise NonComputableError(
                "semantic-CPS analysis of `loop` requires the join of "
                "appre(kont, (i, {})) over all naturals i, which is "
                "undecidable (paper Section 6.2); re-run with "
                "loop_mode='top' or loop_mode='unroll'"
            )
        if self.loop_mode == "top":
            return self.ret(kont, lattice.of_num(domain.iota), store)
        answer: AAnswer | None = None
        for i in range(self.unroll_bound + 1):
            branch = self.ret(kont, lattice.of_const(i), store)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "loop")
            )
        assert answer is not None
        return answer

    def _join(self, a: AAnswer, b: AAnswer, site: str = "join") -> AAnswer:
        self.count_join(site)
        return AAnswer(
            self.lattice.join(a.value, b.value),
            self.join_stores(a.store, b.store),
        )


def analyze_semantic_cps(
    term: Term,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    check: bool = True,
    max_visits: int | None = None,
    trace: Sink | None = None,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> AnalysisResult:
    """Run the semantic-CPS data flow analysis (Figure 5) on ``term``.

    ``engine="plan"`` runs the compiled-plan implementation (same
    judgments and statistics; see :mod:`repro.analysis.engine`);
    ``plan_tier`` selects its optimized or base instruction arrays.
    """
    if engine != "tree":
        from repro.analysis.engine import (
            SemanticCpsPlanAnalyzer,
            check_engine,
        )

        check_engine(engine)
        return SemanticCpsPlanAnalyzer(
            term, domain, initial, loop_mode, unroll_bound, check,
            max_visits=max_visits, trace=trace, metrics=metrics, cache=cache,
            plan_tier=plan_tier,
        ).run()
    return SemanticCpsAnalyzer(
        term, domain, initial, loop_mode, unroll_bound, check,
        max_visits=max_visits, trace=trace, metrics=metrics, cache=cache,
    ).run()
