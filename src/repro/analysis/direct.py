"""The direct abstract collecting interpreter ``Me`` — paper Figure 4.

The analyzer abstracts the direct interpreter of Figure 1 by the 0CFA
store abstraction of Section 4.1 (one location per variable, values
joined) and the number abstraction of Section 4.2 (parametric here —
the paper fixes constant propagation).  Termination follows Section
4.4: every judgment ``(M, sigma)`` on the active derivation path is
recorded; re-encountering one returns the least precise value
``(⊤, CL⊤)`` paired with the current store.

The distinguishing rule is the conditional with an unknown test: both
branches are analyzed in the *current* store and their answers are
**merged before the continuation is analyzed** — this single merge
point is where the direct analysis loses the per-path precision that
the CPS analyzers retain by duplication (Theorem 5.2), and gains the
single-control-stack precision the syntactic-CPS analysis loses to
false returns (Theorem 5.1).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.analysis.common import (
    A_DEC,
    A_INC,
    AAnswer,
    AbsClo,
    AnalysisStats,
    WorkBudgetMixin,
    abstract_value,
    closures_of_store,
    closures_of_term,
    recursion_headroom,
)
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import (
    App,
    If0,
    Let,
    Loop,
    PrimApp,
    Term,
    is_value,
)
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink


class DirectAnalyzer(WorkBudgetMixin):
    """Figure 4, as an object so the active set, statistics and
    program-wide ``CL⊤`` live across the recursion."""

    analyzer_name = "direct"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
    ) -> None:
        """Prepare an analysis of ``term``.

        Args:
            term: a program of the restricted (A-normal form) subset.
            domain: the abstract number domain (default: constant
                propagation, as in the paper).
            initial: assumptions for free variables, as a mapping from
                variable name to abstract value.
            check: validate that ``term`` is in the restricted subset.
            max_visits: optional work budget; exceeding it raises
                `BudgetExceeded`.
            trace: optional `repro.obs` sink receiving per-rule trace
                events (default: disabled, zero overhead).
            metrics: optional `repro.obs` metrics registry; the final
                stats are folded in under ``analysis.direct``.
            cache: `repro.perf` configuration (a `PerfConfig`, or
                ``None``/``True``/``False``); results are identical
                either way, only visit counts and wall time change.
        """
        if check:
            validate_anf(term)
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        self.initial_store = self.intern_store(AbsStore(self.lattice, initial))
        cl_top = closures_of_term(term) | closures_of_store(self.initial_store)
        #: The least precise value: ``(⊤, CL⊤)`` (Section 4.4).
        self.top_value = AbsVal(self.lattice.domain.top, cl_top)
        self._active: dict[tuple[int, AbsStore], int] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> AnalysisResult:
        """Analyze the program and return the result."""
        try:
            with recursion_headroom():
                answer = self.eval(self.term, self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name, answer, self.stats, self.lattice
        )

    # ------------------------------------------------------------------
    # phi_e: abstract syntactic values (Figure 4, auxiliary function)
    # ------------------------------------------------------------------

    def eval_value(self, value: Term, store: AbsStore) -> AbsVal:
        """``phi_e``: the abstract value of a syntactic value."""
        return abstract_value(self.lattice, value, store)

    # ------------------------------------------------------------------
    # Me: abstract evaluation of terms
    # ------------------------------------------------------------------

    def eval(self, term: Term, store: AbsStore) -> AAnswer:
        """``Me``: analyze ``term`` in ``store``.

        With memoization off this is exactly `_eval`; with it on, the
        frame around `_eval` tracks the taint / footprint bookkeeping
        that keeps cached answers bit-identical to uncached ones (see
        `WorkBudgetMixin`).
        """
        if self._memo is None:
            return self._eval(term, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(term, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (id(term), store),
            start_seq,
            footprint,
            answer,
            cacheable=not is_value(term),
        )

    def _eval(self, term: Term, store: AbsStore) -> AAnswer:
        """The Figure 4 ``Me`` clauses proper.

        Walks the let-spine iteratively; every intermediate judgment
        ``(M, sigma)`` is registered on the active path so the
        Section 4.4 loop detection fires exactly as in the paper.
        """
        registered: list[tuple[int, AbsStore]] = []
        memo = self._memo
        self._depth += 1
        self.stats.max_depth = max(self.stats.max_depth, self._depth)
        try:
            while True:
                self.tick(term)
                if is_value(term):
                    # Value judgments have no recursive premises, so
                    # they never need loop detection.
                    return AAnswer(self.eval_value(term, store), store)
                key = (id(term), store)
                owner = self._active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, term)
                    return AAnswer(self.top_value, store)
                if memo is not None:
                    hit = self.memo_probe(key, key, term)
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                if not isinstance(term, Let):
                    raise TypeError(
                        f"term is not in the restricted subset: {term!r}"
                    )
                name, rhs, body = term.name, term.rhs, term.body
                if is_value(rhs):
                    result = self.eval_value(rhs, store)
                elif isinstance(rhs, App):
                    fun = self.eval_value(rhs.fun, store)
                    arg = self.eval_value(rhs.arg, store)
                    answer = self.apply(fun, arg, store)
                    result, store = answer.value, answer.store
                elif isinstance(rhs, If0):
                    answer = self._branch(rhs, store)
                    result, store = answer.value, answer.store
                elif isinstance(rhs, PrimApp):
                    result = self._primop(rhs, store)
                elif isinstance(rhs, Loop):
                    # Section 6.2: the exact collecting semantics of
                    # `loop` is {0, 1, 2, ...}; its direct abstraction
                    # is the join of all naturals.
                    result = self.lattice.of_num(self.lattice.domain.iota)
                else:
                    raise TypeError(f"invalid let right-hand side: {rhs!r}")
                store = self.bind_join(store, name, result)
                term = body
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    # ------------------------------------------------------------------
    # app_e: abstract application (Figure 4)
    # ------------------------------------------------------------------

    def apply(self, fun: AbsVal, arg: AbsVal, store: AbsStore) -> AAnswer:
        """``app_e``: apply every abstract closure in the function
        position and join the resulting answers."""
        lattice = self.lattice
        domain = lattice.domain
        value = lattice.bottom
        out_store = store
        seen = 0
        for clo in fun.clos:
            if clo is A_INC:
                branch_value = lattice.of_num(domain.add1(arg.num))
                branch_store = store
            elif clo is A_DEC:
                branch_value = lattice.of_num(domain.sub1(arg.num))
                branch_store = store
            elif isinstance(clo, AbsClo):
                entry = self.bind_join(store, clo.param, arg)
                answer = self.eval(clo.body, entry)
                branch_value, branch_store = answer.value, answer.store
            else:
                # CPS-only closures cannot appear in a direct analysis.
                raise TypeError(f"unexpected abstract closure {clo!r}")
            seen += 1
            if seen > 1:
                self.count_join("apply")
            value = lattice.join(value, branch_value)
            out_store = self.join_stores(out_store, branch_store)
        return AAnswer(value, out_store)

    # ------------------------------------------------------------------
    # Conditionals and operators
    # ------------------------------------------------------------------

    def _branch(self, rhs: If0, store: AbsStore) -> AAnswer:
        """The two ``if0`` rules of Figure 4: a definite test selects
        one branch; an indefinite test analyzes both **and merges the
        answers before the continuation**."""
        test = self.eval_value(rhs.test, store)
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test.num)
        nonzero_possible = domain.may_be_nonzero(test.num) or bool(test.clos)
        if zero_possible and not nonzero_possible:
            return self.eval(rhs.then, store)
        if nonzero_possible and not zero_possible:
            return self.eval(rhs.orelse, store)
        if not zero_possible and not nonzero_possible:
            # No value reaches the test: the conditional is dead code.
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(rhs.then, store)
        else_answer = self.eval(rhs.orelse, store)
        self.count_join("if0")
        return AAnswer(
            self.lattice.join(then_answer.value, else_answer.value),
            self.join_stores(then_answer.store, else_answer.store),
        )

    def _primop(self, rhs: PrimApp, store: AbsStore) -> AbsVal:
        """Abstract a second-class operator application."""
        domain = self.lattice.domain
        nums: list[Hashable] = [
            self.eval_value(arg, store).num for arg in rhs.args
        ]
        return self.lattice.of_num(domain.binop(rhs.op, nums[0], nums[1]))


def analyze_direct(
    term: Term,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    check: bool = True,
    max_visits: int | None = None,
    trace: Sink | None = None,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> AnalysisResult:
    """Run the direct data flow analysis (Figure 4) on ``term``.

    ``engine`` selects the implementation: ``"tree"`` (default)
    interprets the AST, ``"plan"`` runs the compiled instruction
    arrays of :mod:`repro.machine.absplan` — same judgments, same
    answer, same statistics (differentially tested).  ``plan_tier``
    selects the peephole-optimized (``"opt"``, default) or raw
    compiler-output (``"base"``) instruction arrays; both are
    bit-identical in answers and statistics.
    """
    if engine != "tree":
        from repro.analysis.engine import DirectPlanAnalyzer, check_engine

        check_engine(engine)
        return DirectPlanAnalyzer(
            term,
            domain,
            initial,
            check,
            max_visits,
            trace=trace,
            metrics=metrics,
            cache=cache,
            plan_tier=plan_tier,
        ).run()
    return DirectAnalyzer(
        term,
        domain,
        initial,
        check,
        max_visits,
        trace=trace,
        metrics=metrics,
        cache=cache,
    ).run()
