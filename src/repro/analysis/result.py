"""User-facing analysis results.

Wraps the raw abstract answer with query helpers: per-variable
constants, closure sets, reachability, and the call-graph hook used by
:mod:`repro.cfg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.analysis.common import AAnswer, AnalysisStats
from repro.domains.absval import AbsVal, Lattice


@dataclass(frozen=True)
class AnalysisResult:
    """The outcome of running one of the three analyzers.

    Attributes:
        analyzer: which analyzer produced this ('direct',
            'semantic-cps', or 'syntactic-cps').
        answer: the abstract answer (final value and store).
        stats: instrumentation counters.
        lattice: the lattice the values live in.
    """

    analyzer: str
    answer: AAnswer
    stats: AnalysisStats
    lattice: Lattice

    @property
    def value(self) -> AbsVal:
        """The abstract value of the whole program."""
        return self.answer.value

    @property
    def store(self):
        """The final abstract store."""
        return self.answer.store

    def value_of(self, name: str) -> AbsVal:
        """The abstract value recorded for variable ``name``."""
        return self.answer.store.get(name)

    def num_of(self, name: str) -> Hashable:
        """The abstract number recorded for ``name``."""
        return self.value_of(name).num

    def constant_of(self, name: str) -> int | None:
        """The proven integer constant for ``name``, if any.

        Only meaningful for domains whose elements embed integers
        (constant propagation); returns None for ``⊥``/``⊤`` or
        non-integer domain elements.
        """
        num = self.num_of(name)
        if isinstance(num, int) and not isinstance(num, bool):
            return num
        return None

    def closures_of(self, name: str) -> frozenset:
        """The abstract closures that may flow to ``name``."""
        return self.value_of(name).clos

    def konts_of(self, name: str) -> frozenset:
        """The abstract continuations that may flow to ``name``
        (syntactic-CPS analyses only)."""
        return self.value_of(name).konts

    def is_reachable(self, name: str) -> bool:
        """True when some value reaches the binding of ``name``."""
        return not self.lattice.is_bottom(self.value_of(name))

    def variables(self) -> Iterator[str]:
        """Variables with a non-bottom entry in the final store."""
        return self.answer.store.variables()

    def to_dict(self) -> dict:
        """A JSON-serializable view of the result.

        Abstract numbers are rendered with ``repr`` (domain elements
        print as ``⊥``/``⊤``/constants), closures and continuations by
        their display labels.  Intended for tooling (the CLI's
        ``--json`` flag); the structured objects remain the API for
        programmatic use.
        """

        def value_view(value: AbsVal) -> dict:
            view: dict = {
                "num": repr(value.num),
                "closures": sorted(str(c) for c in value.clos),
            }
            if value.konts:
                view["continuations"] = sorted(
                    str(k) for k in value.konts
                )
            return view

        return {
            "analyzer": self.analyzer,
            "value": value_view(self.value),
            "store": {
                name: value_view(entry)
                for name, entry in sorted(self.answer.store.items())
            },
            "stats": self.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnalysisResult {self.analyzer} value={self.value!r} "
            f"visits={self.stats.visits}>"
        )
