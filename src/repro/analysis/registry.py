"""The canonical analyzer-name registry.

One vocabulary for every layer that names an analyzer — CLI argument
choices, serve enum validation (and hence cache keys), the survey, the
lint engine, and the incremental driver.  Canonical spellings are the
serve layer's: ``direct``, ``semantic-cps``, ``syntactic-cps``,
``polyvariant``, and ``pushdown``.  The historical short spellings
``semantic``/``syntactic`` (the interpreter-flag vocabulary the CLI
used before the registry existed) are accepted everywhere as aliases
and *fold to the canonical name* before a request spec is hashed, so
``{"analyzer": "semantic"}`` and ``{"analyzer": "semantic-cps"}``
share one serve cache entry.
"""

from __future__ import annotations

#: Every analyzer, canonically spelled.  ``pushdown`` is the
#: CFA2-style summary analyzer (no plan-engine implementation);
#: ``polyvariant`` is the k-CFA ablation.
ANALYZERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
    "polyvariant",
    "pushdown",
)

#: The analyzers `repro.api.run_comparison` runs side by side (all
#: monovariant analyzers of the source program or its CPS image; the
#: polyvariant analyzer is excluded because its results are keyed by
#: call-string contexts and need collapsing before comparison).
COMPARISON_ANALYZERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
    "pushdown",
)

#: The analyzers that can power the semantic lint rules (and hence the
#: precision scoreboard's columns).
LINT_ANALYZERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
    "pushdown",
)

#: Analyzers with a compiled-plan (``engine="plan"``) implementation.
#: The pushdown analyzer is tree-only: asking for its plan engine
#: raises `repro.analysis.common.EngineUnsupported` (the serve layer's
#: ``engine_unsupported`` error), never a crash.
PLAN_ANALYZERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
    "polyvariant",
)

#: The three concrete interpreters (paper Figures 1-3), canonically
#: spelled like their abstract counterparts.
INTERPRETERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
)

#: Old spellings, still accepted everywhere an analyzer or interpreter
#: is named.
ALIASES: dict[str, str] = {
    "semantic": "semantic-cps",
    "syntactic": "syntactic-cps",
}


def canonical_analyzer(
    name: str, allowed: tuple[str, ...] = ANALYZERS
) -> str:
    """Resolve ``name`` (canonical or alias) to its canonical spelling.

    Raises ``ValueError`` when the resolved name is not in
    ``allowed`` — the caller's vocabulary subset (e.g. only the lint
    analyzers).
    """
    resolved = ALIASES.get(name, name)
    if resolved not in allowed:
        raise ValueError(
            f"unknown analyzer {name!r}; expected one of {allowed} "
            f"(aliases: {sorted(ALIASES)})"
        )
    return resolved


def analyzer_choices(allowed: tuple[str, ...] = ANALYZERS) -> tuple[str, ...]:
    """The argparse ``choices`` tuple for ``allowed``: canonical names
    first, then the aliases that resolve into the set."""
    aliases = tuple(
        alias
        for alias, target in sorted(ALIASES.items())
        if target in allowed
    )
    return tuple(allowed) + aliases
