"""Precision comparisons between analysis results (paper Section 5).

The lattice order *is* the precision order ("is more precise than"
coincides with ⊑, Section 4.1): lower values describe fewer concrete
behaviours.  Comparing two analyses of the same program means
comparing their answers — the final value and, per variable, the final
store entries.

Theorem 5.1 and 5.2 together say the direct and syntactic-CPS results
are *incomparable* in general, so the comparison returns a four-way
`Precision` verdict.  When a direct answer is compared against a
syntactic-CPS answer it must first be transported along ``δe`` and the
CPS store's continuation-variable entries ignored — exactly the shape
of the theorem statements ("for each variable in the domain of σ1").
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.analysis.common import AAnswer
from repro.analysis.delta import delta_answer
from repro.analysis.result import AnalysisResult
from repro.domains.absval import Lattice


class Precision(Enum):
    """Outcome of comparing a left against a right analysis answer."""

    #: Identical information.
    EQUAL = "equal"
    #: The left answer is strictly more precise (strictly below).
    LEFT_MORE_PRECISE = "left-more-precise"
    #: The right answer is strictly more precise.
    RIGHT_MORE_PRECISE = "right-more-precise"
    #: Neither answer is uniformly at least as precise as the other.
    INCOMPARABLE = "incomparable"


def answer_leq(
    left: AAnswer,
    right: AAnswer,
    lattice: Lattice,
    names: Iterable[str] | None = None,
) -> bool:
    """True when ``left`` is at least as precise as ``right``.

    Compares the answer values and the store entries for ``names``
    (default: every variable either store mentions).
    """
    if not lattice.leq(left.value, right.value):
        return False
    if names is None:
        names = set(left.store.variables()) | set(right.store.variables())
    for name in names:
        if not lattice.leq(left.store.get(name), right.store.get(name)):
            return False
    return True


def compare_answers(
    left: AAnswer,
    right: AAnswer,
    lattice: Lattice,
    names: Iterable[str] | None = None,
) -> Precision:
    """Four-way precision verdict between two answers."""
    if names is not None:
        names = list(names)
    left_leq = answer_leq(left, right, lattice, names)
    right_leq = answer_leq(right, left, lattice, names)
    if left_leq and right_leq:
        return Precision.EQUAL
    if left_leq:
        return Precision.LEFT_MORE_PRECISE
    if right_leq:
        return Precision.RIGHT_MORE_PRECISE
    return Precision.INCOMPARABLE


def source_variables(answer: AAnswer) -> set[str]:
    """The store's source variables (continuation variables, which use
    the ``k/`` namespace, are excluded)."""
    return {
        name for name in answer.store.variables() if not name.startswith("k/")
    }


def compare_direct_to_cps(
    direct: AnalysisResult, cps: AnalysisResult
) -> Precision:
    """Compare a direct analysis against a syntactic-CPS analysis of
    the transformed program (the Theorem 5.1/5.2 comparison).

    The direct answer is transported along ``δe``; the comparison
    ranges over the source variables both analyses know about.
    """
    transported = delta_answer(direct.answer)
    names = source_variables(transported) | source_variables(cps.answer)
    return compare_answers(transported, cps.answer, direct.lattice, names)


def compare_semantic_to_direct(
    semantic: AnalysisResult, direct: AnalysisResult
) -> Precision:
    """Compare a semantic-CPS analysis against a direct analysis of
    the same source program (the Theorem 5.4 comparison; both answers
    live in the same abstract domain)."""
    return compare_answers(
        semantic.answer, direct.answer, direct.lattice
    )


def compare_pushdown_to_direct(
    pushdown: AnalysisResult, direct: AnalysisResult
) -> Precision:
    """Compare a pushdown analysis against a direct analysis of the
    same source program.

    Both answers live in the same abstract domain over the same
    variable space, so the comparison is direct.  The pushdown
    analyzer's call/return matching makes it at least as precise on
    every program — never ``RIGHT_MORE_PRECISE`` — and strictly more
    precise wherever the direct analysis suffers a false return
    through its merged store locations or a Section 4.4 ``(⊤, CL⊤)``
    cut (differentially enforced by the pushdown test suite).
    """
    return compare_answers(
        pushdown.answer, direct.answer, direct.lattice
    )


def compare_semantic_to_syntactic(
    semantic: AnalysisResult, syntactic: AnalysisResult
) -> Precision:
    """Compare a semantic-CPS analysis of M against a syntactic-CPS
    analysis of F_k[M] (the Theorem 5.5 comparison), along ``δe``."""
    transported = delta_answer(semantic.answer)
    names = source_variables(transported) | source_variables(
        syntactic.answer
    )
    return compare_answers(
        transported, syntactic.answer, semantic.lattice, names
    )
