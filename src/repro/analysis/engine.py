"""Compiled (plan) engines for the four analyzers.

Each engine here replays its tree analyzer's derivation exactly —
same rule order, same judgment keys (pc ↔ ``id(term)``, slot-store ↔
name-store), same loop cuts, joins, widenings and visit counts — but
over the flat instruction arrays of :mod:`repro.machine.absplan` and
the tuple-backed `SlotStore`:

- no ``isinstance`` dispatch per visit: one integer opcode switch;
- no name hashing in the store: integer slots into a tuple;
- no per-visit ``AbsVal`` construction for literals: a constant pool
  materialized once per run;
- Section 4.4 loop detection keys on ``(pc, store)`` with slot-store
  equality, which is the same relation as ``(id(term), sigma)`` on the
  name-keyed store.

Select an engine with ``engine="plan"`` on the ``analyze_*`` entry
points (``"tree"``, the default, is the reference implementation; the
differential suite in ``tests/analysis/test_engine_differential.py``
pins bit-identical answers and statistics between the two).

The polyvariant engine keeps the `AbsStore` keyed by ``(variable,
context)`` pairs — its location space is not dense — but still gains
the flat dispatch, precomputed free-variable sets, and interned
constants.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.analysis.common import (
    A_DEC,
    A_INC,
    A_STOP,
    AAnswer,
    AbsClo,
    AnalysisStats,
    NonComputableError,
    WorkBudgetMixin,
    check_loop_mode,
    closures_of_store,
    konts_of_store,
    recursion_headroom,
)
from repro.analysis.polyvariant import (
    TOP_CONTEXT,
    Context,
    CtxVar,
    PolyClo,
    PolyvariantResult,
    _polyvariant_value,
    _truncate,
)
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.cps.transform import TOP_KVAR
from repro.cps.validate import validate_cps
from repro.cps.ast import CTerm
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore, SlotStore
from repro.lang.ast import Term
from repro.machine.absplan import (
    OP_APP,
    OP_BIND,
    OP_BIND_C,
    OP_BIND_S,
    OP_IF,
    OP_IF_S,
    OP_LOOP,
    OP_PRIM,
    OP_TAIL,
    COP_BIND,
    COP_BIND_C,
    COP_BIND_S,
    COP_CAPP,
    COP_CIF,
    COP_CIF_S,
    COP_CLOOP,
    COP_KRET,
    COP_PRIM,
    PLAN_CACHE,
    PLAN_TIERS,
    PlanCache,
    check_plan_tier,
    compile_anf_plan,
    compile_cps_plan,
    extend_anf_plan,
    extend_cps_plan,
    optimize_anf_plan,
    optimize_cps_plan,
)
from repro.obs.events import StoreWidened
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink

#: The available analysis engines.  ``"tree"`` interprets the AST (the
#: reference semantics, Figures 4-6 verbatim); ``"plan"`` runs the
#: compiled instruction arrays of `repro.machine.absplan`.
ENGINES = ("tree", "plan")


def check_engine(engine: str) -> str:
    """Validate an engine name."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def _anf_plan_for(term: Term, plan_cache, plan_tier: str):
    """The `AnfPlan` for ``term`` at ``plan_tier``, through the cache
    (and its persistent tier) when one is given."""
    check_plan_tier(plan_tier)
    if plan_cache is not None:
        return plan_cache.anf_plan(term, plan_tier)
    plan = compile_anf_plan(term)
    return optimize_anf_plan(plan) if plan_tier == "opt" else plan


def _cps_plan_for(term: CTerm, plan_cache, plan_tier: str):
    """The `CpsPlan` for ``term`` at ``plan_tier``."""
    check_plan_tier(plan_tier)
    if plan_cache is not None:
        return plan_cache.cps_plan(term, plan_tier)
    plan = compile_cps_plan(term)
    return optimize_cps_plan(plan) if plan_tier == "opt" else plan


# ----------------------------------------------------------------------
# Constant-pool materialization (descriptors → lattice values)
# ----------------------------------------------------------------------


def _materialize_anf(consts, lattice: Lattice, records=None) -> tuple:
    from repro.analysis.common import A_DEC, A_INC, AbsClo

    out = []
    for index, desc in enumerate(consts):
        kind = desc[0]
        if kind == "num":
            out.append(lattice.of_const(desc[1]))
        elif kind == "prim":
            out.append(
                lattice.of_clos(A_INC if desc[1] == "add1" else A_DEC)
            )
        else:  # "clo"
            # Optimized plans carry the interned closure record, so
            # the runtime value shares identity with the entry-table
            # key; extensions fall back to building it here.
            record = records[index] if records is not None else None
            if record is not None:
                out.append(lattice.of_clos(record[0]))
            else:
                lam = desc[1]
                out.append(lattice.of_clos(AbsClo(lam.param, lam.body)))
    return tuple(out)


def _materialize_cps(consts, lattice: Lattice, records=None) -> tuple:
    from repro.analysis.common import A_DECK, A_INCK, AbsCo, AbsCpsClo

    out = []
    for index, desc in enumerate(consts):
        kind = desc[0]
        if kind == "num":
            out.append(lattice.of_const(desc[1]))
        elif kind == "cps_prim":
            out.append(
                lattice.of_clos(A_INCK if desc[1] == "add1k" else A_DECK)
            )
        elif kind == "cps_clo":
            record = records[index] if records is not None else None
            if record is not None:
                out.append(lattice.of_clos(record))
            else:
                lam = desc[1]
                out.append(
                    lattice.of_clos(
                        AbsCpsClo(lam.param, lam.kparam, lam.body)
                    )
                )
        else:  # "konts"
            record = records[index] if records is not None else None
            if record is not None:
                out.append(lattice.of_konts(record))
            else:
                klam = desc[1]
                out.append(lattice.of_konts(AbsCo(klam.param, klam.body)))
    return tuple(out)


def _materialize_poly(consts, lattice: Lattice, records=None) -> tuple:
    """Polyvariant pool: numerals and primitives are plain values;
    lambdas stay descriptors ``(param, body, needed)`` because their
    captured environment is only known at closure-creation time.
    Optimized plans precompute the ``needed`` capture lists."""
    from repro.lang.syntax import free_variables

    out = []
    for index, desc in enumerate(consts):
        kind = desc[0]
        if kind == "num":
            out.append(lattice.of_const(desc[1]))
        elif kind == "prim":
            out.append(
                lattice.of_clos(A_INC if desc[1] == "add1" else A_DEC)
            )
        else:  # "clo"
            lam = desc[1]
            record = records[index] if records is not None else None
            if record is not None:
                out.append((lam.param, lam.body, record[1]))
            else:
                needed = tuple(
                    sorted(free_variables(lam.body) - {lam.param})
                )
                out.append((lam.param, lam.body, needed))
    return tuple(out)


# ----------------------------------------------------------------------
# Shared slot-store plumbing
# ----------------------------------------------------------------------


class _SlotEngine(WorkBudgetMixin):
    """Mixin for engines whose store is a `SlotStore`."""

    _slot_names: tuple[str, ...]
    _cvals: tuple

    def _ref(self, ref: int, store: SlotStore) -> AbsVal:
        """Resolve a value reference: slot read or constant."""
        if ref >= 0:
            return store.vals[ref]
        return self._cvals[-1 - ref]

    def bind_slot(
        self, store: SlotStore, slot: int, value: AbsVal
    ) -> SlotStore:
        """`WorkBudgetMixin.bind_join` specialized to slots, keeping
        the widening/store-size bookkeeping and trace labels of the
        tree analyzers."""
        before = store.vals[slot]
        interner = self._interner
        if interner is None:
            after = store.joined_bind(slot, value)
        else:
            after = store.joined_bind(slot, value, intern=interner.value)
            if after is not store:
                after = interner.store(after)
        size = after.size
        if size > self.stats.max_store_size:
            self.stats.max_store_size = size
        if after is not store and not self.lattice.is_bottom(before):
            self.stats.widenings += 1
            if self._emit is not None:
                self._emit(
                    StoreWidened(
                        self.analyzer_name, self._slot_names[slot], size
                    )
                )
        return after

    def _slot_map(
        self, slot_names, slot_of, initial_abs: AbsStore
    ) -> tuple[tuple[str, ...], dict[str, int]]:
        """Extend the compiled slot map with initial-store names the
        program itself never mentions."""
        missing = [
            name for name, _ in initial_abs.items() if name not in slot_of
        ]
        if missing:
            slot_of = dict(slot_of)
            names = list(slot_names)
            for name in missing:
                slot_of[name] = len(names)
                names.append(name)
            slot_names = tuple(names)
        return tuple(slot_names), slot_of

    def _initial_slot_store(
        self, initial_abs: AbsStore, slot_names, slot_of
    ) -> SlotStore:
        lattice = self.lattice
        vals = [lattice.bottom] * len(slot_names)
        size = 0
        for name, value in initial_abs.items():
            vals[slot_of[name]] = value
            size += 1
        return SlotStore(lattice, tuple(vals), size)

    def _answer_out(self, answer: AAnswer) -> AAnswer:
        """Convert a slot-store answer back to the name-keyed form the
        rest of the repo (results, reports, serve) consumes."""
        return AAnswer(
            answer.value, answer.store.to_abs_store(self._slot_names)
        )


# ----------------------------------------------------------------------
# Direct engine (Figure 4 over plans)
# ----------------------------------------------------------------------


class DirectPlanAnalyzer(_SlotEngine):
    """The Figure 4 judgments, replayed over a compiled `AnfPlan`."""

    analyzer_name = "direct"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
        plan_cache: PlanCache | None = PLAN_CACHE,
        plan_tier: str = "opt",
    ) -> None:
        if check:
            validate_anf(term)
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        plan = _anf_plan_for(term, plan_cache, plan_tier)
        initial_abs = AbsStore(self.lattice, initial)
        ext_closures = [
            clo
            for clo in closures_of_store(initial_abs)
            if isinstance(clo, AbsClo) and clo not in plan.entries
        ]
        src = extend_anf_plan(plan, ext_closures) if ext_closures else plan
        self._code = src.code
        self._terms = src.terms
        self._entries = src.entries
        self._entry_pc = plan.entry_pc
        self._slot_names, slot_of = self._slot_map(
            src.slot_names, src.slot_of, initial_abs
        )
        self._cvals = _materialize_anf(
            src.consts, self.lattice, getattr(src, "const_records", None)
        )
        self._entry_cache: dict[int, tuple] = {}
        self.initial_store = self.intern_store(
            self._initial_slot_store(initial_abs, self._slot_names, slot_of)
        )
        cl_top = plan.cl_top | closures_of_store(initial_abs)
        self.top_value = AbsVal(self.lattice.domain.top, cl_top)
        self._active: dict = {}
        self._depth = 0

    def run(self) -> AnalysisResult:
        """Analyze the program and return the result."""
        try:
            with recursion_headroom():
                answer = self.eval(self._entry_pc, self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name,
            self._answer_out(answer),
            self.stats,
            self.lattice,
        )

    def _entry_of(self, clo) -> tuple[int, int]:
        cache = self._entry_cache
        hit = cache.get(id(clo))
        if hit is not None and hit[0] is clo:
            return hit[1]
        entry = self._entries.get(clo)
        if entry is None:
            raise TypeError(f"unexpected abstract closure {clo!r}")
        cache[id(clo)] = (clo, entry)
        return entry

    def eval(self, pc: int, store: SlotStore) -> AAnswer:
        if self._memo is None:
            return self._eval(pc, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(pc, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (pc, store),
            start_seq,
            footprint,
            answer,
            cacheable=self._code[pc][0] != OP_TAIL,
        )

    def _eval(self, pc: int, store: SlotStore) -> AAnswer:
        registered: list = []
        memo = self._memo
        code = self._code
        terms = self._terms
        cvals = self._cvals
        active = self._active
        tick = self.tick
        bind_slot = self.bind_slot
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        try:
            while True:
                instr = code[pc]
                op = instr[0]
                tick(terms[pc])
                if op == OP_TAIL:
                    ref = instr[1]
                    return AAnswer(
                        store.vals[ref] if ref >= 0 else cvals[-1 - ref],
                        store,
                    )
                key = (pc, store)
                owner = active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, terms[pc])
                    return AAnswer(self.top_value, store)
                if memo is not None:
                    hit = self.memo_probe(key, key, terms[pc])
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                if op == OP_BIND_S:
                    result = store.vals[instr[2]]
                    next_pc = instr[3]
                elif op == OP_BIND_C:
                    result = cvals[instr[2]]
                    next_pc = instr[3]
                elif op == OP_BIND:
                    ref = instr[2]
                    result = (
                        store.vals[ref] if ref >= 0 else cvals[-1 - ref]
                    )
                    next_pc = instr[3]
                elif op == OP_APP:
                    ref = instr[2]
                    fun = store.vals[ref] if ref >= 0 else cvals[-1 - ref]
                    ref = instr[3]
                    arg = store.vals[ref] if ref >= 0 else cvals[-1 - ref]
                    answer = self.apply(fun, arg, store)
                    result, store = answer.value, answer.store
                    next_pc = instr[4]
                elif op == OP_IF_S:
                    answer = self._branch(
                        instr, store.vals[instr[2]], store
                    )
                    result, store = answer.value, answer.store
                    next_pc = instr[5]
                elif op == OP_IF:
                    answer = self._branch(
                        instr, self._ref(instr[2], store), store
                    )
                    result, store = answer.value, answer.store
                    next_pc = instr[5]
                elif op == OP_PRIM:
                    lattice = self.lattice
                    result = lattice.of_num(
                        lattice.domain.binop(
                            instr[2],
                            self._ref(instr[3], store).num,
                            self._ref(instr[4], store).num,
                        )
                    )
                    next_pc = instr[5]
                else:  # OP_LOOP
                    result = self.lattice.of_num(self.lattice.domain.iota)
                    next_pc = instr[2]
                store = bind_slot(store, instr[1], result)
                pc = next_pc
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    def apply(self, fun: AbsVal, arg: AbsVal, store: SlotStore) -> AAnswer:
        lattice = self.lattice
        domain = lattice.domain
        value = lattice.bottom
        out_store = store
        seen = 0
        for clo in fun.clos:
            if clo is A_INC:
                branch_value = lattice.of_num(domain.add1(arg.num))
                branch_store = store
            elif clo is A_DEC:
                branch_value = lattice.of_num(domain.sub1(arg.num))
                branch_store = store
            else:
                param_slot, body_pc = self._entry_of(clo)
                entry = self.bind_slot(store, param_slot, arg)
                answer = self.eval(body_pc, entry)
                branch_value, branch_store = answer.value, answer.store
            seen += 1
            if seen > 1:
                self.count_join("apply")
            value = lattice.join(value, branch_value)
            out_store = self.join_stores(out_store, branch_store)
        return AAnswer(value, out_store)

    def _branch(self, instr, test: AbsVal, store: SlotStore) -> AAnswer:
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test.num)
        nonzero_possible = domain.may_be_nonzero(test.num) or bool(test.clos)
        if zero_possible and not nonzero_possible:
            return self.eval(instr[3], store)
        if nonzero_possible and not zero_possible:
            return self.eval(instr[4], store)
        if not zero_possible and not nonzero_possible:
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(instr[3], store)
        else_answer = self.eval(instr[4], store)
        self.count_join("if0")
        return AAnswer(
            self.lattice.join(then_answer.value, else_answer.value),
            self.join_stores(then_answer.store, else_answer.store),
        )


# ----------------------------------------------------------------------
# Semantic-CPS engine (Figure 5 over plans)
# ----------------------------------------------------------------------


class SemanticCpsPlanAnalyzer(_SlotEngine):
    """The Figure 5 judgments over a compiled `AnfPlan`.

    Continuations are tuples of ``(dst_slot, next_pc)`` frames — the
    compiled image of the tree analyzer's ``AFrame`` stacks.
    """

    analyzer_name = "semantic-cps"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        loop_mode: str = "reject",
        unroll_bound: int = 32,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
        plan_cache: PlanCache | None = PLAN_CACHE,
        plan_tier: str = "opt",
    ) -> None:
        if check:
            validate_anf(term)
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.loop_mode = check_loop_mode(loop_mode)
        self.unroll_bound = unroll_bound
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        plan = _anf_plan_for(term, plan_cache, plan_tier)
        initial_abs = AbsStore(self.lattice, initial)
        ext_closures = [
            clo
            for clo in closures_of_store(initial_abs)
            if isinstance(clo, AbsClo) and clo not in plan.entries
        ]
        src = extend_anf_plan(plan, ext_closures) if ext_closures else plan
        self._code = src.code
        self._terms = src.terms
        self._entries = src.entries
        self._entry_pc = plan.entry_pc
        self._slot_names, slot_of = self._slot_map(
            src.slot_names, src.slot_of, initial_abs
        )
        self._cvals = _materialize_anf(
            src.consts, self.lattice, getattr(src, "const_records", None)
        )
        self._entry_cache: dict[int, tuple] = {}
        self.initial_store = self.intern_store(
            self._initial_slot_store(initial_abs, self._slot_names, slot_of)
        )
        cl_top = plan.cl_top | closures_of_store(initial_abs)
        self.top_value = AbsVal(self.lattice.domain.top, cl_top)
        self._active: dict = {}
        self._depth = 0

    def run(self) -> AnalysisResult:
        """Analyze the program (under the empty continuation)."""
        try:
            with recursion_headroom():
                answer = self.eval(self._entry_pc, (), self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name,
            self._answer_out(answer),
            self.stats,
            self.lattice,
        )

    def _entry_of(self, clo) -> tuple[int, int]:
        cache = self._entry_cache
        hit = cache.get(id(clo))
        if hit is not None and hit[0] is clo:
            return hit[1]
        entry = self._entries.get(clo)
        if entry is None:
            raise TypeError(f"unexpected abstract closure {clo!r}")
        cache[id(clo)] = (clo, entry)
        return entry

    def eval(self, pc: int, kont: tuple, store: SlotStore) -> AAnswer:
        if self._memo is None:
            return self._eval(pc, kont, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(pc, kont, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (pc, kont, store),
            start_seq,
            footprint,
            answer,
            cacheable=self._code[pc][0] != OP_TAIL,
        )

    def _eval(self, pc: int, kont: tuple, store: SlotStore) -> AAnswer:
        registered: list = []
        memo = self._memo
        code = self._code
        terms = self._terms
        cvals = self._cvals
        active = self._active
        tick = self.tick
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        try:
            while True:
                instr = code[pc]
                op = instr[0]
                tick(terms[pc])
                if op == OP_TAIL:
                    ref = instr[1]
                    return self.ret(
                        kont,
                        store.vals[ref] if ref >= 0 else cvals[-1 - ref],
                        store,
                    )
                key = (pc, store)
                owner = active.get(key)
                if owner is not None:
                    # Section 4.4: return (⊤, CL⊤) *to the continuation*.
                    self.note_loop_cut(owner, terms[pc])
                    return self.ret(kont, self.top_value, store)
                if memo is not None:
                    hit = self.memo_probe((pc, kont, store), key, terms[pc])
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                if op == OP_BIND_S:
                    store = self.bind_slot(
                        store, instr[1], store.vals[instr[2]]
                    )
                    pc = instr[3]
                elif op == OP_BIND_C:
                    store = self.bind_slot(store, instr[1], cvals[instr[2]])
                    pc = instr[3]
                elif op == OP_BIND:
                    ref = instr[2]
                    store = self.bind_slot(
                        store,
                        instr[1],
                        store.vals[ref] if ref >= 0 else cvals[-1 - ref],
                    )
                    pc = instr[3]
                elif op == OP_APP:
                    fun = self._ref(instr[2], store)
                    arg = self._ref(instr[3], store)
                    return self.apply(
                        fun, arg, ((instr[1], instr[4]),) + kont, store
                    )
                elif op == OP_IF_S:
                    return self._branch(
                        instr, store.vals[instr[2]], kont, store
                    )
                elif op == OP_IF:
                    return self._branch(
                        instr, self._ref(instr[2], store), kont, store
                    )
                elif op == OP_PRIM:
                    lattice = self.lattice
                    result = lattice.of_num(
                        lattice.domain.binop(
                            instr[2],
                            self._ref(instr[3], store).num,
                            self._ref(instr[4], store).num,
                        )
                    )
                    store = self.bind_slot(store, instr[1], result)
                    pc = instr[5]
                else:  # OP_LOOP
                    return self._loop(((instr[1], instr[2]),) + kont, store)
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    def apply(
        self, fun: AbsVal, arg: AbsVal, kont: tuple, store: SlotStore
    ) -> AAnswer:
        lattice = self.lattice
        domain = lattice.domain
        answer: AAnswer | None = None
        for clo in fun.clos:
            if clo is A_INC:
                branch = self.ret(
                    kont, lattice.of_num(domain.add1(arg.num)), store
                )
            elif clo is A_DEC:
                branch = self.ret(
                    kont, lattice.of_num(domain.sub1(arg.num)), store
                )
            else:
                param_slot, body_pc = self._entry_of(clo)
                entry = self.bind_slot(store, param_slot, arg)
                branch = self.eval(body_pc, kont, entry)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "apply")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    def ret(self, kont: tuple, value: AbsVal, store: SlotStore) -> AAnswer:
        if not kont:
            return AAnswer(value, store)
        self.stats.returns_analyzed += 1
        frame = kont[0]
        return self.eval(
            frame[1], kont[1:], self.bind_slot(store, frame[0], value)
        )

    def _branch(
        self, instr, test: AbsVal, kont: tuple, store: SlotStore
    ) -> AAnswer:
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test.num)
        nonzero_possible = domain.may_be_nonzero(test.num) or bool(test.clos)
        inner = ((instr[1], instr[5]),) + kont
        if zero_possible and not nonzero_possible:
            return self.eval(instr[3], inner, store)
        if nonzero_possible and not zero_possible:
            return self.eval(instr[4], inner, store)
        if not zero_possible and not nonzero_possible:
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(instr[3], inner, store)
        else_answer = self.eval(instr[4], inner, store)
        return self._join(then_answer, else_answer, "if0")

    def _loop(self, kont: tuple, store: SlotStore) -> AAnswer:
        lattice = self.lattice
        domain = lattice.domain
        if self.loop_mode == "reject":
            raise NonComputableError(
                "semantic-CPS analysis of `loop` requires the join of "
                "appre(kont, (i, {})) over all naturals i, which is "
                "undecidable (paper Section 6.2); re-run with "
                "loop_mode='top' or loop_mode='unroll'"
            )
        if self.loop_mode == "top":
            return self.ret(kont, lattice.of_num(domain.iota), store)
        answer: AAnswer | None = None
        for i in range(self.unroll_bound + 1):
            branch = self.ret(kont, lattice.of_const(i), store)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "loop")
            )
        assert answer is not None
        return answer

    def _join(self, a: AAnswer, b: AAnswer, site: str = "join") -> AAnswer:
        self.count_join(site)
        return AAnswer(
            self.lattice.join(a.value, b.value),
            self.join_stores(a.store, b.store),
        )


# ----------------------------------------------------------------------
# Syntactic-CPS engine (Figure 6 over plans)
# ----------------------------------------------------------------------


class SyntacticCpsPlanAnalyzer(_SlotEngine):
    """The Figure 6 judgments over a compiled `CpsPlan`."""

    analyzer_name = "syntactic-cps"

    def __init__(
        self,
        term: CTerm,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        top_kvar: str = TOP_KVAR,
        loop_mode: str = "reject",
        unroll_bound: int = 32,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
        plan_cache: PlanCache | None = PLAN_CACHE,
        plan_tier: str = "opt",
    ) -> None:
        from repro.analysis.common import AbsCo, AbsCpsClo

        if check:
            validate_cps(term, frozenset((top_kvar,)))
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.loop_mode = check_loop_mode(loop_mode)
        self.unroll_bound = unroll_bound
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        plan = _cps_plan_for(term, plan_cache, plan_tier)
        table = dict(initial) if initial else {}
        if top_kvar not in table:
            table[top_kvar] = self.lattice.of_konts(A_STOP)
        initial_abs = AbsStore(self.lattice, table)
        store_clos = closures_of_store(initial_abs)
        store_konts = konts_of_store(initial_abs)
        ext_closures = [
            clo
            for clo in store_clos
            if isinstance(clo, AbsCpsClo) and clo not in plan.cps_entries
        ]
        ext_konts = [
            kont
            for kont in store_konts
            if isinstance(kont, AbsCo) and kont not in plan.kont_entries
        ]
        src = (
            extend_cps_plan(plan, ext_closures, ext_konts)
            if ext_closures or ext_konts
            else plan
        )
        self._code = src.code
        self._terms = src.terms
        self._cps_entries = src.cps_entries
        self._kont_entries = src.kont_entries
        self._entry_pc = plan.entry_pc
        self._slot_names, slot_of = self._slot_map(
            src.slot_names, src.slot_of, initial_abs
        )
        self._cvals = _materialize_cps(
            src.consts, self.lattice, getattr(src, "const_records", None)
        )
        self._entry_cache: dict[int, tuple] = {}
        self._kont_cache: dict[int, tuple] = {}
        self.initial_store = self.intern_store(
            self._initial_slot_store(initial_abs, self._slot_names, slot_of)
        )
        cl_top = plan.cl_top | store_clos
        k_top = plan.k_top | store_konts
        self.top_value = AbsVal(self.lattice.domain.top, cl_top, k_top)
        self._active: dict = {}
        self._depth = 0

    def run(self) -> AnalysisResult:
        """Analyze the program and return the result."""
        try:
            with recursion_headroom():
                answer = self.eval(self._entry_pc, self.initial_store)
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name,
            self._answer_out(answer),
            self.stats,
            self.lattice,
        )

    def _entry_of(self, clo) -> tuple[int, int, int]:
        cache = self._entry_cache
        hit = cache.get(id(clo))
        if hit is not None and hit[0] is clo:
            return hit[1]
        entry = self._cps_entries.get(clo)
        if entry is None:
            raise TypeError(f"unexpected abstract closure {clo!r}")
        cache[id(clo)] = (clo, entry)
        return entry

    def _kont_entry_of(self, kont) -> tuple[int, int]:
        cache = self._kont_cache
        hit = cache.get(id(kont))
        if hit is not None and hit[0] is kont:
            return hit[1]
        entry = self._kont_entries.get(kont)
        if entry is None:
            raise TypeError(f"unexpected abstract continuation {kont!r}")
        cache[id(kont)] = (kont, entry)
        return entry

    def eval(self, pc: int, store: SlotStore) -> AAnswer:
        if self._memo is None:
            return self._eval(pc, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(pc, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            (pc, store), start_seq, footprint, answer
        )

    def _eval(self, pc: int, store: SlotStore) -> AAnswer:
        registered: list = []
        memo = self._memo
        code = self._code
        terms = self._terms
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        try:
            while True:
                key = (pc, store)
                owner = self._active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, terms[pc])
                    return AAnswer(self.top_value, store)
                if memo is not None:
                    hit = self.memo_probe(key, key, terms[pc])
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                self.tick(terms[pc])

                instr = code[pc]
                op = instr[0]
                if op == COP_KRET:
                    kont_val = store.vals[instr[1]]
                    result = self._ref(instr[2], store)
                    return self.ret(kont_val, result, store)
                if op == COP_BIND_S:
                    store = self.bind_slot(
                        store, instr[1], store.vals[instr[2]]
                    )
                    pc = instr[3]
                elif op == COP_BIND_C:
                    store = self.bind_slot(
                        store, instr[1], self._cvals[instr[2]]
                    )
                    pc = instr[3]
                elif op == COP_BIND:
                    store = self.bind_slot(
                        store, instr[1], self._ref(instr[2], store)
                    )
                    pc = instr[3]
                elif op == COP_CAPP:
                    fun_v = self._ref(instr[1], store)
                    arg_v = self._ref(instr[2], store)
                    return self.apply(
                        fun_v, arg_v, self._cvals[instr[3]], store
                    )
                elif op == COP_CIF_S:
                    return self._branch(
                        instr, store.vals[instr[3]], store
                    )
                elif op == COP_CIF:
                    return self._branch(
                        instr, self._ref(instr[3], store), store
                    )
                elif op == COP_PRIM:
                    lattice = self.lattice
                    result = lattice.of_num(
                        lattice.domain.binop(
                            instr[2],
                            self._ref(instr[3], store).num,
                            self._ref(instr[4], store).num,
                        )
                    )
                    store = self.bind_slot(store, instr[1], result)
                    pc = instr[5]
                else:  # COP_CLOOP
                    return self._loop(self._cvals[instr[1]], store)
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    def apply(
        self, fun: AbsVal, arg: AbsVal, kont_val: AbsVal, store: SlotStore
    ) -> AAnswer:
        from repro.analysis.common import A_DECK, A_INCK

        lattice = self.lattice
        domain = lattice.domain
        answer: AAnswer | None = None
        for clo in fun.clos:
            if clo is A_INCK:
                branch = self.ret(
                    kont_val, lattice.of_num(domain.add1(arg.num)), store
                )
            elif clo is A_DECK:
                branch = self.ret(
                    kont_val, lattice.of_num(domain.sub1(arg.num)), store
                )
            else:
                param_slot, kparam_slot, body_pc = self._entry_of(clo)
                entry = self.bind_slot(
                    self.bind_slot(store, param_slot, arg),
                    kparam_slot,
                    kont_val,
                )
                branch = self.eval(body_pc, entry)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "apply")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    def ret(
        self, kont_val: AbsVal, value: AbsVal, store: SlotStore
    ) -> AAnswer:
        answer: AAnswer | None = None
        for kont in kont_val.konts:
            self.stats.returns_analyzed += 1
            if kont is A_STOP:
                branch = AAnswer(value, store)
            else:
                param_slot, body_pc = self._kont_entry_of(kont)
                branch = self.eval(
                    body_pc, self.bind_slot(store, param_slot, value)
                )
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "return")
            )
        if answer is None:
            return AAnswer(self.lattice.bottom, store)
        return answer

    def _branch(self, instr, test_v: AbsVal, store: SlotStore) -> AAnswer:
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test_v.num)
        nonzero_possible = domain.may_be_nonzero(test_v.num) or bool(
            test_v.clos
        )
        bound = self.bind_slot(store, instr[1], self._cvals[instr[2]])
        if zero_possible and not nonzero_possible:
            return self.eval(instr[4], bound)
        if nonzero_possible and not zero_possible:
            return self.eval(instr[5], bound)
        if not zero_possible and not nonzero_possible:
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(instr[4], bound)
        else_answer = self.eval(instr[5], bound)
        return self._join(then_answer, else_answer, "if0")

    def _loop(self, kont_val: AbsVal, store: SlotStore) -> AAnswer:
        lattice = self.lattice
        domain = lattice.domain
        if self.loop_mode == "reject":
            raise NonComputableError(
                "syntactic-CPS analysis of `loop` requires the join of "
                "the continuation applied to every natural, which is "
                "undecidable (paper Section 6.2); re-run with "
                "loop_mode='top' or loop_mode='unroll'"
            )
        if self.loop_mode == "top":
            return self.ret(kont_val, lattice.of_num(domain.iota), store)
        answer: AAnswer | None = None
        for i in range(self.unroll_bound + 1):
            branch = self.ret(kont_val, lattice.of_const(i), store)
            answer = (
                branch
                if answer is None
                else self._join(answer, branch, "loop")
            )
        assert answer is not None
        return answer

    def _join(self, a: AAnswer, b: AAnswer, site: str = "join") -> AAnswer:
        self.count_join(site)
        return AAnswer(
            self.lattice.join(a.value, b.value),
            self.join_stores(a.store, b.store),
        )


# ----------------------------------------------------------------------
# Polyvariant engine (k-CFA over plans)
# ----------------------------------------------------------------------


class PolyvariantPlanAnalyzer(WorkBudgetMixin):
    """The k-CFA judgments over a compiled `AnfPlan`.

    The store stays the `(variable, context)`-keyed `AbsStore` (the
    location space is not dense), but dispatch runs over the flat
    instruction array with precomputed free-variable captures.
    """

    analyzer_name = "direct-kcfa"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        k: int = 1,
        initial: Mapping[str, AbsVal] | None = None,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
        plan_cache: PlanCache | None = PLAN_CACHE,
        plan_tier: str = "opt",
    ) -> None:
        if check:
            validate_anf(term)
        if k < 0:
            raise ValueError("context length k must be >= 0")
        self.term = term
        self.k = k
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        plan = _anf_plan_for(term, plan_cache, plan_tier)
        table: dict[Hashable, AbsVal] = {}
        initial = dict(initial) if initial else {}
        for name, value in initial.items():
            table[CtxVar(name, TOP_CONTEXT)] = _polyvariant_value(value)
        self.initial_store = self.intern_store(
            AbsStore(self.lattice, table)  # type: ignore[arg-type]
        )
        ext_closures = [
            AbsClo(clo.param, clo.body)
            for value in table.values()
            for clo in value.clos
            if isinstance(clo, PolyClo)
            and AbsClo(clo.param, clo.body) not in plan.entries
        ]
        src = extend_anf_plan(plan, ext_closures) if ext_closures else plan
        self._code = src.code
        self._terms = src.terms
        self._entry_pc = plan.entry_pc
        self._slot_names = src.slot_names
        self._free_names = plan.free_names
        self._cvals = _materialize_poly(
            src.consts, self.lattice, getattr(src, "const_records", None)
        )
        self._body_pc = {
            (clo.param, clo.body): entry[1]
            for clo, entry in src.entries.items()
        }
        self._entry_cache: dict[int, tuple] = {}
        cl_top: set[Hashable] = set()
        for clo in plan.cl_top:
            cl_top.add(
                PolyClo(clo.param, clo.body)
                if isinstance(clo, AbsClo)
                else clo
            )
        for value in table.values():
            cl_top |= value.clos
        self.top_value = AbsVal(self.lattice.domain.top, frozenset(cl_top))
        self._active: dict = {}
        self._depth = 0

    def run(self) -> PolyvariantResult:
        """Analyze the program and return the polyvariant result."""
        try:
            with recursion_headroom():
                env: dict[str, Context] = {
                    name: TOP_CONTEXT for name in self._free_names
                }
                value, store = self.eval(
                    self._entry_pc, env, TOP_CONTEXT, self.initial_store
                )
        finally:
            self.finish_metrics()
        return PolyvariantResult(self, value, store)

    def _lookup(
        self, name: str, ctx: Context | None, store: AbsStore
    ) -> AbsVal:
        if ctx is not None:
            return store.get(CtxVar(name, ctx))  # type: ignore[arg-type]
        value = self.lattice.bottom
        for key, entry in store.items():
            if isinstance(key, CtxVar) and key.name == name:
                value = self.lattice.join(value, entry)
        return value

    def _value_ref(
        self, ref: int, env: Mapping[str, Context], store: AbsStore
    ) -> AbsVal:
        if ref >= 0:
            name = self._slot_names[ref]
            return self._lookup(name, env.get(name), store)
        return self._const_value(-1 - ref, env)

    def _const_value(
        self, index: int, env: Mapping[str, Context]
    ) -> AbsVal:
        desc = self._cvals[index]
        if type(desc) is AbsVal:
            return desc
        param, body, needed = desc
        captured = tuple((n, env[n]) for n in needed if n in env)
        return self.lattice.of_clos(PolyClo(param, body, captured))

    def _entry_of(self, clo: PolyClo) -> int:
        cache = self._entry_cache
        hit = cache.get(id(clo))
        if hit is not None and hit[0] is clo:
            return hit[1]
        body_pc = self._body_pc.get((clo.param, clo.body))
        if body_pc is None:
            raise TypeError(f"unexpected abstract closure {clo!r}")
        cache[id(clo)] = (clo, body_pc)
        return body_pc

    def eval(
        self,
        pc: int,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        if self._memo is None:
            return self._eval(pc, env, ctx, store)
        memo_key = (pc, frozenset(env.items()), ctx, store)
        start_seq, footprint = self.memo_frame()
        try:
            answer = self._eval(pc, env, ctx, store)
        finally:
            self.memo_frame_end(footprint)
        return self.memo_complete(
            memo_key,
            start_seq,
            footprint,
            answer,
            cacheable=self._code[pc][0] != OP_TAIL,
        )

    def _eval(
        self,
        pc: int,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        registered: list = []
        memo = self._memo
        code = self._code
        terms = self._terms
        slot_names = self._slot_names
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        env = dict(env)
        try:
            while True:
                instr = code[pc]
                op = instr[0]
                self.tick(terms[pc])
                if op == OP_TAIL:
                    return self._value_ref(instr[1], env, store), store
                key = (pc, frozenset(env.items()), ctx, store)
                owner = self._active.get(key)
                if owner is not None:
                    self.note_loop_cut(owner, terms[pc])
                    return self.top_value, store
                if memo is not None:
                    hit = self.memo_probe(key, key, terms[pc])
                    if hit is not None:
                        return hit
                self.register_judgment(key, registered)
                if op == OP_BIND_S:
                    name = slot_names[instr[2]]
                    result = self._lookup(name, env.get(name), store)
                    next_pc = instr[3]
                elif op == OP_BIND_C:
                    result = self._const_value(instr[2], env)
                    next_pc = instr[3]
                elif op == OP_BIND:
                    result = self._value_ref(instr[2], env, store)
                    next_pc = instr[3]
                elif op == OP_APP:
                    fun = self._value_ref(instr[2], env, store)
                    arg = self._value_ref(instr[3], env, store)
                    result, store = self.apply(
                        slot_names[instr[1]], fun, arg, ctx, store
                    )
                    next_pc = instr[4]
                elif op == OP_IF or op == OP_IF_S:
                    # OP_IF_S's test operand is a plain slot, which is
                    # exactly the non-negative value-reference case.
                    result, store = self._branch(instr, env, ctx, store)
                    next_pc = instr[5]
                elif op == OP_PRIM:
                    lattice = self.lattice
                    result = lattice.of_num(
                        lattice.domain.binop(
                            instr[2],
                            self._value_ref(instr[3], env, store).num,
                            self._value_ref(instr[4], env, store).num,
                        )
                    )
                    next_pc = instr[5]
                else:  # OP_LOOP
                    result = self.lattice.of_num(self.lattice.domain.iota)
                    next_pc = instr[2]
                name = slot_names[instr[1]]
                store = self.bind_join(store, CtxVar(name, ctx), result)
                env[name] = ctx
                pc = next_pc
        finally:
            self._depth -= 1
            self.unregister_judgments(registered)

    def apply(
        self,
        site: str,
        fun: AbsVal,
        arg: AbsVal,
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        lattice = self.lattice
        domain = lattice.domain
        value = lattice.bottom
        out_store = store
        seen = 0
        for clo in fun.clos:
            if clo is A_INC:
                branch_value = lattice.of_num(domain.add1(arg.num))
                branch_store = store
            elif clo is A_DEC:
                branch_value = lattice.of_num(domain.sub1(arg.num))
                branch_store = store
            elif isinstance(clo, PolyClo):
                body_pc = self._entry_of(clo)
                callee_ctx = _truncate(ctx + (site,), self.k)
                entry = self.bind_join(
                    store, CtxVar(clo.param, callee_ctx), arg
                )
                callee_env = dict(clo.env)
                callee_env[clo.param] = callee_ctx
                branch_value, branch_store = self.eval(
                    body_pc, callee_env, callee_ctx, entry
                )
            else:
                raise TypeError(f"unexpected abstract closure {clo!r}")
            seen += 1
            if seen > 1:
                self.count_join("apply")
            value = lattice.join(value, branch_value)
            out_store = self.join_stores(out_store, branch_store)
        return value, out_store

    def _branch(
        self,
        instr,
        env: Mapping[str, Context],
        ctx: Context,
        store: AbsStore,
    ) -> tuple[AbsVal, AbsStore]:
        test = self._value_ref(instr[2], env, store)
        domain = self.lattice.domain
        zero = domain.may_be_zero(test.num)
        nonzero = domain.may_be_nonzero(test.num) or bool(test.clos)
        if zero and not nonzero:
            return self.eval(instr[3], env, ctx, store)
        if nonzero and not zero:
            return self.eval(instr[4], env, ctx, store)
        if not zero and not nonzero:
            return self.lattice.bottom, store
        then_value, then_store = self.eval(instr[3], env, ctx, store)
        else_value, else_store = self.eval(instr[4], env, ctx, store)
        self.count_join("if0")
        return (
            self.lattice.join(then_value, else_value),
            self.join_stores(then_store, else_store),
        )
