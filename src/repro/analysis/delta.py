"""The abstract ``δe`` map (paper Section 5).

Relates direct abstract values to syntactic-CPS abstract values::

    δe((n, {cl1, ..., cli})) = (n, {Ve(cl1), ..., Ve(cli)}, ∅)
    Ve((cle x, M))           = (cle x k_x, F_{k_x}[M])
    Ve(inc)                  = inck
    Ve(dec)                  = deck

and extends pointwise to stores and componentwise to answers.  The
determinism of the CPS transformation (continuation variables derived
from binder names) makes ``Ve`` a pure function whose images coincide
with the closures the transformed whole program creates.
"""

from __future__ import annotations

from typing import Hashable

from repro.analysis.common import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    AAnswer,
    AbsClo,
    AbsCpsClo,
)
from repro.cps.transform import cps_transform, kvar_for
from repro.domains.absval import AbsVal
from repro.domains.store import AbsStore


def delta_closure(clo: Hashable) -> Hashable:
    """``Ve``: map one direct abstract closure to its CPS image."""
    if clo is A_INC:
        return A_INCK
    if clo is A_DEC:
        return A_DECK
    if isinstance(clo, AbsClo):
        kvar = kvar_for(clo.param)
        return AbsCpsClo(
            clo.param, kvar, cps_transform(clo.body, kvar, check=False)
        )
    raise TypeError(f"not a direct abstract closure: {clo!r}")


def delta_value(value: AbsVal) -> AbsVal:
    """``δe`` on abstract values."""
    if value.konts:
        raise ValueError("direct abstract values carry no continuations")
    return AbsVal(
        value.num,
        frozenset(delta_closure(c) for c in value.clos),
        frozenset(),
    )


def delta_store(store: AbsStore) -> AbsStore:
    """``δe`` pointwise on stores."""
    return AbsStore(
        store.lattice,
        {name: delta_value(value) for name, value in store.items()},
    )


def delta_answer(answer: AAnswer) -> AAnswer:
    """``δe`` componentwise on answers."""
    return AAnswer(delta_value(answer.value), delta_store(answer.store))
