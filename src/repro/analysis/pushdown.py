"""The pushdown (CFA2-style) abstract interpreter — the fifth analyzer.

Theorem 5.1 shows where the syntactic-CPS analysis loses to the direct
one: every call to a function flows through *one* abstract
continuation variable, so every return point is merged — a *false
return*.  The direct analyzer avoids that by construction (the
metalanguage's control stack matches calls with returns exactly), but
it pays twice elsewhere:

- its Section 4.4 loop cut answers a re-encountered judgment with the
  least precise value ``(⊤, CL⊤)``, poisoning every recursive
  function's result; and
- its 0CFA store has one location per variable, so a function applied
  at two call sites reads the *join* of both arguments — a false
  return through the store rather than through the continuation.

CFA2 (Vardoulakis & Shivers; see PAPERS.md) shows a context-free —
pushdown — abstraction fixes both without any CPS transform.  This
module is that analyzer, in the summary-based formulation of
Sharir/Pnueli functional summaries:

- **Frames.**  Evaluation carries a per-activation *frame*: the
  precise abstract values of the parameter and the let-bound names of
  the current activation.  Variable references hit the frame first
  and fall back to the joined 0CFA store (free variables of a closure
  body live in a *different* activation, so they take the fallback —
  that part stays 0CFA-coarse, exactly like CFA2's heap references).
  Every binding still joins into the global store, so the reported
  store keeps the collecting-semantics meaning the soundness tests
  (and the lint rules reading ``constant_of``) rely on.
- **Summaries.**  A call to an abstract closure is keyed by
  ``(closure, argument, entry store)``.  A completed summary maps the
  key to its exit answer; propagating it *only* to call sites with a
  matching key is precisely the call/return matching a pushdown
  system provides — and what the merged return point of Theorem 5.1
  destroys.
- **The worklist.**  A recursive call that re-enters an *in-flight*
  key returns the key's current exit approximation (seeded ``⊥``, not
  ``(⊤, CL⊤)``).  The enclosing entry then re-evaluates its body until
  the approximation stops growing — a fixpoint iteration per entry
  configuration, i.e. the classic summary worklist with the pending
  set carried on the recursion stack.  Consumption of an in-flight
  approximation is the pushdown analogue of the Section 4.4 cut and
  is counted (and traced) as one, so loop-budget tooling keeps
  working.  Summaries derived from a *still-active outer*
  approximation are provisional and are not cached (the ``consumed``
  taint below), mirroring the eval memo's taint rule.
- **Termination.**  All number domains in the repo have finite
  height, so stores and exit approximations stabilize; what could
  still diverge is an ever-growing stack of *distinct* precise
  arguments (``f (add1 x)``-style count-ups that the direct analyzer
  collapses by store saturation).  A per-closure activation budget
  (``widen_depth``) widens the argument by the join of the in-flight
  arguments for the same closure once the stack is that deep; widened
  entries repeat and the in-flight approximation cuts the recursion.
  The visit budget (`BudgetExceeded`) bounds everything else.

The eval memo of `WorkBudgetMixin` is deliberately **not** used: its
keys are ``(id(term), store)``, blind to the frame, so a hit could
replay an answer from a different activation.  The summary table *is*
this analyzer's cache (always on — it is integral to call/return
matching, not an optional accelerator); ``cache`` still controls
store interning for API parity.  There is no compiled-plan engine:
``engine="plan"`` raises `EngineUnsupported` (the serve layer's
``engine_unsupported`` enum error).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.analysis.common import (
    A_DEC,
    A_INC,
    AAnswer,
    AbsClo,
    AnalysisStats,
    EngineUnsupported,
    WorkBudgetMixin,
    abstract_value,
    recursion_headroom,
)
from repro.analysis.result import AnalysisResult
from repro.anf.validate import validate_anf
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import (
    App,
    If0,
    Let,
    Loop,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.obs.metrics import Metrics
from repro.obs.sinks import Sink

#: Default per-closure activation budget before argument widening.
#: Deep enough for every corpus program's concrete descent (factorial
#: recurses 6 deep, the mini-evaluator 5), small enough that a
#: count-up recursion widens long before the visit budget matters.
WIDEN_DEPTH = 32

#: A frame: the current activation's precise bindings.  Plain dict —
#: frames are never hashed or compared, only read through; branch
#: arms get copies so arm-local (possibly shadowing) bindings cannot
#: leak into the continuation.
Frame = dict[str, AbsVal]


class PushdownAnalyzer(WorkBudgetMixin):
    """The summary-based pushdown abstract interpreter."""

    analyzer_name = "pushdown"

    def __init__(
        self,
        term: Term,
        domain: NumDomain | None = None,
        initial: Mapping[str, AbsVal] | None = None,
        check: bool = True,
        max_visits: int | None = None,
        trace: Sink | None = None,
        metrics: Metrics | None = None,
        cache: "bool | None" = None,
        widen_depth: int = WIDEN_DEPTH,
    ) -> None:
        """Prepare a pushdown analysis of ``term``.

        The first eight arguments match `DirectAnalyzer` exactly;
        ``widen_depth`` is the per-closure activation budget before
        argument widening (see the module docstring).
        """
        if check:
            validate_anf(term)
        if widen_depth < 1:
            raise ValueError(f"widen_depth must be positive: {widen_depth}")
        self.term = term
        self.lattice = Lattice(domain if domain is not None else ConstPropDomain())
        self.stats = AnalysisStats()
        self.max_visits = max_visits
        self.widen_depth = widen_depth
        self.init_obs(trace, metrics)
        self.init_perf(cache)
        self.initial_store = self.intern_store(AbsStore(self.lattice, initial))
        #: Completed entry/exit summaries: key -> exit answer.
        self._summaries: dict[tuple, AAnswer] = {}
        #: In-flight entries: key -> current exit approximation.
        self._active_calls: dict[tuple, AAnswer] = {}
        #: Keys whose in-flight approximation the current fixpoint
        #: iteration consumed (the taint that forces re-iteration and
        #: blocks caching of provisional summaries).
        self._consumed: set[tuple] = set()
        #: Arguments of the in-flight activations, per closure — the
        #: widening stack.
        self._active_args: dict[AbsClo, list[AbsVal]] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> AnalysisResult:
        """Analyze the program and return the result."""
        try:
            with recursion_headroom():
                answer = self.eval(self.term, self.initial_store, {})
        finally:
            self.finish_metrics()
        return AnalysisResult(
            self.analyzer_name, answer, self.stats, self.lattice
        )

    # ------------------------------------------------------------------
    # phi_e, frame-first
    # ------------------------------------------------------------------

    def eval_value(self, value: Term, store: AbsStore, frame: Frame) -> AbsVal:
        """``phi_e`` with pushdown precision: a variable bound in the
        current activation reads its frame value; anything else (free
        variables of the enclosing closure body, globals) falls back
        to the joined store."""
        if isinstance(value, Var):
            hit = frame.get(value.name)
            if hit is not None:
                return hit
            return store.get(value.name)
        return abstract_value(self.lattice, value, store)

    # ------------------------------------------------------------------
    # Abstract evaluation of terms
    # ------------------------------------------------------------------

    def eval(self, term: Term, store: AbsStore, frame: Frame) -> AAnswer:
        """Analyze ``term`` in ``store`` within the activation
        ``frame``.  Walks the let-spine iteratively like the direct
        analyzer; only applications recurse, so loop detection lives
        entirely in the summary machinery of `_call`."""
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        try:
            while True:
                self.tick(term)
                if is_value(term):
                    return AAnswer(self.eval_value(term, store, frame), store)
                if not isinstance(term, Let):
                    raise TypeError(
                        f"term is not in the restricted subset: {term!r}"
                    )
                name, rhs, body = term.name, term.rhs, term.body
                if is_value(rhs):
                    result = self.eval_value(rhs, store, frame)
                elif isinstance(rhs, App):
                    fun = self.eval_value(rhs.fun, store, frame)
                    arg = self.eval_value(rhs.arg, store, frame)
                    answer = self.apply(fun, arg, store)
                    result, store = answer.value, answer.store
                elif isinstance(rhs, If0):
                    answer = self._branch(rhs, store, frame)
                    result, store = answer.value, answer.store
                elif isinstance(rhs, PrimApp):
                    result = self._primop(rhs, store, frame)
                elif isinstance(rhs, Loop):
                    # Section 6.2: the join of all naturals, as in the
                    # direct analyzer.
                    result = self.lattice.of_num(self.lattice.domain.iota)
                else:
                    raise TypeError(f"invalid let right-hand side: {rhs!r}")
                # The frame keeps the precise value for this
                # activation; the store keeps the sound join over all
                # activations (and is what escapes into summaries,
                # reports, and lint facts).
                store = self.bind_join(store, name, result)
                frame[name] = result
                term = body
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------
    # Application: summaries and call/return matching
    # ------------------------------------------------------------------

    def apply(self, fun: AbsVal, arg: AbsVal, store: AbsStore) -> AAnswer:
        """Apply every abstract closure in the function position and
        join the answers (the 0CFA function-position join is kept;
        the pushdown precision is per closure, in `_call`)."""
        lattice = self.lattice
        domain = lattice.domain
        value = lattice.bottom
        out_store = store
        seen = 0
        for clo in fun.clos:
            if clo is A_INC:
                branch_value = lattice.of_num(domain.add1(arg.num))
                branch_store = store
            elif clo is A_DEC:
                branch_value = lattice.of_num(domain.sub1(arg.num))
                branch_store = store
            elif isinstance(clo, AbsClo):
                answer = self._call(clo, arg, store)
                branch_value, branch_store = answer.value, answer.store
            else:
                # CPS-only closures cannot appear here.
                raise TypeError(f"unexpected abstract closure {clo!r}")
            seen += 1
            if seen > 1:
                self.count_join("apply")
            value = lattice.join(value, branch_value)
            out_store = self.join_stores(out_store, branch_store)
        return AAnswer(value, out_store)

    def _call(self, clo: AbsClo, arg: AbsVal, store: AbsStore) -> AAnswer:
        """One call edge: consult the summary table, the in-flight
        approximations, or push a new entry configuration."""
        active_args = self._active_args.get(clo)
        if active_args and len(active_args) >= self.widen_depth:
            # Too many in-flight activations of this closure with
            # distinct precise arguments: widen toward their join so
            # the entry configurations start repeating.
            widened = arg
            for prev in active_args:
                widened = self.lattice.join(widened, prev)
            if widened != arg:
                self.stats.widenings += 1
                arg = widened
        entry_store = self.bind_join(store, clo.param, arg)
        key = (clo, arg, entry_store)
        summary = self._summaries.get(key)
        if summary is not None:
            # Call/return matched from the table: the exit answer
            # flows to exactly the call sites sharing this entry.
            self.perf.eval_cache_hits += 1
            return summary
        approximation = self._active_calls.get(key)
        if approximation is not None:
            # Re-entry of an in-flight configuration — the pushdown
            # analogue of the Section 4.4 cut, answering with the
            # ⊥-seeded approximation instead of (⊤, CL⊤).
            self.count_loop_cut(clo.body)
            self._consumed.add(key)
            return approximation
        return self._solve(key, clo, arg, entry_store)

    def _solve(
        self, key: tuple, clo: AbsClo, arg: AbsVal, entry_store: AbsStore
    ) -> AAnswer:
        """Compute the exit summary for a new entry configuration:
        iterate the body until the exit approximation stabilizes."""
        lattice = self.lattice
        self._active_calls[key] = AAnswer(lattice.bottom, entry_store)
        self._active_args.setdefault(clo, []).append(arg)
        all_consumed: set[tuple] = set()
        try:
            while True:
                saved = self._consumed
                self._consumed = set()
                try:
                    answer = self.eval(
                        clo.body, entry_store, {clo.param: arg}
                    )
                finally:
                    iter_consumed = self._consumed
                    self._consumed = saved
                all_consumed |= iter_consumed
                previous = self._active_calls[key]
                merged = AAnswer(
                    lattice.join(previous.value, answer.value),
                    self.join_stores(previous.store, answer.store),
                )
                if key not in iter_consumed or merged == previous:
                    # Either the body never re-entered this
                    # configuration (no self-recursion at this entry)
                    # or the approximation stopped growing.
                    result = merged
                    break
                self._active_calls[key] = merged
        finally:
            del self._active_calls[key]
            self._active_args[clo].pop()
        all_consumed.discard(key)
        if not any(k in self._active_calls for k in all_consumed):
            # Derived without consulting any still-active outer
            # approximation: the summary is final and reusable.
            self._summaries[key] = result
            self.stats.returns_analyzed += 1
        # Propagate the remaining taint so enclosing fixpoints know
        # they consumed in-flight state through this call.
        self._consumed |= all_consumed
        return result

    # ------------------------------------------------------------------
    # Conditionals and operators
    # ------------------------------------------------------------------

    def _branch(self, rhs: If0, store: AbsStore, frame: Frame) -> AAnswer:
        """The two ``if0`` rules, on frames: each arm runs on a *copy*
        of the activation frame (arm-local bindings may shadow and
        must not leak into the continuation or the other arm); an
        indefinite test still merges the answers before the
        continuation, exactly as in the direct analyzer."""
        test = self.eval_value(rhs.test, store, frame)
        domain = self.lattice.domain
        zero_possible = domain.may_be_zero(test.num)
        nonzero_possible = domain.may_be_nonzero(test.num) or bool(test.clos)
        if zero_possible and not nonzero_possible:
            return self.eval(rhs.then, store, dict(frame))
        if nonzero_possible and not zero_possible:
            return self.eval(rhs.orelse, store, dict(frame))
        if not zero_possible and not nonzero_possible:
            # No value reaches the test: the conditional is dead code.
            return AAnswer(self.lattice.bottom, store)
        then_answer = self.eval(rhs.then, store, dict(frame))
        else_answer = self.eval(rhs.orelse, store, dict(frame))
        self.count_join("if0")
        return AAnswer(
            self.lattice.join(then_answer.value, else_answer.value),
            self.join_stores(then_answer.store, else_answer.store),
        )

    def _primop(self, rhs: PrimApp, store: AbsStore, frame: Frame) -> AbsVal:
        """Abstract a second-class operator application."""
        domain = self.lattice.domain
        nums: list[Hashable] = [
            self.eval_value(arg, store, frame).num for arg in rhs.args
        ]
        return self.lattice.of_num(domain.binop(rhs.op, nums[0], nums[1]))


def analyze_pushdown(
    term: Term,
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    check: bool = True,
    max_visits: int | None = None,
    trace: Sink | None = None,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    widen_depth: int = WIDEN_DEPTH,
) -> AnalysisResult:
    """Run the pushdown (CFA2-style) data flow analysis on ``term``.

    Tree engine only: ``engine="plan"`` raises `EngineUnsupported`
    (summary tables are keyed by abstract closures and stores, not
    compiled instruction offsets) — callers that speak the serve enum
    vocabulary surface it as ``engine_unsupported``.
    """
    if engine != "tree":
        from repro.analysis.engine import check_engine

        check_engine(engine)
        raise EngineUnsupported("pushdown", engine)
    return PushdownAnalyzer(
        term,
        domain,
        initial,
        check,
        max_visits,
        trace=trace,
        metrics=metrics,
        cache=cache,
        widen_depth=widen_depth,
    ).run()
