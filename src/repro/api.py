"""High-level facade: run the paper's analyzers side by side.

This is the entry point most downstream users want::

    from repro import api
    report = api.run_comparison("(let (a1 (f 1)) (let (a2 (f 2)) a2))",
                                initial={"f": ...})
    report.direct.constant_of("a1")      # 1
    report.direct_vs_syntactic           # Precision.LEFT_MORE_PRECISE
    report.pushdown_vs_direct            # Precision.LEFT_MORE_PRECISE

Accepts raw source text, arbitrary A terms (normalized on the fly), or
`CorpusProgram` records, and handles the δe transport of the initial
store to the CPS side.  `run_comparison` is N-way over the canonical
comparison analyzers (`repro.analysis.registry.COMPARISON_ANALYZERS`);
`run_three_way` survives as a thin deprecated alias running exactly
the paper's classic three.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.common import EngineUnsupported
from repro.analysis.compare import (
    Precision,
    compare_direct_to_cps,
    compare_pushdown_to_direct,
    compare_semantic_to_direct,
    compare_semantic_to_syntactic,
)
from repro.analysis.delta import delta_store
from repro.analysis.direct import analyze_direct
from repro.analysis.pushdown import analyze_pushdown
from repro.analysis.registry import COMPARISON_ANALYZERS, canonical_analyzer
from repro.analysis.result import AnalysisResult
from repro.analysis.semantic_cps import analyze_semantic_cps
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.anf import is_anf, normalize
from repro.corpus.programs import CorpusProgram
from repro.cps import cps_transform
from repro.cps.ast import CTerm
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import Term, TERM_CLASSES
from repro.lang.parser import parse
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink

#: The classic paper trio (the `run_three_way` vocabulary).
THREE_WAY_ANALYZERS: tuple[str, ...] = (
    "direct",
    "semantic-cps",
    "syntactic-cps",
)


def prepare(program: "str | Term | CorpusProgram") -> Term:
    """Turn source text / an arbitrary term / a corpus entry into a
    program of the restricted subset."""
    if isinstance(program, CorpusProgram):
        return program.term
    if isinstance(program, str):
        program = parse(program)
    if not isinstance(program, TERM_CLASSES):
        raise TypeError(f"not an A program: {program!r}")
    if is_anf(program):
        return program
    return normalize(program)


@dataclass(frozen=True)
class ComparisonReport:
    """Results of the comparison analyzers on one program, plus the
    Section 5 pairwise verdicts.

    An analyzer that was not requested leaves its field ``None``;
    verdict properties involving it raise ``ValueError``.  The classic
    three are always present under `run_three_way`, and `run_comparison`
    adds the pushdown analyzer by default (tree engine).
    """

    term: Term
    cps_term: CTerm
    direct: AnalysisResult | None
    semantic: AnalysisResult | None
    syntactic: AnalysisResult | None
    pushdown: AnalysisResult | None = None

    def _require(self, name: str) -> AnalysisResult:
        result = getattr(self, name)
        if result is None:
            raise ValueError(
                f"the {name} analyzer was not part of this comparison"
            )
        return result

    @property
    def results(self) -> tuple[AnalysisResult, ...]:
        """The results that were actually computed, in canonical order."""
        return tuple(
            result
            for result in (
                self.direct,
                self.semantic,
                self.syntactic,
                self.pushdown,
            )
            if result is not None
        )

    @property
    def direct_vs_syntactic(self) -> Precision:
        """The Theorem 5.1/5.2 comparison (incomparable in general)."""
        return compare_direct_to_cps(
            self._require("direct"), self._require("syntactic")
        )

    @property
    def semantic_vs_direct(self) -> Precision:
        """The Theorem 5.4 comparison (semantic is never worse)."""
        return compare_semantic_to_direct(
            self._require("semantic"), self._require("direct")
        )

    @property
    def semantic_vs_syntactic(self) -> Precision:
        """The Theorem 5.5 comparison (semantic is never worse)."""
        return compare_semantic_to_syntactic(
            self._require("semantic"), self._require("syntactic")
        )

    @property
    def pushdown_vs_direct(self) -> Precision:
        """The pushdown-vs-direct comparison (pushdown is never worse:
        call/return matching only removes false returns)."""
        return compare_pushdown_to_direct(
            self._require("pushdown"), self._require("direct")
        )

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = []
        if self.direct is not None:
            lines.append(
                f"direct       : value={self.direct.value!r} "
                f"visits={self.direct.stats.visits}"
            )
        if self.semantic is not None:
            lines.append(
                f"semantic-CPS : value={self.semantic.value!r} "
                f"visits={self.semantic.stats.visits}"
            )
        if self.syntactic is not None:
            lines.append(
                f"syntactic-CPS: value={self.syntactic.value!r} "
                f"visits={self.syntactic.stats.visits}"
            )
        if self.pushdown is not None:
            lines.append(
                f"pushdown     : value={self.pushdown.value!r} "
                f"visits={self.pushdown.stats.visits}"
            )
        if self.direct is not None and self.syntactic is not None:
            lines.append(
                f"direct vs syntactic-CPS : {self.direct_vs_syntactic.value}"
            )
        if self.semantic is not None and self.direct is not None:
            lines.append(
                f"semantic vs direct      : {self.semantic_vs_direct.value}"
            )
        if self.semantic is not None and self.syntactic is not None:
            lines.append(
                f"semantic vs syntactic   : {self.semantic_vs_syntactic.value}"
            )
        if self.pushdown is not None and self.direct is not None:
            lines.append(
                f"pushdown vs direct      : {self.pushdown_vs_direct.value}"
            )
        return "\n".join(lines)

    def work_summary(self) -> str:
        """A per-analyzer table of the obs work counters — the paper's
        direct-vs-CPS cost comparison (Section 6.2) on this program."""
        header = (
            f"{'analyzer':14} {'visits':>8} {'joins':>7} {'widenings':>10} "
            f"{'loop_cuts':>10} {'returns':>8} {'max_store':>10}"
        )
        lines = [header]
        for result in self.results:
            stats = result.stats
            lines.append(
                f"{result.analyzer:14} {stats.visits:>8} {stats.joins:>7} "
                f"{stats.widenings:>10} {stats.loop_cuts:>10} "
                f"{stats.returns_analyzed:>8} {stats.max_store_size:>10}"
            )
        return "\n".join(lines)


#: Deprecated name: the report type predates the pushdown analyzer.
ThreeWayReport = ComparisonReport


def run_comparison(
    program: "str | Term | CorpusProgram",
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    analyzers: Iterable[str] | None = None,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    max_visits: int | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> ComparisonReport:
    """Run the comparison analyzers on one program.

    Args:
        program: source text, an A term, or a corpus entry (whose
            bundled initial assumptions are used unless ``initial``
            overrides them).
        domain: the abstract number domain (default: constant
            propagation).
        initial: free-variable assumptions, in the *direct* abstract
            domain; the syntactic-CPS analyzer receives their δe image.
        analyzers: which analyzers to run (canonical names or aliases
            from `repro.analysis.registry`).  Default: all comparison
            analyzers the engine supports — the classic three plus
            pushdown on the tree engine; the classic three on the plan
            engine (the pushdown analyzer is tree-only, and asking for
            it explicitly with ``engine="plan"`` raises
            `EngineUnsupported`).
        loop_mode, unroll_bound: `loop` handling for the CPS analyzers.
        max_visits: optional per-analyzer work budget (the CPS
            analyzers are worst-case exponential, Section 6.2);
            exceeding it raises `BudgetExceeded`.
        trace: optional `repro.obs` sink shared by all analyzers
            (events carry the analyzer name; default: disabled).
        metrics: optional `repro.obs` registry; each analyzer gets an
            ``analyze.<name>`` timing span and folds its stats in
            under ``analysis.<name>``.
        cache: `repro.perf` configuration shared by all analyzers
            (a `PerfConfig`, or ``None``/``True``/``False``); results
            are identical either way.
        engine: ``"tree"`` (default) interprets the AST; ``"plan"``
            runs the compiled-plan engines of
            :mod:`repro.analysis.engine` — same answers, same
            statistics (differentially tested).
        plan_tier: ``"opt"`` (default) runs peephole-optimized plans,
            ``"base"`` the raw compiler output — bit-identical either
            way; only meaningful with ``engine="plan"``.

    Returns:
        A `ComparisonReport` with the results and pairwise verdicts.
    """
    if analyzers is None:
        selected = (
            COMPARISON_ANALYZERS
            if engine == "tree"
            else THREE_WAY_ANALYZERS
        )
    else:
        selected = tuple(
            canonical_analyzer(name, COMPARISON_ANALYZERS)
            for name in analyzers
        )
        if "pushdown" in selected and engine != "tree":
            raise EngineUnsupported("pushdown", engine)
    domain = domain if domain is not None else ConstPropDomain()
    lattice = Lattice(domain)
    if initial is None and isinstance(program, CorpusProgram):
        initial = program.initial_for(lattice)
    term = prepare(program)
    cps_term = cps_transform(term)
    cps_initial = dict(
        delta_store(AbsStore(lattice, initial)).items()
    )
    span = metrics.span if metrics is not None else nullcontext
    direct = semantic = syntactic = pushdown = None
    if "direct" in selected:
        with span("analyze.direct"):
            direct = analyze_direct(
                term,
                domain,
                initial=initial,
                max_visits=max_visits,
                trace=trace,
                metrics=metrics,
                cache=cache,
                engine=engine,
                plan_tier=plan_tier,
            )
    if "semantic-cps" in selected:
        with span("analyze.semantic-cps"):
            semantic = analyze_semantic_cps(
                term,
                domain,
                initial=initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=max_visits,
                trace=trace,
                metrics=metrics,
                cache=cache,
                engine=engine,
                plan_tier=plan_tier,
            )
    if "syntactic-cps" in selected:
        with span("analyze.syntactic-cps"):
            syntactic = analyze_syntactic_cps(
                cps_term,
                domain,
                initial=cps_initial,
                loop_mode=loop_mode,
                unroll_bound=unroll_bound,
                max_visits=max_visits,
                trace=trace,
                metrics=metrics,
                cache=cache,
                engine=engine,
                plan_tier=plan_tier,
            )
    if "pushdown" in selected:
        with span("analyze.pushdown"):
            pushdown = analyze_pushdown(
                term,
                domain,
                initial=initial,
                max_visits=max_visits,
                trace=trace,
                metrics=metrics,
                cache=cache,
                engine=engine,
            )
    return ComparisonReport(
        term, cps_term, direct, semantic, syntactic, pushdown
    )


def run_three_way(
    program: "str | Term | CorpusProgram",
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    max_visits: int | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
) -> ComparisonReport:
    """Deprecated alias of `run_comparison` restricted to the paper's
    classic three analyzers (direct, semantic-CPS, syntactic-CPS).

    .. deprecated::
        Call ``run_comparison(..., analyzers=THREE_WAY_ANALYZERS)``
        instead; this alias will be removed in a future release.
    """
    import warnings

    warnings.warn(
        "run_three_way is deprecated; use"
        " run_comparison(..., analyzers=THREE_WAY_ANALYZERS)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_comparison(
        program,
        domain,
        initial,
        analyzers=THREE_WAY_ANALYZERS,
        loop_mode=loop_mode,
        unroll_bound=unroll_bound,
        max_visits=max_visits,
        trace=trace,
        metrics=metrics,
        cache=cache,
        engine=engine,
    )
