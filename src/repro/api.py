"""High-level facade: run the paper's three analyzers side by side.

This is the entry point most downstream users want::

    from repro import api
    report = api.run_three_way("(let (a1 (f 1)) (let (a2 (f 2)) a2))",
                               initial={"f": ...})
    report.direct.constant_of("a1")      # 1
    report.direct_vs_syntactic           # Precision.LEFT_MORE_PRECISE

Accepts raw source text, arbitrary A terms (normalized on the fly), or
`CorpusProgram` records, and handles the δe transport of the initial
store to the CPS side.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.compare import (
    Precision,
    compare_direct_to_cps,
    compare_semantic_to_direct,
    compare_semantic_to_syntactic,
)
from repro.analysis.delta import delta_store
from repro.analysis.direct import analyze_direct
from repro.analysis.result import AnalysisResult
from repro.analysis.semantic_cps import analyze_semantic_cps
from repro.analysis.syntactic_cps import analyze_syntactic_cps
from repro.anf import is_anf, normalize
from repro.corpus.programs import CorpusProgram
from repro.cps import cps_transform
from repro.cps.ast import CTerm
from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.protocol import NumDomain
from repro.domains.store import AbsStore
from repro.lang.ast import Term, TERM_CLASSES
from repro.lang.parser import parse
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink


def prepare(program: "str | Term | CorpusProgram") -> Term:
    """Turn source text / an arbitrary term / a corpus entry into a
    program of the restricted subset."""
    if isinstance(program, CorpusProgram):
        return program.term
    if isinstance(program, str):
        program = parse(program)
    if not isinstance(program, TERM_CLASSES):
        raise TypeError(f"not an A program: {program!r}")
    if is_anf(program):
        return program
    return normalize(program)


@dataclass(frozen=True)
class ThreeWayReport:
    """Results of the three analyses of one program, plus the Section 5
    pairwise verdicts."""

    term: Term
    cps_term: CTerm
    direct: AnalysisResult
    semantic: AnalysisResult
    syntactic: AnalysisResult

    @property
    def direct_vs_syntactic(self) -> Precision:
        """The Theorem 5.1/5.2 comparison (incomparable in general)."""
        return compare_direct_to_cps(self.direct, self.syntactic)

    @property
    def semantic_vs_direct(self) -> Precision:
        """The Theorem 5.4 comparison (semantic is never worse)."""
        return compare_semantic_to_direct(self.semantic, self.direct)

    @property
    def semantic_vs_syntactic(self) -> Precision:
        """The Theorem 5.5 comparison (semantic is never worse)."""
        return compare_semantic_to_syntactic(self.semantic, self.syntactic)

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"direct       : value={self.direct.value!r} "
            f"visits={self.direct.stats.visits}",
            f"semantic-CPS : value={self.semantic.value!r} "
            f"visits={self.semantic.stats.visits}",
            f"syntactic-CPS: value={self.syntactic.value!r} "
            f"visits={self.syntactic.stats.visits}",
            f"direct vs syntactic-CPS : {self.direct_vs_syntactic.value}",
            f"semantic vs direct      : {self.semantic_vs_direct.value}",
            f"semantic vs syntactic   : {self.semantic_vs_syntactic.value}",
        ]
        return "\n".join(lines)

    def work_summary(self) -> str:
        """A per-analyzer table of the obs work counters — the paper's
        direct-vs-CPS cost comparison (Section 6.2) on this program."""
        header = (
            f"{'analyzer':14} {'visits':>8} {'joins':>7} {'widenings':>10} "
            f"{'loop_cuts':>10} {'returns':>8} {'max_store':>10}"
        )
        lines = [header]
        for result in (self.direct, self.semantic, self.syntactic):
            stats = result.stats
            lines.append(
                f"{result.analyzer:14} {stats.visits:>8} {stats.joins:>7} "
                f"{stats.widenings:>10} {stats.loop_cuts:>10} "
                f"{stats.returns_analyzed:>8} {stats.max_store_size:>10}"
            )
        return "\n".join(lines)


def run_three_way(
    program: "str | Term | CorpusProgram",
    domain: NumDomain | None = None,
    initial: Mapping[str, AbsVal] | None = None,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    max_visits: int | None = None,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    cache: "bool | None" = None,
    engine: str = "tree",
) -> ThreeWayReport:
    """Run all three analyzers on one program.

    Args:
        program: source text, an A term, or a corpus entry (whose
            bundled initial assumptions are used unless ``initial``
            overrides them).
        domain: the abstract number domain (default: constant
            propagation).
        initial: free-variable assumptions, in the *direct* abstract
            domain; the syntactic-CPS analyzer receives their δe image.
        loop_mode, unroll_bound: `loop` handling for the CPS analyzers.
        max_visits: optional per-analyzer work budget (the CPS
            analyzers are worst-case exponential, Section 6.2);
            exceeding it raises `BudgetExceeded`.
        trace: optional `repro.obs` sink shared by all three analyzers
            (events carry the analyzer name; default: disabled).
        metrics: optional `repro.obs` registry; each analyzer gets an
            ``analyze.<name>`` timing span and folds its stats in
            under ``analysis.<name>``.
        cache: `repro.perf` configuration shared by all three analyzers
            (a `PerfConfig`, or ``None``/``True``/``False``); results
            are identical either way.
        engine: ``"tree"`` (default) interprets the AST; ``"plan"``
            runs the compiled-plan engines of
            :mod:`repro.analysis.engine` — same answers, same
            statistics (differentially tested).

    Returns:
        A `ThreeWayReport` with the three results and pairwise verdicts.
    """
    domain = domain if domain is not None else ConstPropDomain()
    lattice = Lattice(domain)
    if initial is None and isinstance(program, CorpusProgram):
        initial = program.initial_for(lattice)
    term = prepare(program)
    cps_term = cps_transform(term)
    cps_initial = dict(
        delta_store(AbsStore(lattice, initial)).items()
    )
    span = metrics.span if metrics is not None else nullcontext
    with span("analyze.direct"):
        direct = analyze_direct(
            term,
            domain,
            initial=initial,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            cache=cache,
            engine=engine,
        )
    with span("analyze.semantic-cps"):
        semantic = analyze_semantic_cps(
            term,
            domain,
            initial=initial,
            loop_mode=loop_mode,
            unroll_bound=unroll_bound,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            cache=cache,
            engine=engine,
        )
    with span("analyze.syntactic-cps"):
        syntactic = analyze_syntactic_cps(
            cps_term,
            domain,
            initial=cps_initial,
            loop_mode=loop_mode,
            unroll_bound=unroll_bound,
            max_visits=max_visits,
            trace=trace,
            metrics=metrics,
            cache=cache,
            engine=engine,
        )
    return ThreeWayReport(term, cps_term, direct, semantic, syntactic)
