"""Abstract values: the product lattice of Sections 4.1-4.2.

An `AbsVal` pairs an abstract number with a set of abstract closures
and (for the syntactic-CPS analyzer) a set of abstract continuations::

    direct / semantic-CPS :  Num~ x P(Clo~)
    syntactic-CPS         :  Num~ x P(Clo~) x P(Con~)

Ordering and join are componentwise: the number component by the
`NumDomain`, the set components by inclusion/union.  The `Lattice`
helper bundles a domain with these operations so analyzers and stores
share one implementation.

The closure/continuation set members are opaque hashable tokens (the
analysis layer supplies ``(cle x, M)`` records, ``inc``/``dec`` tags,
``(coe x, P)`` records and ``stop``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.domains.protocol import NumDomain

EMPTY: frozenset = frozenset()


@dataclass(frozen=True, slots=True)
class AbsVal:
    """An abstract value: number x closures x continuations."""

    num: Hashable
    clos: frozenset = EMPTY
    konts: frozenset = EMPTY
    #: Lazily cached hash.  Abstract values are hashed constantly —
    #: every store hash folds in its entries — and the componentwise
    #: hash walks two frozensets, so caching it is a large win for
    #: both store flavors (name-keyed and slot-addressed).
    _hash: "int | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.num, self.clos, self.konts))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(self.num)]
        parts.append("{" + ", ".join(sorted(map(str, self.clos))) + "}")
        if self.konts:
            parts.append("{" + ", ".join(sorted(map(str, self.konts))) + "}")
        return "(" + ", ".join(parts) + ")"


class Lattice:
    """Componentwise lattice operations on `AbsVal`, for a fixed domain."""

    __slots__ = ("domain", "bottom")

    def __init__(self, domain: NumDomain) -> None:
        self.domain = domain
        #: The least abstract value.
        self.bottom = AbsVal(domain.bottom, EMPTY, EMPTY)

    def of_const(self, n: int) -> AbsVal:
        """Abstract a numeric literal."""
        return AbsVal(self.domain.const(n), EMPTY, EMPTY)

    def of_num(self, num: Hashable) -> AbsVal:
        """Inject a bare abstract number."""
        return AbsVal(num, EMPTY, EMPTY)

    def of_clos(self, *clos: Hashable) -> AbsVal:
        """Inject a set of abstract closures."""
        return AbsVal(self.domain.bottom, frozenset(clos), EMPTY)

    def of_konts(self, *konts: Hashable) -> AbsVal:
        """Inject a set of abstract continuations."""
        return AbsVal(self.domain.bottom, EMPTY, frozenset(konts))

    def join(self, a: AbsVal, b: AbsVal) -> AbsVal:
        """Componentwise least upper bound."""
        if a is b:
            return a
        return AbsVal(
            self.domain.join(a.num, b.num),
            a.clos | b.clos,
            a.konts | b.konts,
        )

    def join_all(self, values: "list[AbsVal] | tuple[AbsVal, ...]") -> AbsVal:
        """Join of a (possibly empty) collection."""
        result = self.bottom
        for value in values:
            result = self.join(result, value)
        return result

    def leq(self, a: AbsVal, b: AbsVal) -> bool:
        """Componentwise order: ``a`` at least as precise as ``b``."""
        return (
            self.domain.leq(a.num, b.num)
            and a.clos <= b.clos
            and a.konts <= b.konts
        )

    def is_bottom(self, a: AbsVal) -> bool:
        """True when ``a`` carries no information at all."""
        return (
            self.domain.is_bottom(a.num) and not a.clos and not a.konts
        )
