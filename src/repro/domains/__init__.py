"""Abstract value domains (paper Section 4).

The paper instantiates its analyzers at the product of the constant
propagation lattice and the powerset of abstract closures (plus, for
the syntactic-CPS analyzer, the powerset of abstract continuations).
This package factors the *number* part of that product into a
pluggable `NumDomain`, so that Theorem 5.4's distributive/
non-distributive dichotomy is directly testable:

- :class:`ConstPropDomain` — the paper's N⊥⊤ constant lattice (the
  canonical non-distributive analysis);
- :class:`UnitDomain` — a two-point reachability lattice carrying no
  numeric information (pure 0CFA control-flow analysis);
- :class:`ParityDomain`, :class:`SignDomain` — classic finite
  abstractions, used in ablations;
- :class:`IntervalDomain` — intervals with bounds clamped to a finite
  range, keeping the lattice finite-height without widening machinery.

All domains have finite height, which the Section 4.4 termination
argument requires.
"""

from repro.domains.absval import AbsVal, Lattice
from repro.domains.constprop import ConstPropDomain
from repro.domains.interval import IntervalDomain
from repro.domains.parity import ParityDomain
from repro.domains.protocol import NumDomain
from repro.domains.sign import SignDomain
from repro.domains.store import AbsStore
from repro.domains.unit import UnitDomain

__all__ = [
    "NumDomain",
    "ConstPropDomain",
    "UnitDomain",
    "ParityDomain",
    "SignDomain",
    "IntervalDomain",
    "AbsVal",
    "AbsStore",
    "Lattice",
]
