"""Abstract stores (paper Section 4.1).

After the 0CFA abstraction, every variable has exactly one location —
the variable itself — and the store maps each variable to the join of
all values bound to it.  Abstract stores are immutable and hashable:
``(term, store)`` pairs key the Section 4.4 loop detection, and store
equality is how loops are recognized.

Entries whose value is bottom are normalized away, so a store that
never bound ``x`` equals one that bound it to bottom.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.domains.absval import AbsVal, Lattice


class AbsStore:
    """An immutable, hashable map from variables to abstract values."""

    __slots__ = ("_lattice", "_table", "_hash")

    def __init__(
        self,
        lattice: Lattice,
        table: Mapping[str, AbsVal] | None = None,
    ) -> None:
        self._lattice = lattice
        cleaned: dict[str, AbsVal] = {}
        if table:
            for name, value in table.items():
                if not lattice.is_bottom(value):
                    cleaned[name] = value
        self._table = cleaned
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def lattice(self) -> Lattice:
        """The lattice this store's values belong to."""
        return self._lattice

    def get(self, name: str) -> AbsVal:
        """The value of ``name``; bottom when never bound."""
        return self._table.get(name, self._lattice.bottom)

    def variables(self) -> Iterator[str]:
        """Iterate over the variables with a non-bottom entry."""
        return iter(self._table)

    def items(self) -> Iterator[tuple[str, AbsVal]]:
        """Iterate over (variable, value) pairs."""
        return iter(self._table.items())

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __len__(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # Lattice structure
    # ------------------------------------------------------------------

    def joined_bind(
        self,
        name: str,
        value: AbsVal,
        intern: Callable[[AbsVal], AbsVal] | None = None,
    ) -> "AbsStore":
        """The paper's ``sigma[x := sigma(x) u u]`` update.

        ``intern`` optionally canonicalizes the joined value before it
        enters the table (see `repro.perf.Interner`), so equal stores
        built along different paths share value objects.
        """
        current = self.get(name)
        joined = self._lattice.join(current, value)
        if name in self._table and joined == current:
            return self
        if intern is not None:
            joined = intern(joined)
        table = dict(self._table)
        table[name] = joined
        return AbsStore(self._lattice, table)

    def join(self, other: "AbsStore") -> "AbsStore":
        """Pointwise least upper bound of two stores."""
        if self is other or not other._table:
            return self
        if not self._table:
            return other
        table = dict(self._table)
        for name, value in other._table.items():
            existing = table.get(name)
            table[name] = (
                value if existing is None else self._lattice.join(existing, value)
            )
        return AbsStore(self._lattice, table)

    def leq(self, other: "AbsStore") -> bool:
        """Pointwise order: every entry at least as precise in ``other``."""
        if self is other:
            return True
        for name, value in self._table.items():
            if not self._lattice.leq(value, other.get(name)):
                return False
        return True

    def restrict(self, names: Iterable[str]) -> "AbsStore":
        """The store restricted to ``names`` (used by comparisons that
        must ignore continuation-variable entries)."""
        wanted = (
            names if isinstance(names, (set, frozenset)) else set(names)
        )
        return AbsStore(
            self._lattice,
            {n: v for n, v in self._table.items() if n in wanted},
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbsStore):
            return NotImplemented
        return self._table == other._table

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._table.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name} -> {value!r}" for name, value in sorted(self._table.items())
        )
        return f"AbsStore({inner})"


class SlotStore:
    """A slot-addressed abstract store for the compiled (plan) engine.

    Same lattice semantics as `AbsStore`, but variables have been
    resolved to dense integer slots at plan-compile time (the
    unique-binder invariant makes the mapping total), so the table is a
    flat tuple indexed by slot: O(1) reads, O(n) copy-on-write updates
    with no hashing of names, and equality/hashing over a tuple of
    interned values.  Unbound slots hold bottom; ``size`` counts the
    non-bottom entries so `__len__` agrees with the equivalent
    `AbsStore`.

    The identity contract mirrors `AbsStore` exactly — `joined_bind`
    returns ``self`` iff the variable was already bound (non-bottom)
    and the join did not change it — because the analyzers' widening
    statistics are keyed on that identity.
    """

    __slots__ = ("_lattice", "vals", "size", "_hash")

    def __init__(
        self, lattice: Lattice, vals: tuple[AbsVal, ...], size: int
    ) -> None:
        self._lattice = lattice
        self.vals = vals
        self.size = size
        self._hash: int | None = None

    @classmethod
    def empty(cls, lattice: Lattice, slots: int) -> "SlotStore":
        """An all-bottom store with ``slots`` locations."""
        return cls(lattice, (lattice.bottom,) * slots, 0)

    @property
    def lattice(self) -> Lattice:
        """The lattice this store's values belong to."""
        return self._lattice

    def get(self, slot: int) -> AbsVal:
        """The value at ``slot``; bottom when never bound."""
        return self.vals[slot]

    def __len__(self) -> int:
        return self.size

    def joined_bind(
        self,
        slot: int,
        value: AbsVal,
        intern: Callable[[AbsVal], AbsVal] | None = None,
    ) -> "SlotStore":
        """The paper's ``sigma[x := sigma(x) u u]`` update, by slot."""
        lattice = self._lattice
        current = self.vals[slot]
        joined = lattice.join(current, value)
        current_bottom = lattice.is_bottom(current)
        if not current_bottom and joined == current:
            return self
        if intern is not None:
            joined = intern(joined)
        vals = list(self.vals)
        vals[slot] = joined
        size = self.size
        if current_bottom and not lattice.is_bottom(joined):
            size += 1
        return SlotStore(lattice, tuple(vals), size)

    def join(self, other: "SlotStore") -> "SlotStore":
        """Pointwise least upper bound of two stores."""
        if self is other or other.size == 0:
            return self
        if self.size == 0:
            return other
        lattice = self._lattice
        join = lattice.join
        vals = tuple(
            a if a is b else join(a, b)
            for a, b in zip(self.vals, other.vals)
        )
        is_bottom = lattice.is_bottom
        size = sum(1 for v in vals if not is_bottom(v))
        return SlotStore(lattice, vals, size)

    def to_abs_store(self, slot_names: tuple[str, ...]) -> AbsStore:
        """The equivalent name-keyed `AbsStore` (for results and the
        differential suite)."""
        lattice = self._lattice
        return AbsStore(
            lattice,
            {
                slot_names[i]: v
                for i, v in enumerate(self.vals)
                if not lattice.is_bottom(v)
            },
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SlotStore):
            return NotImplemented
        return self.vals == other.vals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.vals)
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{i} -> {v!r}"
            for i, v in enumerate(self.vals)
            if not self._lattice.is_bottom(v)
        )
        return f"SlotStore({inner})"
