"""The `NumDomain` interface: a finite-height lattice of abstract numbers.

Every domain supplies the operations the analyzers need:

- the lattice structure (``bottom``, ``top``, ``join``, ``leq``);
- abstraction of literals (``const``);
- transfer functions for the primitives (``add1``, ``sub1``, ``binop``);
- the branch test (``may_be_zero`` / ``may_be_nonzero``), which drives
  the ``if0`` rules of Figures 4-6;
- ``iota``, the join of the abstractions of all naturals, which is the
  direct analyzer's answer for the Section 6.2 ``loop`` construct.

Domain elements must be immutable and hashable (they are stored in
hashable abstract stores used as loop-detection keys).  The lattice
must have finite height: the Section 4.4 termination argument is
"stores ascend along a derivation and the store lattice has no
infinite ascending chains".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


class NumDomain(ABC, Generic[T]):
    """A finite-height abstract domain for numbers."""

    #: Short identifier used in reports and benchmarks.
    name: str = "abstract"

    #: Whether every transfer function of the *whole analysis* over
    #: this domain distributes over joins (Definition 5.3).  Constant
    #: propagation famously does not; see the domain docstrings for
    #: the per-domain argument.
    distributive: bool = False

    @property
    @abstractmethod
    def bottom(self) -> T:
        """The least element (no value reaches this point)."""

    @property
    @abstractmethod
    def top(self) -> T:
        """The greatest element (any number)."""

    @abstractmethod
    def const(self, n: int) -> T:
        """Abstract the literal ``n``."""

    @abstractmethod
    def join(self, a: T, b: T) -> T:
        """Least upper bound."""

    @abstractmethod
    def leq(self, a: T, b: T) -> bool:
        """Lattice order: ``a`` is at least as precise as ``b``."""

    @abstractmethod
    def add1(self, a: T) -> T:
        """Transfer function of the ``add1`` primitive."""

    @abstractmethod
    def sub1(self, a: T) -> T:
        """Transfer function of the ``sub1`` primitive."""

    @abstractmethod
    def binop(self, op: str, a: T, b: T) -> T:
        """Transfer function of a second-class operator (``+ - *``)."""

    @abstractmethod
    def may_be_zero(self, a: T) -> bool:
        """Could a concrete number abstracted by ``a`` equal 0?"""

    @abstractmethod
    def may_be_nonzero(self, a: T) -> bool:
        """Could a concrete number abstracted by ``a`` differ from 0?"""

    @property
    def iota(self) -> T:
        """The join of ``const(i)`` over all naturals ``i >= 0``.

        Used by the direct analyzer's rule for the ``loop`` construct;
        defaults to ``top``, which is always sound.
        """
        return self.top

    def is_bottom(self, a: T) -> bool:
        """True when ``a`` is the least element."""
        return a == self.bottom

    # ------------------------------------------------------------------
    # Concretization-side helpers used by soundness tests.
    # ------------------------------------------------------------------

    def abstracts(self, a: T, n: int) -> bool:
        """True when the concrete number ``n`` is described by ``a``.

        Default implementation: ``const(n) <= a``.
        """
        return self.leq(self.const(n), a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
