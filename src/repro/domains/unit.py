"""The two-point reachability domain: no numeric information at all.

Elements are ``UNIT_BOT`` (no number reaches this point) and
``UNIT_TOP`` (some number may).  Instantiating the analyzers at this
domain yields a pure control-flow (0CFA) analysis: the only useful
content of abstract values is the closure sets.

All transfer functions are *additive* (they distribute over joins):
``add1``/``sub1`` are the identity, a binary operator is non-bottom
iff both operands are... which is the one non-additive case — however
the language's lexical scoping makes it unobservable (see the
distributivity notes in ``analysis/compare.py``).  Empirically the
analyzers agree on this domain wherever we have tested them; the
Theorem 5.4 test suite asserts the ``A1 ⊑ A3`` direction universally
and the equality on the distributive workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.protocol import NumDomain


@dataclass(frozen=True, slots=True)
class _UnitValue:
    label: str

    def __repr__(self) -> str:
        return self.label


#: No number flows here.
UNIT_BOT = _UnitValue("⊥")

#: Some number may flow here.
UNIT_TOP = _UnitValue("num")


class UnitDomain(NumDomain[_UnitValue]):
    """The two-point lattice {⊥ < num}: reachability only."""

    name = "unit"
    distributive = True

    @property
    def bottom(self) -> _UnitValue:
        return UNIT_BOT

    @property
    def top(self) -> _UnitValue:
        return UNIT_TOP

    def const(self, n: int) -> _UnitValue:
        return UNIT_TOP

    def join(self, a: _UnitValue, b: _UnitValue) -> _UnitValue:
        return UNIT_TOP if UNIT_TOP in (a, b) else UNIT_BOT

    def leq(self, a: _UnitValue, b: _UnitValue) -> bool:
        return a is UNIT_BOT or b is UNIT_TOP

    def add1(self, a: _UnitValue) -> _UnitValue:
        return a

    def sub1(self, a: _UnitValue) -> _UnitValue:
        return a

    def binop(self, op: str, a: _UnitValue, b: _UnitValue) -> _UnitValue:
        if op not in ("+", "-", "*"):
            raise ValueError(f"unknown operator {op!r}")
        return UNIT_BOT if UNIT_BOT in (a, b) else UNIT_TOP

    def may_be_zero(self, a: _UnitValue) -> bool:
        return a is UNIT_TOP

    def may_be_nonzero(self, a: _UnitValue) -> bool:
        return a is UNIT_TOP
