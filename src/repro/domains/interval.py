"""A bounded interval domain.

Standard interval analysis has infinite ascending chains and needs
widening; the paper's termination argument instead requires a
finite-height lattice.  This domain squares that circle by clamping
interval endpoints to ``[-bound, bound]``: endpoints outside the range
saturate to ±infinity.  With ``2*bound + 3`` possible endpoints the
lattice height is finite and Section 4.4's loop detection applies
unchanged.

Elements are ``INT_BOT`` or ``Interval(lo, hi)`` with
``lo <= hi``, where ``lo`` may be ``-inf`` and ``hi`` ``+inf``
(represented as ``None`` endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.domains.protocol import NumDomain


@dataclass(frozen=True, slots=True)
class _IntervalBot:
    def __repr__(self) -> str:
        return "⊥"


INT_BOT = _IntervalBot()


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval; ``None`` endpoints mean unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo},{hi}]"


IntervalValue = Union[_IntervalBot, Interval]


class IntervalDomain(NumDomain[IntervalValue]):
    """Intervals with endpoints saturating at ``±bound``."""

    name = "interval"
    distributive = False

    def __init__(self, bound: int = 64) -> None:
        if bound <= 0:
            raise ValueError("bound must be positive")
        self.bound = bound

    def _clamp(self, lo: Optional[int], hi: Optional[int]) -> Interval:
        # Round each endpoint *outward* to the nearest representable
        # value: lower bounds saturate down, upper bounds saturate up.
        if lo is not None:
            if lo < -self.bound:
                lo = None
            elif lo > self.bound:
                lo = self.bound
        if hi is not None:
            if hi > self.bound:
                hi = None
            elif hi < -self.bound:
                hi = -self.bound
        return Interval(lo, hi)

    @property
    def bottom(self) -> IntervalValue:
        return INT_BOT

    @property
    def top(self) -> IntervalValue:
        return Interval(None, None)

    @property
    def iota(self) -> IntervalValue:
        """Join of all naturals: [0, +inf)."""
        return Interval(0, None)

    def const(self, n: int) -> IntervalValue:
        return self._clamp(n, n)

    def join(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is INT_BOT:
            return b
        if b is INT_BOT:
            return a
        assert isinstance(a, Interval) and isinstance(b, Interval)
        lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
        hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
        return Interval(lo, hi)

    def leq(self, a: IntervalValue, b: IntervalValue) -> bool:
        if a is INT_BOT:
            return True
        if b is INT_BOT:
            return False
        assert isinstance(a, Interval) and isinstance(b, Interval)
        lo_ok = b.lo is None or (a.lo is not None and a.lo >= b.lo)
        hi_ok = b.hi is None or (a.hi is not None and a.hi <= b.hi)
        return lo_ok and hi_ok

    def _shift(self, a: IntervalValue, delta: int) -> IntervalValue:
        if a is INT_BOT:
            return a
        assert isinstance(a, Interval)
        lo = None if a.lo is None else a.lo + delta
        hi = None if a.hi is None else a.hi + delta
        return self._clamp(lo, hi)

    def add1(self, a: IntervalValue) -> IntervalValue:
        return self._shift(a, 1)

    def sub1(self, a: IntervalValue) -> IntervalValue:
        return self._shift(a, -1)

    def binop(
        self, op: str, a: IntervalValue, b: IntervalValue
    ) -> IntervalValue:
        if a is INT_BOT or b is INT_BOT:
            return INT_BOT
        assert isinstance(a, Interval) and isinstance(b, Interval)
        if op == "+":
            lo = None if a.lo is None or b.lo is None else a.lo + b.lo
            hi = None if a.hi is None or b.hi is None else a.hi + b.hi
            return self._clamp(lo, hi)
        if op == "-":
            lo = None if a.lo is None or b.hi is None else a.lo - b.hi
            hi = None if a.hi is None or b.lo is None else a.hi - b.lo
            return self._clamp(lo, hi)
        if op == "*":
            corners = []
            for x in (a.lo, a.hi):
                for y in (b.lo, b.hi):
                    if x is None or y is None:
                        return self.top
                    corners.append(x * y)
            return self._clamp(min(corners), max(corners))
        raise ValueError(f"unknown operator {op!r}")

    def may_be_zero(self, a: IntervalValue) -> bool:
        if a is INT_BOT:
            return False
        assert isinstance(a, Interval)
        lo_ok = a.lo is None or a.lo <= 0
        hi_ok = a.hi is None or a.hi >= 0
        return lo_ok and hi_ok

    def may_be_nonzero(self, a: IntervalValue) -> bool:
        if a is INT_BOT:
            return False
        assert isinstance(a, Interval)
        return a != Interval(0, 0)
