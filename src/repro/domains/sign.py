"""The sign domain: negative / zero / positive / unknown.

The five-point lattice::

           TOP
         /  |  \\
      NEG ZERO POS
         \\  |  /
           BOT

Join of any two distinct signs is TOP (no intermediate points such as
"non-negative" — keeping the lattice small keeps the ``if0`` branch
behaviour easy to reason about in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.protocol import NumDomain


@dataclass(frozen=True, slots=True)
class _Sign:
    label: str

    def __repr__(self) -> str:
        return self.label


SIGN_BOT = _Sign("⊥")
NEG = _Sign("neg")
ZERO = _Sign("zero")
POS = _Sign("pos")
SIGN_TOP = _Sign("⊤")


class SignDomain(NumDomain[_Sign]):
    """Abstract numbers by sign."""

    name = "sign"
    distributive = False

    @property
    def bottom(self) -> _Sign:
        return SIGN_BOT

    @property
    def top(self) -> _Sign:
        return SIGN_TOP

    def const(self, n: int) -> _Sign:
        if n < 0:
            return NEG
        if n == 0:
            return ZERO
        return POS

    def join(self, a: _Sign, b: _Sign) -> _Sign:
        if a is SIGN_BOT:
            return b
        if b is SIGN_BOT:
            return a
        if a == b:
            return a
        return SIGN_TOP

    def leq(self, a: _Sign, b: _Sign) -> bool:
        return a is SIGN_BOT or b is SIGN_TOP or a == b

    def add1(self, a: _Sign) -> _Sign:
        if a is ZERO:
            return POS
        if a is POS:
            return POS
        if a is NEG:
            return SIGN_TOP  # -1 + 1 = 0; -5 + 1 < 0
        return a

    def sub1(self, a: _Sign) -> _Sign:
        if a is ZERO:
            return NEG
        if a is NEG:
            return NEG
        if a is POS:
            return SIGN_TOP  # 1 - 1 = 0; 5 - 1 > 0
        return a

    def binop(self, op: str, a: _Sign, b: _Sign) -> _Sign:
        if a is SIGN_BOT or b is SIGN_BOT:
            return SIGN_BOT
        if op == "-":
            return self.binop("+", a, self._negate(b))
        if op == "+":
            if a is ZERO:
                return b
            if b is ZERO:
                return a
            if a is b and a in (NEG, POS):
                return a
            return SIGN_TOP
        if op == "*":
            if a is ZERO or b is ZERO:
                return ZERO
            if a is SIGN_TOP or b is SIGN_TOP:
                return SIGN_TOP
            return POS if a is b else NEG
        raise ValueError(f"unknown operator {op!r}")

    @staticmethod
    def _negate(a: _Sign) -> _Sign:
        if a is NEG:
            return POS
        if a is POS:
            return NEG
        return a

    def may_be_zero(self, a: _Sign) -> bool:
        return a is ZERO or a is SIGN_TOP

    def may_be_nonzero(self, a: _Sign) -> bool:
        return a in (NEG, POS, SIGN_TOP)
