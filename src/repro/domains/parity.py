"""The parity domain: even / odd / unknown.

A classic four-point abstraction::

          TOP
         /   \\
      EVEN   ODD
         \\   /
          BOT

Parity transfer functions are ring homomorphisms modulo 2, so the
*value-level* operations are additive; like every relational-free
analysis, the store-level merge can still lose correlations between
variables, so the domain is conservatively marked non-distributive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.protocol import NumDomain


@dataclass(frozen=True, slots=True)
class _Parity:
    label: str

    def __repr__(self) -> str:
        return self.label


PAR_BOT = _Parity("⊥")
EVEN = _Parity("even")
ODD = _Parity("odd")
PAR_TOP = _Parity("⊤")

_FLIP = {PAR_BOT: PAR_BOT, EVEN: ODD, ODD: EVEN, PAR_TOP: PAR_TOP}


class ParityDomain(NumDomain[_Parity]):
    """Abstract numbers by parity."""

    name = "parity"
    distributive = False

    @property
    def bottom(self) -> _Parity:
        return PAR_BOT

    @property
    def top(self) -> _Parity:
        return PAR_TOP

    def const(self, n: int) -> _Parity:
        return EVEN if n % 2 == 0 else ODD

    def join(self, a: _Parity, b: _Parity) -> _Parity:
        if a is PAR_BOT:
            return b
        if b is PAR_BOT:
            return a
        if a == b:
            return a
        return PAR_TOP

    def leq(self, a: _Parity, b: _Parity) -> bool:
        return a is PAR_BOT or b is PAR_TOP or a == b

    def add1(self, a: _Parity) -> _Parity:
        return _FLIP[a]

    def sub1(self, a: _Parity) -> _Parity:
        return _FLIP[a]

    def binop(self, op: str, a: _Parity, b: _Parity) -> _Parity:
        if a is PAR_BOT or b is PAR_BOT:
            return PAR_BOT
        if op in ("+", "-"):
            if a is PAR_TOP or b is PAR_TOP:
                return PAR_TOP
            return EVEN if a == b else ODD
        if op == "*":
            if a is EVEN or b is EVEN:
                return EVEN  # even * anything is even, even for TOP
            if a is PAR_TOP or b is PAR_TOP:
                return PAR_TOP
            return ODD
        raise ValueError(f"unknown operator {op!r}")

    def may_be_zero(self, a: _Parity) -> bool:
        return a is EVEN or a is PAR_TOP

    def may_be_nonzero(self, a: _Parity) -> bool:
        return a is not PAR_BOT
