"""The constant propagation lattice N⊥⊤ (paper Section 4.2, after [9]).

Elements are ``BOT`` (no value), any integer constant, or ``TOP`` (any
number)::

            TOP
      / ... | | | ... \\
    ... -1  0  1  2 ...
      \\ ... | | | ... /
            BOT

The lattice is infinite in width but has height 3, so ascending chains
stabilize after at most two steps — exactly the property the paper's
termination argument needs.

Constant propagation is the paper's canonical *non-distributive*
analysis: the merge of stores at a join point loses correlations
between variables and between a variable and the branch taken, which
is what Theorem 5.2's witnesses exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.domains.protocol import NumDomain


@dataclass(frozen=True, slots=True)
class _Extreme:
    """A lattice extreme: ``BOT`` or ``TOP``."""

    label: str

    def __repr__(self) -> str:
        return self.label


#: The least element of the constant lattice.
BOT = _Extreme("⊥")

#: The greatest element of the constant lattice.
TOP = _Extreme("⊤")

ConstValue = Union[_Extreme, int]


class ConstPropDomain(NumDomain[ConstValue]):
    """Constant propagation over the flat integer lattice."""

    name = "constprop"
    distributive = False

    @property
    def bottom(self) -> ConstValue:
        return BOT

    @property
    def top(self) -> ConstValue:
        return TOP

    def const(self, n: int) -> ConstValue:
        return n

    def join(self, a: ConstValue, b: ConstValue) -> ConstValue:
        if a is BOT:
            return b
        if b is BOT:
            return a
        if a == b:
            return a
        return TOP

    def leq(self, a: ConstValue, b: ConstValue) -> bool:
        return a is BOT or b is TOP or a == b

    def add1(self, a: ConstValue) -> ConstValue:
        return self._unary(a, 1)

    def sub1(self, a: ConstValue) -> ConstValue:
        return self._unary(a, -1)

    @staticmethod
    def _unary(a: ConstValue, delta: int) -> ConstValue:
        if isinstance(a, _Extreme):
            return a
        return a + delta

    def binop(self, op: str, a: ConstValue, b: ConstValue) -> ConstValue:
        if a is BOT or b is BOT:
            return BOT
        if op == "*" and (a == 0 or b == 0):
            return 0  # 0 * anything = 0, even for TOP operands
        if a is TOP or b is TOP:
            return TOP
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        raise ValueError(f"unknown operator {op!r}")

    def may_be_zero(self, a: ConstValue) -> bool:
        return a is TOP or a == 0

    def may_be_nonzero(self, a: ConstValue) -> bool:
        return a is TOP or (isinstance(a, int) and a != 0)
